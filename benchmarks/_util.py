"""Shared helpers for the benchmark harness.

Every bench prints the paper's values beside the simulated ones and
asserts the paper's *qualitative* claims (who wins, rough factors,
where cliffs fall).  Durations honour two environment knobs:

``REPRO_BENCH_SCALE``
    Multiplier on simulated measurement windows (default 1.0).  Values
    below 1 make the web sweeps faster but noisier.
``REPRO_BENCH_QUICK``
    When set (any non-empty value), grids shrink to their full-scale
    cells only.
"""

from __future__ import annotations

import os
import sys
from typing import Callable


def scale_factor() -> float:
    """The measurement-window multiplier from the environment."""
    try:
        value = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        raise RuntimeError("REPRO_BENCH_SCALE must be a number") from None
    if value <= 0:
        raise RuntimeError("REPRO_BENCH_SCALE must be > 0")
    return value


def quick_mode() -> bool:
    """True when the grids should shrink to full-scale cells."""
    return bool(os.environ.get("REPRO_BENCH_QUICK"))


def web_duration(base: float = 3.0) -> float:
    """Measurement window for one web concurrency level."""
    return max(1.5, base * scale_factor())


def emit(text: str) -> None:
    """Print a report so it survives pytest's capture (stderr)."""
    print(text, file=sys.stderr)
    print("", file=sys.stderr)


def run_once(benchmark, fn: Callable):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations; re-running them for
    statistical confidence would only burn wall-clock.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
