"""Ablations of the design choices DESIGN.md calls out.

1. USB Ethernet adapter power: the paper notes the plug-in adapter
   draws more than the Edison SoC itself.  With an integrated 0.1 W
   port instead, the cluster's energy-efficiency advantage grows
   substantially (the adapter is ~74 % of node idle power).
2. Input-file combining (wordcount vs wordcount2): combining helps the
   Dell cluster far more, "dwarfing" the Edison efficiency advantage.
3. Edison-as-master: the ResourceManager's per-round work saturates an
   Edison master's CPU; allocation crawls and the job runs far longer
   than with a Dell master — the reason the paper adopted the hybrid
   layout.
4. HDFS block size on Edison terasort: 16 MB blocks mean ~4x the map
   containers of 64 MB blocks, paying ~4x the container overhead.
5. SYN retransmission: with an effectively unbounded port pool the
   Dell delay-distribution spikes at 1 s and 3 s vanish, validating
   the paper's Figure 11 explanation.
"""

import math
from dataclasses import replace

import pytest

from repro.core import paperdata as paper
from repro.core.report import format_table
from repro.hardware import EDISON, EDISON_INTEGRATED_NIC
from repro.mapreduce import JOB_FACTORIES, run_job
from repro.mapreduce.jobs.terasort import terasort_job
from repro.web import LIMITS, WebServiceDeployment, WebWorkload, \
    delay_distribution
from repro.web.client import UrllibProbe

from _util import emit, run_once, scale_factor


def _adapter_ablation():
    """Wordcount energy with the USB adapter vs an integrated port."""
    results = {}
    for label, spec in (("usb-adapter", EDISON),
                        ("integrated-nic", EDISON_INTEGRATED_NIC)):
        job, config = JOB_FACTORIES["wordcount"]("edison", 35)
        report = run_job("edison", 35, job, config=config, edison_spec=spec)
        results[label] = report
    return results


def _master_ablation():
    """logcount on 8 Edison slaves: Dell master vs Edison master.

    500 containers mean 500 commits and hundreds of outstanding
    scheduling rounds — all serialised through the master."""
    results = {}
    spec, config = JOB_FACTORIES["logcount"]("edison", 8)
    results["dell-master"] = run_job("edison", 8, spec, config=config)
    results["edison-master"] = run_job("edison", 8, spec, config=config,
                                       master_spec=EDISON,
                                       deadline_s=80_000)
    return results


def _block_size_ablation():
    """Edison terasort with 64 MB vs 16 MB blocks (map-count explosion)."""
    results = {}
    spec, config = terasort_job("edison", 35)
    results["64MB"] = run_job("edison", 35, spec, config=config)
    small_config = config.with_block_mb(16)
    small_maps = math.ceil(spec.dataset.total_bytes / (16e6))
    small_spec = replace(spec, map_tasks=small_maps)
    results["16MB"] = run_job("edison", 35, small_spec, config=small_config)
    return results


def _syn_ablation():
    """Dell delay distribution with and without port exhaustion."""
    duration = max(4.0, 5.0 * scale_factor())
    with_drops = delay_distribution("dell", total_rate_rps=5000,
                                    duration=duration, warmup=duration / 3)
    # Unbounded ports: no SYN can ever be dropped for lack of one.
    workload = WebWorkload(image_fraction=0.20)
    deployment = WebServiceDeployment(
        "dell", "full", workload,
        limits=replace(LIMITS["dell"], port_pool=10_000_000))
    for node in deployment.web_nodes:
        node.record_log_enabled = False
    probe = UrllibProbe(deployment, 5000, collect_after=duration / 3)
    probe.start(until=duration)
    deployment.sim.run(until=duration)
    return {"with-drops": with_drops, "no-drops": probe.log}


def bench_ablations(benchmark):
    def experiment():
        return {
            "adapter": _adapter_ablation(),
            "master": _master_ablation(),
            "blocks": _block_size_ablation(),
            "syn": _syn_ablation(),
        }

    results = run_once(benchmark, experiment)

    adapter = results["adapter"]
    rows = [(label, f"{r.seconds:.0f}", f"{r.joules:.0f}",
             f"{1e6 / r.joules:.1f}")
            for label, r in adapter.items()]
    emit(format_table(("NIC", "time s", "energy J", "jobs/MJ"), rows,
                      title="Ablation 1: USB adapter vs integrated NIC "
                            "(wordcount, 35 Edisons)"))
    saving = 1 - (adapter["integrated-nic"].joules
                  / adapter["usb-adapter"].joules)
    assert adapter["integrated-nic"].seconds == pytest.approx(
        adapter["usb-adapter"].seconds, rel=0.01)   # same speed
    assert saving > 0.5                             # most energy was the NIC

    master = results["master"]
    rows = [(label, f"{r.seconds:.0f}", f"{r.joules:.0f}")
            for label, r in master.items()]
    emit(format_table(("master", "time s", "energy J"), rows,
                      title="Ablation 3: Dell vs Edison master "
                            "(logcount, 8 Edison slaves)"))
    assert master["edison-master"].seconds > 1.5 * master["dell-master"].seconds

    blocks = results["blocks"]
    rows = [(label, f"{r.seconds:.0f}", f"{r.joules:.0f}")
            for label, r in blocks.items()]
    emit(format_table(("block size", "time s", "energy J"), rows,
                      title="Ablation 4: HDFS block size "
                            "(terasort, 35 Edisons)"))
    assert blocks["16MB"].seconds > 1.1 * blocks["64MB"].seconds

    syn = results["syn"]
    emit(f"Ablation 5: Dell mass above 0.9 s with drops: "
         f"{syn['with-drops'].fraction_above(0.9) * 100:.0f}%, "
         f"without port exhaustion: "
         f"{syn['no-drops'].fraction_above(0.9) * 100:.0f}%")
    assert syn["with-drops"].fraction_above(0.9) > 0.2
    assert syn["no-drops"].fraction_above(0.9) < 0.02
