"""Figures 10 & 11 — response-delay distributions at ~6000 req/s.

Paper claims checked: the Dell cluster's histogram spikes at 1 s and
3 s (SYN retransmission backoff: each request is a fresh connection,
~3000 conn/s per Dell web server exhausts ephemeral ports); the Edison
cluster's distribution stays essentially sub-second because 24 web
servers split the same connection rate.
"""

import pytest

from repro.core import paperdata as paper
from repro.core.report import format_table
from repro.web import delay_distribution

from _util import scale_factor, emit, run_once


def _histograms():
    duration = max(4.0, 6.0 * scale_factor())
    warmup = duration / 3
    return {
        platform: delay_distribution(platform, total_rate_rps=6000.0,
                                     duration=duration, warmup=warmup)
        for platform in ("edison", "dell")
    }


def bench_fig10_11_delay_hist(benchmark):
    logs = run_once(benchmark, _histograms)
    rows = []
    for platform, log in logs.items():
        for bin_start, count in log.histogram(bin_width_s=0.5, max_s=8.0):
            if count:
                rows.append((platform, f"{bin_start:.1f}-{bin_start + 0.5:.1f}",
                             count))
    emit(format_table(("cluster", "delay bin (s)", "samples"), rows,
                      title="Figures 10 & 11: delay distribution at "
                            "~6000 req/s, 20% images"))
    emit(f"edison mean delay: {logs['edison'].mean() * 1000:.0f} ms; "
         f"dell mean delay: {logs['dell'].mean() * 1000:.0f} ms; "
         f"dell mass above 0.9 s: "
         f"{logs['dell'].fraction_above(0.9) * 100:.0f}%")

    dell, edison = logs["dell"], logs["edison"]
    hist = dict(dell.histogram(bin_width_s=0.5, max_s=8.0))
    # Spikes at ~1 s and ~3 s on the Dell cluster (Figure 11).
    near_one = hist.get(1.0, 0) + hist.get(0.5, 0)
    near_three = hist.get(3.0, 0) + hist.get(2.5, 0) + hist.get(3.5, 0)
    background = hist.get(2.0, 0) + hist.get(5.0, 0) + 1
    assert near_one > 3 * background
    assert near_three > 0
    assert dell.fraction_above(0.9) > 0.25
    # The Edison cluster barely ever crosses one second (Figure 10).
    assert edison.fraction_above(0.9) < 0.05
    # Paper: "under heavy workload, Edison shows larger average delay"
    # than Dell's sub-spike mass — compare Edison's mean to Dell's
    # fast-path mass only.
    dell_fast = [d for d in dell.delays_s if d < 0.9]
    assert edison.mean() > sum(dell_fast) / len(dell_fast)
