"""Figures 12-17 — resource/power/progress timelines for three jobs.

Paper claims checked per figure pair:

* wordcount (12/15): the allocation lead before CPU rises is ~2.3x
  longer on Edison (45 s vs 20 s); the reduce phase starts much later
  in relative terms on Edison (~61 % of run time vs ~28 % on Dell).
* wordcount2 (13/16): both clusters cut job time sharply (41 % on
  Edison, 69 % on Dell).
* pi (14/17): CPU reaches full utilisation on both clusters and the
  Dell finishes ~4x sooner.
"""

import pytest

from repro.core import paperdata as paper
from repro.core.report import format_series, format_table
from repro.mapreduce import ALLOC_LEAD_S, JOB_FACTORIES, run_job

from _util import emit, run_once

JOBS = ("wordcount", "wordcount2", "pi")


def _timelines():
    reports = {}
    for job in JOBS:
        for platform, slaves in (("edison", 35), ("dell", 2)):
            spec, config = JOB_FACTORIES[job](platform, slaves)
            reports[job, platform] = run_job(platform, slaves, spec,
                                             config=config)
    return reports


def _cpu_rise_time(report, threshold: float = 0.10) -> float:
    for t, value in report.timeline.cpu.pairs():
        if value >= threshold:
            return t
    return report.seconds


def _reduce_start_fraction(report) -> float:
    for t, value in report.timeline.reduce_progress.pairs():
        if value > 0:
            return t / report.seconds
    return 1.0


def bench_fig12_17_mapreduce_timelines(benchmark):
    reports = run_once(benchmark, _timelines)
    rows = []
    for (job, platform), report in reports.items():
        rows.append((job, platform, f"{report.seconds:.0f}",
                     f"{_cpu_rise_time(report):.0f}",
                     f"{_reduce_start_fraction(report) * 100:.0f}%",
                     f"{report.timeline.power_w.maximum():.1f}"))
    emit(format_table(
        ("job", "cluster", "time s", "CPU rise s", "reduce starts at",
         "peak W"),
        rows, title="Figures 12-17: timeline summaries"))
    for (job, platform) in (("wordcount", "edison"), ("wordcount", "dell")):
        report = reports[job, platform]
        emit(format_series(f"{job}/{platform} cpu",
                           report.timeline.cpu.pairs(),
                           x_label="t", y_label="util", max_points=24))
        emit(format_series(f"{job}/{platform} power",
                           report.timeline.power_w.pairs(),
                           x_label="t", y_label="W", max_points=24))

    wc_e = reports["wordcount", "edison"]
    wc_d = reports["wordcount", "dell"]
    # Allocation lead ratio ~2.3x (Figures 12 vs 15).
    lead_ratio = _cpu_rise_time(wc_e) / _cpu_rise_time(wc_d)
    assert lead_ratio == pytest.approx(paper.S52_ALLOCATION_LEAD_RATIO,
                                       rel=0.15)
    # Reduce starts later (relatively) on Edison than on Dell.
    assert _reduce_start_fraction(wc_e) > _reduce_start_fraction(wc_d)
    # wordcount2 cuts completion time on both platforms; more on Dell.
    cut_e = 1 - reports["wordcount2", "edison"].seconds / wc_e.seconds
    cut_d = 1 - reports["wordcount2", "dell"].seconds / wc_d.seconds
    assert cut_e == pytest.approx(0.41, abs=0.10)
    assert cut_d == pytest.approx(0.69, abs=0.10)
    assert cut_d > cut_e
    # pi: both clusters reach (near-)full CPU; Dell ~4x faster.
    pi_e, pi_d = reports["pi", "edison"], reports["pi", "dell"]
    assert pi_e.timeline.cpu.maximum() > 0.9
    assert pi_d.timeline.cpu.maximum() > 0.9
    assert pi_e.seconds / pi_d.seconds == pytest.approx(4.0, rel=0.2)
