"""Figures 2 & 3 + Section 4.1 — Dhrystone and the Sysbench CPU test.

Paper: 632.3 DMIPS per Edison thread vs 11383 per Dell thread; the
prime test shows a 15-18x single-thread gap, Edison flattening beyond
its 2 cores, the Dell scaling to 8 threads, and a 90-108x whole-machine
gap.
"""

import pytest

from repro.core import paperdata as paper
from repro.core.report import format_table, paper_vs_measured
from repro.hardware import DELL_R620, EDISON, make_server
from repro.microbench import run_dhrystone, run_sysbench_cpu
from repro.sim import Simulation

from _util import emit, run_once


def _dhrystone(spec):
    sim = Simulation()
    return run_dhrystone(sim, make_server(sim, spec, "s0"))


def _cpu_curve(spec):
    curve = {}
    for threads in paper.S41_SYSBENCH_THREADS:
        sim = Simulation()
        server = make_server(sim, spec, "s0")
        curve[threads] = run_sysbench_cpu(sim, server, threads)
    return curve


def bench_fig2_3_sysbench_cpu(benchmark):
    def experiment():
        return {
            "edison_dmips": _dhrystone(EDISON).dmips,
            "dell_dmips": _dhrystone(DELL_R620).dmips,
            "edison": _cpu_curve(EDISON),
            "dell": _cpu_curve(DELL_R620),
        }

    result = run_once(benchmark, experiment)
    emit(paper_vs_measured(
        [("Edison DMIPS (1 thread)", paper.S41_EDISON_DMIPS,
          result["edison_dmips"]),
         ("Dell DMIPS (1 thread)", paper.S41_DELL_DMIPS,
          result["dell_dmips"])],
        title="Section 4.1: Dhrystone"))
    rows = []
    for threads in paper.S41_SYSBENCH_THREADS:
        e = result["edison"][threads]
        d = result["dell"][threads]
        rows.append((threads, f"{e.total_time_s:.0f}",
                     f"{e.avg_response_time_s * 1000:.0f}",
                     f"{d.total_time_s:.1f}",
                     f"{d.avg_response_time_s * 1000:.1f}"))
    emit(format_table(
        ("threads", "Edison total (s)", "Edison resp (ms)",
         "Dell total (s)", "Dell resp (ms)"), rows,
        title="Figures 2 & 3: Sysbench CPU (primes < 20000)"))

    assert result["edison_dmips"] == pytest.approx(paper.S41_EDISON_DMIPS,
                                                   rel=0.01)
    assert result["dell_dmips"] == pytest.approx(paper.S41_DELL_DMIPS,
                                                 rel=0.01)
    # Single-thread gap in the paper's 15-18x band.
    gap1 = (result["edison"][1].total_time_s
            / result["dell"][1].total_time_s)
    assert paper.S41_PER_CORE_SPEEDUP[0] <= gap1 \
        <= paper.S41_PER_CORE_SPEEDUP[1] + 0.5
    # Edison flat beyond 2 threads; Dell keeps scaling to 8.
    assert result["edison"][4].total_time_s == pytest.approx(
        result["edison"][2].total_time_s, rel=0.05)
    assert result["dell"][8].total_time_s < 0.6 * result["dell"][4].total_time_s
    # Whole-machine gap 90-108x.
    machine_gap = DELL_R620.cpu.machine_dmips / EDISON.cpu.machine_dmips
    low, high = paper.S41_PER_MACHINE_SPEEDUP
    assert low <= machine_gap <= high
