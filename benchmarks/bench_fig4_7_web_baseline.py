"""Figures 4 & 7 — web throughput/delay vs concurrency, lightest load.

Paper claims checked: (1) peak requests/s scales linearly with cluster
size, (2) Edison and Dell full clusters peak at nearly the same rate,
(3) Edison errors appear beyond 1024 conn/s while Dell holds 2048 with
a throughput drop, (4) Edison low-load delay is ~5x Dell's, (5) the
power lines sit at 56-58 W (Edison) vs 170-200 W (Dell), giving ~3.5x
more requests per joule on the Edison cluster.
"""

import pytest

from repro.core import paperdata as paper
from repro.core.report import format_table, paper_vs_measured
from repro.web import energy_efficiency_ratio, sweep_concurrency

from _util import emit, quick_mode, run_once, web_duration

LEVELS = paper.S51_CONCURRENCY_LEVELS


def _curves():
    duration = web_duration()
    curves = {}
    edison_scales = ("full", "1/2") if quick_mode() \
        else ("full", "1/2", "1/4", "1/8")
    for scale in edison_scales:
        curves["edison", scale] = sweep_concurrency(
            "edison", scale, duration=duration)
    for scale in ("full", "1/2"):
        curves["dell", scale] = sweep_concurrency(
            "dell", scale, duration=duration)
    return curves


def bench_fig4_7_web_baseline(benchmark):
    curves = run_once(benchmark, _curves)
    rows = []
    for (platform, scale), sweep in curves.items():
        for level in sweep.levels:
            rows.append((
                f"{platform}/{scale}", level.concurrency,
                f"{level.requests_per_second:.0f}",
                f"{level.mean_delay_s * 1000:.1f}",
                level.error_calls, f"{level.mean_power_w:.1f}"))
    emit(format_table(
        ("cluster", "conn/s", "req/s", "delay ms", "5xx", "power W"),
        rows, title="Figures 4 & 7: throughput/delay/power, 0% images, "
                    "93% hit ratio"))

    edison_full = curves["edison", "full"]
    dell_full = curves["dell", "full"]
    emit(paper_vs_measured(
        [("peak req/s (Edison full)", paper.S51_PEAK_RPS_LIGHT,
          edison_full.peak_rps()),
         ("peak req/s (Dell full)", paper.S51_PEAK_RPS_LIGHT,
          dell_full.peak_rps()),
         ("Edison cluster power W", 57, edison_full.mean_power_at_peak()),
         ("Dell cluster power W", 185, dell_full.mean_power_at_peak()),
         ("requests/joule ratio", paper.S51_ENERGY_EFFICIENCY_RATIO,
          energy_efficiency_ratio(edison_full, dell_full))],
        title="Figure 4 headline numbers"))

    # (1) linear scaling across Edison sizes.
    half = curves["edison", "1/2"].peak_rps()
    assert edison_full.peak_rps() == pytest.approx(2 * half, rel=0.15)
    if ("edison", "1/4") in curves:
        assert curves["edison", "1/4"].peak_rps() == pytest.approx(
            half / 2, rel=0.2)
    # (2) both full clusters peak near the paper's number.
    assert edison_full.peak_rps() == pytest.approx(
        paper.S51_PEAK_RPS_LIGHT, rel=0.12)
    assert dell_full.peak_rps() == pytest.approx(
        edison_full.peak_rps(), rel=0.12)
    # (3) error cliffs: Edison errors beyond 1024; Dell clean to 2048
    #     but with a throughput drop there.
    assert edison_full.max_clean_concurrency() == \
        paper.S51_EDISON_MAX_CONCURRENCY
    assert dell_full.max_clean_concurrency() == paper.S51_DELL_MAX_CONCURRENCY
    dell_by_conc = {l.concurrency: l for l in dell_full.levels}
    assert dell_by_conc[2048].requests_per_second < \
        0.95 * dell_full.peak_rps()
    # (4) low-load delay gap ~5x.
    edison_low = edison_full.levels[0].mean_delay_s
    dell_low = dell_full.levels[0].mean_delay_s
    assert 3.0 <= edison_low / dell_low <= 8.0
    # (5) power bands and the 3.5x requests-per-joule headline.
    assert paper.S51_EDISON_POWER_RANGE_W[0] * 0.92 <= \
        edison_full.mean_power_at_peak() <= paper.S51_EDISON_POWER_RANGE_W[1]
    assert paper.S51_DELL_POWER_RANGE_W[0] <= \
        dell_full.mean_power_at_peak() <= paper.S51_DELL_POWER_RANGE_W[1] * 1.05
    assert energy_efficiency_ratio(edison_full, dell_full) == pytest.approx(
        paper.S51_ENERGY_EFFICIENCY_RATIO, rel=0.15)
