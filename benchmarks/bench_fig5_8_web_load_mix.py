"""Figures 5 & 8 — higher image share and lower cache hit ratios.

Paper claims checked: peak throughput at 512 conn/s changes little
across mixes; throughput at 1024 drops significantly with 10 % images;
delays roughly double with the heavier reply mix even at low load.
"""

import pytest

from repro.core import paperdata as paper
from repro.core.report import format_table
from repro.web import WebWorkload, sweep_concurrency

from _util import emit, quick_mode, run_once, web_duration

MIXES = (
    ("hit93", WebWorkload(image_fraction=0.0, cache_hit_ratio=0.93)),
    ("hit77", WebWorkload(image_fraction=0.0, cache_hit_ratio=0.77)),
    ("hit60", WebWorkload(image_fraction=0.0, cache_hit_ratio=0.60)),
    ("img6", WebWorkload(image_fraction=0.06, cache_hit_ratio=0.93)),
    ("img10", WebWorkload(image_fraction=0.10, cache_hit_ratio=0.93)),
)

LEVELS = (64, 256, 512, 1024)


def _curves():
    duration = web_duration()
    platforms = ("edison",) if quick_mode() else ("edison", "dell")
    return {
        (platform, name): sweep_concurrency(platform, "full", workload,
                                            levels=LEVELS, duration=duration)
        for platform in platforms
        for name, workload in MIXES
    }


def bench_fig5_8_web_load_mix(benchmark):
    curves = run_once(benchmark, _curves)
    rows = []
    for (platform, mix), sweep in curves.items():
        for level in sweep.levels:
            rows.append((f"{platform}/{mix}", level.concurrency,
                         f"{level.requests_per_second:.0f}",
                         f"{level.mean_delay_s * 1000:.1f}",
                         level.error_calls))
    emit(format_table(("cluster/mix", "conn/s", "req/s", "delay ms", "5xx"),
                      rows, title="Figures 5 & 8: load-mix sweep"))

    for platform in {p for p, _ in curves}:
        base = curves[platform, "hit93"]
        img10 = curves[platform, "img10"]
        peak_at = lambda sweep, conc: next(
            l for l in sweep.levels if l.concurrency == conc)
        # Peak at 512 changes little across mixes (< ~15 %).
        assert peak_at(img10, 512).requests_per_second >= \
            0.82 * peak_at(base, 512).requests_per_second
        # Heavier replies push delay up at moderate load.
        assert peak_at(img10, 256).mean_delay_s > \
            peak_at(base, 256).mean_delay_s
        # Lower hit ratio costs a little throughput, not a collapse.
        hit60 = curves[platform, "hit60"]
        assert peak_at(hit60, 512).requests_per_second >= \
            0.85 * peak_at(base, 512).requests_per_second
