"""Figures 6 & 9 — the heaviest fair load: 20 % images, 93 % hit ratio.

Paper claims checked: overall throughput is ~85 % of the lightest
workload; the half-scale Edison cluster can no longer hold 1024 conn/s
without errors; the Edison cluster still achieves ~3.5x more
requests-per-joule.
"""

import pytest

from repro.core import paperdata as paper
from repro.core.report import format_table, paper_vs_measured
from repro.web import WebWorkload, energy_efficiency_ratio, sweep_concurrency

from _util import emit, quick_mode, run_once, web_duration

HEAVY = WebWorkload(image_fraction=0.20, cache_hit_ratio=0.93)


def _curves():
    duration = web_duration()
    curves = {
        ("edison", "full"): sweep_concurrency("edison", "full", HEAVY,
                                              duration=duration),
        ("dell", "full"): sweep_concurrency("dell", "full", HEAVY,
                                            duration=duration),
    }
    if not quick_mode():
        curves["edison", "1/2"] = sweep_concurrency("edison", "1/2", HEAVY,
                                                    duration=duration)
        curves["dell", "1/2"] = sweep_concurrency("dell", "1/2", HEAVY,
                                                  duration=duration)
    return curves


def bench_fig6_9_web_heavy(benchmark):
    curves = run_once(benchmark, _curves)
    rows = []
    for (platform, scale), sweep in curves.items():
        for level in sweep.levels:
            rows.append((f"{platform}/{scale}", level.concurrency,
                         f"{level.requests_per_second:.0f}",
                         f"{level.mean_delay_s * 1000:.1f}",
                         level.error_calls, f"{level.mean_power_w:.1f}"))
    emit(format_table(
        ("cluster", "conn/s", "req/s", "delay ms", "5xx", "power W"),
        rows, title="Figures 6 & 9: 20% images, 93% hit ratio"))

    edison = curves["edison", "full"]
    dell = curves["dell", "full"]
    heavy_peak = edison.peak_rps()
    emit(paper_vs_measured(
        [("peak vs lightest load", paper.S51_HEAVY_TO_LIGHT_RPS,
          heavy_peak / paper.S51_PEAK_RPS_LIGHT),
         ("requests/joule ratio", paper.S51_ENERGY_EFFICIENCY_RATIO,
          energy_efficiency_ratio(edison, dell))],
        title="Figure 6 headline numbers"))

    # ~85 % of the lightest workload's peak.
    assert heavy_peak / paper.S51_PEAK_RPS_LIGHT == pytest.approx(
        paper.S51_HEAVY_TO_LIGHT_RPS, abs=0.08)
    # Still ~3.5x more work per joule.
    assert energy_efficiency_ratio(edison, dell) == pytest.approx(
        paper.S51_ENERGY_EFFICIENCY_RATIO, rel=0.18)
    if ("edison", "1/2") in curves:
        # The half Edison cluster can no longer hold 1024 conn/s.
        half = curves["edison", "1/2"]
        assert half.max_clean_concurrency() < 1024
