"""Kernel-scale benchmark: event throughput plus fidelity invariants.

Unlike the paper-facing benches, this one watches the simulator itself.
It reruns the headline cells of the committed ``BENCH_kernel_scale.json``
sweep (70-node web level, 4-slave Terasort) and checks the two
machine-independent properties the perf work must preserve:

* the fidelity digest — the complete simulated result, bit for bit —
  matches the committed baseline (results are seed-deterministic, so
  this holds on any host), and
* tracing is observation-only: a traced run and an untraced run of the
  same level produce identical results.

Throughput (events/s) is printed beside the recorded numbers for the
report but never asserted — CI hardware varies.
"""

import json
import os

from repro import perf
from repro.trace import Tracer

from _util import emit, quick_mode, run_once

BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, "BENCH_kernel_scale.json")


def _jsonify(value):
    """Normalise tuples/keys the way a JSON round-trip would."""
    return json.loads(json.dumps(value))


def _headline_cells():
    cells = {("web_scale", "70"): perf.measure_web_level("48x22", 192)}
    if not quick_mode():
        cells["terasort", "4"] = perf.measure_terasort(4)
    return cells


def bench_kernel_scale(benchmark):
    cells = run_once(benchmark, _headline_cells)
    with open(BASELINE) as handle:
        recorded = json.load(handle)["post"]
    lines = []
    for (section, cell), sample in cells.items():
        base = recorded[section][cell]
        assert _jsonify(sample.digest) == base["digest"], (
            f"{section}/{cell}: simulated results diverged from the "
            "committed baseline digest")
        assert sample.processed > 0
        assert sample.heap_peak < sample.processed
        lines.append(
            f"{section}/{cell}: {sample.events_per_s:,.0f} events/s "
            f"({sample.wall_s:.2f}s wall) vs recorded "
            f"{base['events_per_s']:,.0f} ({base['wall_s']:.2f}s)")
    emit("\n".join(lines))


def bench_tracing_is_observation_only(benchmark):
    def both():
        untraced = perf.measure_web_level("24x11", 96, duration=0.8)
        traced = perf.measure_web_level("24x11", 96, duration=0.8,
                                        trace=Tracer())
        return untraced, traced

    untraced, traced = run_once(benchmark, both)
    assert untraced.digest == traced.digest, (
        "attaching a tracer changed simulated results")
    emit(f"traced run identical to untraced "
         f"({untraced.processed:,} events)")
