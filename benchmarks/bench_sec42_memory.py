"""Section 4.2 — Sysbench memory bandwidth sweep.

Paper: 36 GB/s peak on the Dell vs 2.2 GB/s on the Edison; rates
saturate from 256 KiB blocks, and beyond 2 threads (Edison) / 12
threads (Dell).
"""

import pytest

from repro.core import paperdata as paper
from repro.core.report import format_table, paper_vs_measured
from repro.hardware import DELL_R620, EDISON, make_server
from repro.microbench import run_sysbench_memory
from repro.sim import Simulation

from _util import emit, run_once


THREADS = tuple(sorted(set(paper.S42_THREAD_COUNTS) | {2, 12}))


def _sweep(spec):
    grid = {}
    for block in paper.S42_BLOCK_SIZES:
        for threads in THREADS:
            sim = Simulation()
            server = make_server(sim, spec, "s0")
            grid[(block, threads)] = run_sysbench_memory(
                sim, server, block, threads).rate_bps
    return grid


def bench_sec42_memory(benchmark):
    result = run_once(benchmark, lambda: {
        "edison": _sweep(EDISON), "dell": _sweep(DELL_R620)})
    edison, dell = result["edison"], result["dell"]
    peak_e = max(edison.values())
    peak_d = max(dell.values())
    emit(paper_vs_measured(
        [("Edison peak (GB/s)", paper.S42_EDISON_MEM_BW / 1e9, peak_e / 1e9),
         ("Dell peak (GB/s)", paper.S42_DELL_MEM_BW / 1e9, peak_d / 1e9),
         ("Dell/Edison ratio", 16.4, peak_d / peak_e)],
        title="Section 4.2: memory bandwidth"))
    rows = [(f"{block // 1024} KiB",
             *(f"{edison[(block, t)] / 1e9:.2f}" for t in THREADS))
            for block in paper.S42_BLOCK_SIZES]
    emit(format_table(("block", *(f"{t}th" for t in THREADS)),
                      rows, title="Edison transfer rate (GB/s)"))

    assert peak_e == pytest.approx(paper.S42_EDISON_MEM_BW, rel=0.05)
    assert peak_d == pytest.approx(paper.S42_DELL_MEM_BW, rel=0.05)
    # Saturation in block size: 256 KiB within 10 % of 1 MiB.
    for grid, sat_threads in ((edison, 2), (dell, 12)):
        big = grid[(1048576, sat_threads)]
        assert grid[(262144, sat_threads)] >= 0.9 * big
        assert grid[(4096, sat_threads)] < 0.5 * big
    # Saturation in threads.
    assert edison[(1048576, 16)] == pytest.approx(edison[(1048576, 2)])
    assert dell[(1048576, 16)] == pytest.approx(dell[(1048576, 12)])
    assert dell[(1048576, 8)] < dell[(1048576, 12)]
