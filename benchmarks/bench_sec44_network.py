"""Section 4.4 — iperf3 throughput and ping RTT between server pairs."""

import pytest

from repro.cluster import Cluster
from repro.core import paperdata as paper
from repro.core.report import paper_vs_measured
from repro.hardware import DELL_R620, EDISON
from repro.microbench import run_iperf, run_ping
from repro.sim import Simulation

from _util import emit, run_once

PAIRS = (
    ("dell", "dell", DELL_R620, DELL_R620),
    ("dell", "edison", DELL_R620, EDISON),
    ("edison", "edison", EDISON, EDISON),
)


def _pair(spec_a, spec_b):
    sim = Simulation()
    cluster = Cluster(sim)
    cluster.add(spec_a, "a")
    cluster.add(spec_b, "b")
    return sim, cluster.topology


def bench_sec44_network(benchmark):
    def experiment():
        results = {}
        for name_a, name_b, spec_a, spec_b in PAIRS:
            key = (name_a, name_b)
            sim, topo = _pair(spec_a, spec_b)
            results[key, "tcp"] = run_iperf(sim, topo, "a", "b",
                                            nbytes=250e6).goodput_bps
            sim, topo = _pair(spec_a, spec_b)
            results[key, "udp"] = run_iperf(sim, topo, "a", "b", nbytes=250e6,
                                            protocol="udp").goodput_bps
            sim, topo = _pair(spec_a, spec_b)
            results[key, "rtt"] = run_ping(sim, topo, "a", "b").rtt_s
        return results

    result = run_once(benchmark, experiment)
    rows = []
    for key in ((("dell", "dell")), (("dell", "edison")),
                (("edison", "edison"))):
        label = "-".join(key)
        rows.append((f"{label} TCP Mb/s", paper.S44_TCP_BPS[key] / 1e6,
                     result[key, "tcp"] / 1e6))
        rows.append((f"{label} UDP Mb/s", paper.S44_UDP_BPS[key] / 1e6,
                     result[key, "udp"] / 1e6))
        rows.append((f"{label} RTT ms", paper.S44_RTT_S[key] * 1000,
                     result[key, "rtt"] * 1000))
    emit(paper_vs_measured(rows, title="Section 4.4: network"))

    for key in (("dell", "dell"), ("dell", "edison"), ("edison", "edison")):
        assert result[key, "tcp"] == pytest.approx(paper.S44_TCP_BPS[key],
                                                   rel=0.02)
        assert result[key, "udp"] == pytest.approx(paper.S44_UDP_BPS[key],
                                                   rel=0.02)
        assert result[key, "rtt"] == pytest.approx(paper.S44_RTT_S[key])
    # The 10x NIC gap.
    gap = result[("dell", "dell"), "tcp"] / result[("edison", "edison"), "tcp"]
    assert gap == pytest.approx(10.0, rel=0.05)
