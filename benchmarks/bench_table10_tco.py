"""Tables 9 & 10 — total cost of ownership under Equation 1.

Paper claims checked: each Table 10 cell reproduces within 2 %, and the
Edison cluster saves up to ~47 % of the Dell cluster's 3-year TCO.
"""

import pytest

from repro.core import paperdata as paper
from repro.core.report import paper_vs_measured
from repro.tco import savings_fraction, table10

from _util import emit, run_once


def bench_table10_tco(benchmark):
    results = run_once(benchmark, table10)
    rows = []
    for key, values in results.items():
        scenario, load = key
        published = paper.T10[key]
        rows.append((f"{scenario}/{load} Dell", published["dell"],
                     round(values["dell"], 1)))
        rows.append((f"{scenario}/{load} Edison", published["edison"],
                     round(values["edison"], 1)))
    emit(paper_vs_measured(rows, title="Table 10: 3-year TCO ($)"))

    for key, values in results.items():
        published = paper.T10[key]
        assert values["dell"] == pytest.approx(published["dell"], rel=0.02)
        assert values["edison"] == pytest.approx(published["edison"],
                                                 rel=0.02)
    best = max(savings_fraction(v) for v in results.values())
    emit(f"best-case Edison TCO savings: {best * 100:.1f}% (paper: ~47%)")
    assert best == pytest.approx(0.47, abs=0.02)
