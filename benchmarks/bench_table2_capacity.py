"""Table 2 — back-of-the-envelope replacement estimate.

Paper: one Dell R620 is matched by max(12 CPU, 16 RAM, 10 NIC) = 16
Edison nodes.
"""

from repro.core import paperdata as paper
from repro.core.capacity import replacement_estimate
from repro.core.report import paper_vs_measured
from repro.hardware import DELL_R620, EDISON

from _util import emit, run_once


def bench_table2_capacity(benchmark):
    estimate = run_once(benchmark,
                        lambda: replacement_estimate(EDISON, DELL_R620))
    emit(paper_vs_measured(
        [("Edisons to match CPU", 12, estimate.by_cpu),
         ("Edisons to match RAM", 16, estimate.by_memory),
         ("Edisons to match NIC", 10, estimate.by_network),
         ("Edisons per Dell (max)", paper.T2_EDISONS_PER_DELL,
          estimate.required)],
        title="Table 2: micro servers needed to replace one Dell R620"))
    assert estimate.by_cpu == 12
    assert estimate.by_memory == 16
    assert estimate.by_network == 10
    assert estimate.required == paper.T2_EDISONS_PER_DELL
