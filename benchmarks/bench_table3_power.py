"""Table 3 — idle/busy power of nodes and clusters, via the meter.

Servers are metered idle, then with every vcore pinned; the sampled
wall power must land on the Table 3 endpoints.
"""

import pytest

from repro.cluster import dell_cluster, edison_cluster
from repro.core import paperdata as paper
from repro.core.report import paper_vs_measured
from repro.energy import PowerMeter
from repro.hardware import DELL_R620, EDISON, make_server
from repro.sim import Simulation

from _util import emit, run_once


def _saturate(sim, server):
    """Pin every component of ``server``: CPU, memory, disk and NIC."""
    spec = server.spec
    for _ in range(spec.cpu.vcores):
        sim.process(server.cpu.execute(60 * spec.cpu.vcore_dmips))
    server.memory.reserve(0.95 * spec.memory.capacity_bytes)
    sim.process(server.storage.write(
        spec.storage.buffered_write_bps * 50, buffered=True))

    def nic_traffic():
        while True:
            server.nic.bytes_sent += spec.nic.bytes_per_second
            yield sim.timeout(1.0)

    sim.process(nic_traffic())


def _metered_power(spec, busy: bool) -> float:
    sim = Simulation()
    server = make_server(sim, spec, "s0")
    if busy:
        _saturate(sim, server)
    meter = PowerMeter(sim, [server], interval=1.0)
    meter.start(until=30)
    sim.run(until=30)
    return meter.mean_power()


def _cluster_power(builder, nodes: int, busy: bool) -> float:
    sim = Simulation()
    cluster = builder(sim, nodes=nodes)
    if busy:
        for server in cluster:
            _saturate(sim, server)
    meter = cluster.attach_meter(interval=1.0)
    meter.start(until=30)
    sim.run(until=30)
    return meter.mean_power()


def bench_table3_power(benchmark):
    def experiment():
        return {
            "edison_idle": _metered_power(EDISON, busy=False),
            "edison_busy": _metered_power(EDISON, busy=True),
            "dell_idle": _metered_power(DELL_R620, busy=False),
            "dell_busy": _metered_power(DELL_R620, busy=True),
            "edison35_idle": _cluster_power(edison_cluster, 35, busy=False),
            "edison35_busy": _cluster_power(edison_cluster, 35, busy=True),
            "dell3_idle": _cluster_power(dell_cluster, 3, busy=False),
            "dell3_busy": _cluster_power(dell_cluster, 3, busy=True),
        }

    watts = run_once(benchmark, experiment)
    emit(paper_vs_measured(
        [("1 Edison idle (w/ adapter)", paper.T3_EDISON_IDLE_W,
          watts["edison_idle"]),
         ("1 Edison busy (w/ adapter)", paper.T3_EDISON_BUSY_W,
          watts["edison_busy"]),
         ("35-node Edison cluster idle", paper.T3_EDISON_CLUSTER35_IDLE_W,
          watts["edison35_idle"]),
         ("35-node Edison cluster busy", paper.T3_EDISON_CLUSTER35_BUSY_W,
          watts["edison35_busy"]),
         ("1 Dell idle", paper.T3_DELL_IDLE_W, watts["dell_idle"]),
         ("1 Dell busy", paper.T3_DELL_BUSY_W, watts["dell_busy"]),
         ("3-node Dell cluster idle", paper.T3_DELL_CLUSTER3_IDLE_W,
          watts["dell3_idle"]),
         ("3-node Dell cluster busy", paper.T3_DELL_CLUSTER3_BUSY_W,
          watts["dell3_busy"])],
        title="Table 3: measured wall power (W)", unit="W"))
    assert watts["edison_idle"] == pytest.approx(paper.T3_EDISON_IDLE_W,
                                                 rel=0.02)
    assert watts["edison_busy"] == pytest.approx(paper.T3_EDISON_BUSY_W,
                                                 rel=0.05)
    assert watts["dell_idle"] == pytest.approx(paper.T3_DELL_IDLE_W, rel=0.02)
    assert watts["dell_busy"] == pytest.approx(paper.T3_DELL_BUSY_W, rel=0.06)
    assert watts["edison35_idle"] == pytest.approx(
        paper.T3_EDISON_CLUSTER35_IDLE_W, rel=0.02)
    assert watts["dell3_busy"] == pytest.approx(
        paper.T3_DELL_CLUSTER3_BUSY_W, rel=0.06)
