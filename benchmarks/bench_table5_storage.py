"""Table 5 — storage I/O throughput and latency (dd + ioping)."""

import pytest

from repro.core import paperdata as paper
from repro.core.report import paper_vs_measured
from repro.hardware import DELL_R620, EDISON, make_server
from repro.microbench import run_dd, run_ioping
from repro.sim import Simulation

from _util import emit, run_once


def _suite(spec):
    results = {}
    for op, buffered, key in (
            ("write", False, "write_bps"),
            ("write", True, "buffered_write_bps"),
            ("read", False, "read_bps"),
            ("read", True, "buffered_read_bps")):
        sim = Simulation()
        server = make_server(sim, spec, "s0")
        results[key] = run_dd(sim, server, op, nbytes=100e6,
                              buffered=buffered).rate_bps
    for op, key in (("read", "read_latency_s"), ("write", "write_latency_s")):
        sim = Simulation()
        server = make_server(sim, spec, "s0")
        results[key] = run_ioping(sim, server, op).mean_latency_s
    return results


def bench_table5_storage(benchmark):
    result = run_once(benchmark, lambda: {
        "edison": _suite(EDISON), "dell": _suite(DELL_R620)})
    rows = []
    for label, key, scale, unit in (
            ("write MB/s", "write_bps", 1e6, ""),
            ("buffered write MB/s", "buffered_write_bps", 1e6, ""),
            ("read MB/s", "read_bps", 1e6, ""),
            ("buffered read MB/s", "buffered_read_bps", 1e6, ""),
            ("write latency ms", "write_latency_s", 1e-3, ""),
            ("read latency ms", "read_latency_s", 1e-3, "")):
        for platform, table in (("Edison", paper.T5_EDISON),
                                ("Dell", paper.T5_DELL)):
            rows.append((f"{platform} {label}", table[key] / scale,
                         result[platform.lower()][key] / scale))
    emit(paper_vs_measured(rows, title="Table 5: storage I/O"))

    for platform, table in (("edison", paper.T5_EDISON),
                            ("dell", paper.T5_DELL)):
        measured = result[platform]
        for key in ("write_bps", "buffered_write_bps", "read_bps",
                    "buffered_read_bps"):
            assert measured[key] == pytest.approx(table[key], rel=0.15)
        for key in ("write_latency_s", "read_latency_s"):
            assert table[key] <= measured[key] <= 1.07 * table[key]
    # The paper's ratios: direct write 5.3x, buffered write 8.9x faster.
    ratio_write = result["dell"]["write_bps"] / result["edison"]["write_bps"]
    assert ratio_write == pytest.approx(5.3, rel=0.1)
