"""Table 7 — database/cache/total delay decomposition vs request rate.

Paper claims checked: the Edison legs are several times slower than the
Dell legs at every rate; Edison's cache delay grows much faster with
rate than its database delay; the Dell totals stay in single-digit
milliseconds throughout.
"""

import pytest

from repro.core import paperdata as paper
from repro.core.report import format_table
from repro.web import measure_delay_decomposition

from _util import emit, quick_mode, run_once, web_duration

RATES = tuple(rate for rate, *_ in paper.T7_ROWS)


def _grid():
    duration = web_duration()
    rates = RATES if not quick_mode() else (480, 7680)
    return {
        (platform, rate): measure_delay_decomposition(
            platform, rate, duration=duration, warmup=duration / 3)
        for platform in ("edison", "dell")
        for rate in rates
    }


def bench_table7_delay_decomp(benchmark):
    grid = run_once(benchmark, _grid)
    rows = []
    for rate, db, cache, total in paper.T7_ROWS:
        if ("edison", rate) not in grid:
            continue
        e = grid["edison", rate]
        d = grid["dell", rate]
        rows.append((
            rate,
            f"({e.db_delay_s * 1e3:.2f}, {d.db_delay_s * 1e3:.2f})",
            f"({db[0]}, {db[1]})",
            f"({e.cache_delay_s * 1e3:.2f}, {d.cache_delay_s * 1e3:.2f})",
            f"({cache[0]}, {cache[1]})",
            f"({e.total_delay_s * 1e3:.2f}, {d.total_delay_s * 1e3:.2f})",
            f"({total[0]}, {total[1]})",
        ))
    emit(format_table(
        ("req/s", "db ms (sim)", "db ms (paper)", "cache ms (sim)",
         "cache ms (paper)", "total ms (sim)", "total ms (paper)"),
        rows, title="Table 7: delay decomposition (Edison, Dell) tuples"))

    rates = sorted({rate for _, rate in grid})
    low, high = rates[0], rates[-1]
    for rate in rates:
        e, d = grid["edison", rate], grid["dell", rate]
        assert e.total_delay_s > 3 * d.total_delay_s
        assert e.db_delay_s > 2 * d.db_delay_s
        assert d.total_delay_s < 0.010           # Dell stays single-digit ms
    e_low, e_high = grid["edison", low], grid["edison", high]
    # Edison cache delay grows much faster than its database delay.
    cache_growth = e_high.cache_delay_s / e_low.cache_delay_s
    db_growth = e_high.db_delay_s / e_low.db_delay_s
    assert cache_growth > 2.0
    assert cache_growth > db_growth
    # Dell delays barely move across the whole rate range.
    d_low, d_high = grid["dell", low], grid["dell", high]
    assert d_high.total_delay_s < 2.5 * d_low.total_delay_s
