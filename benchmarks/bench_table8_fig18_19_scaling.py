"""Table 8 + Figures 18 & 19 + Section 5.3 — the MapReduce scaling grid.

Every (job, platform, cluster size) cell of Table 8 is re-run and
printed beside the paper's numbers.  The full-scale cells (35 Edison,
2 Dell) are calibration anchors; every other cell is a *prediction* of
the simulator.

Paper claims checked: the Edison cluster achieves more
work-done-per-joule on every job except pi; per-job efficiency gains
land near the paper's factors; mean speed-up per cluster doubling is
~1.9 (Edison) and ~2.07 (Dell).
"""

import pytest

from repro.core import paperdata as paper
from repro.core.report import format_table, paper_vs_measured
from repro.mapreduce import (
    TABLE8_JOBS, paper_mean_speedup, run_scaling_grid,
)
from repro.mapreduce.scaling import efficiency_table

from _util import emit, quick_mode, run_once


def _grids():
    if quick_mode():
        sizes = {"edison": (35,), "dell": (2,)}
    else:
        sizes = {"edison": None, "dell": None}
    return {
        "edison": run_scaling_grid("edison", sizes=sizes["edison"]),
        "dell": run_scaling_grid("dell", sizes=sizes["dell"]),
    }


def bench_table8_fig18_19_scaling(benchmark):
    grids = run_once(benchmark, _grids)
    rows = []
    for job in TABLE8_JOBS:
        for platform in ("edison", "dell"):
            grid = grids[platform]
            for size, report in sorted(grid.reports[job].items(),
                                       reverse=True):
                published = paper.T8[job][platform][size]
                rows.append((
                    job, f"{platform}-{size}",
                    f"{report.seconds:.0f}s/{report.joules:.0f}J",
                    f"{published.seconds:.0f}s/{published.joules:.0f}J",
                    f"{report.seconds / published.seconds - 1:+.0%}",
                    f"{report.joules / published.joules - 1:+.0%}"))
    emit(format_table(
        ("job", "cluster", "simulated", "paper", "time err", "energy err"),
        rows, title="Table 8 / Figures 18-19: time and energy by size"))

    gains = efficiency_table(grids["edison"], grids["dell"])
    emit(paper_vs_measured(
        [(f"{job} efficiency gain", published, simulated)
         for job, (simulated, published) in gains.items()],
        title="Full-scale work-done-per-joule gains (Edison over Dell)"))

    # Edison wins on every job except pi.
    for job, (simulated, _) in gains.items():
        if job == "pi":
            assert simulated < 1.0
        else:
            assert simulated > 1.0
    # Gains land near the paper's factors.
    for job, (simulated, published) in gains.items():
        assert simulated == pytest.approx(published, rel=0.30)
    # Calibration anchors within 10 % on time.
    for job in TABLE8_JOBS:
        assert grids["edison"].reports[job][35].seconds == pytest.approx(
            paper.T8[job]["edison"][35].seconds, rel=0.10)
        assert grids["dell"].reports[job][2].seconds == pytest.approx(
            paper.T8[job]["dell"][2].seconds, rel=0.10)

    if not quick_mode():
        speedup_e = grids["edison"].mean_speedup()
        speedup_d = grids["dell"].mean_speedup()
        emit(paper_vs_measured(
            [("Edison mean speed-up/doubling", paper.S53_EDISON_MEAN_SPEEDUP,
              speedup_e),
             ("Dell mean speed-up/doubling", paper.S53_DELL_MEAN_SPEEDUP,
              speedup_d),
             ("paper's own Table 8 Edison speed-up",
              paper.S53_EDISON_MEAN_SPEEDUP, paper_mean_speedup("edison"))],
            title="Section 5.3: scalability"))
        # Satisfactory scalability: near 2x per doubling, Dell slightly
        # better than Edison.
        assert 1.5 <= speedup_e <= 2.2
        assert speedup_d >= speedup_e * 0.95
