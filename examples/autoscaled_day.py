#!/usr/bin/env python
"""One diurnal day, three provisioning strategies, one verdict.

The paper sizes fleets statically: pick Edisons or an R620, size for
the peak, measure the day.  But datacenter load isn't static — it
breathes.  This script serves the repo's committed seeded day (a
raised-cosine diurnal swing from 120 to 900 req/s with a 2.4x flash
crowd erupting mid-afternoon) three ways:

* **static-edison** — a wimpy fleet sized for the peak, efficient all
  day but all of it powered all day;
* **static-dell** — one R620 web head that shrugs at the flash crowd
  and burns ~110 W doing it, valley and peak alike;
* **autoscaled-hybrid** — Edisons *and* the R620 in one
  capacity-weighted rotation, with a control plane that scrapes the
  telemetry TSDB every few seconds, extrapolates the ramp one
  boot-time ahead, wakes nodes in energy-efficiency order (Edisons
  first, ~175 rps/W vs the Dell's ~32) and drains them before
  suspending when the valley returns.

The autoscaled arm pays real costs the static arms don't — boot
energy at idle draw before a node can serve, drained-but-idle watts
while connections finish — and the report itemises every joule of
that elasticity bill next to the SLOs and the Section 6 dollar
figures, so the comparison is honest.

Run:  python examples/autoscaled_day.py           (~1 minute)
"""

import os

from repro.autoscale import DayPlan, autoscale_experiment

PLAN = os.path.join(os.path.dirname(__file__), "..", "experiments",
                    "autoscale_day.json")


def main() -> None:
    plan = DayPlan.load(PLAN)
    print(f"Serving the committed day ({plan.duration_s:.0f} s, seed "
          f"{plan.seed}) three ways — this runs three full "
          "simulations...")
    print()
    report = autoscale_experiment(plan)
    for line in report.lines():
        print(line)

    print()
    hybrid = report.hybrid
    actions = [a for a in hybrid.actions if a["action"] in ("boot", "off")]
    print("the hybrid day, as the actuator lived it:")
    for action in actions:
        verb = ("woke" if action["action"] == "boot"
                else "suspended (post-drain)")
        print(f"  t={action['time']:7.2f}s  {verb:22s} {action['node']}")


if __name__ == "__main__":
    main()
