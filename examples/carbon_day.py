#!/usr/bin/env python
"""One grid day, four scheduling policies, two clusters, one verdict.

The paper metered its clusters at the PDU, where a joule is a joule
whenever it flows.  The grid disagrees: under a duck-curve day the
same kilowatt-hour costs ~3x the CO2 at the evening ramp that it does
in the midday solar dip.  This script takes the repo's committed
seeded day — five deferrable MapReduce jobs (mini TeraSorts and
WikiDB scans) released into a carbon-heavy morning, each with a
generous deadline — and serves it four ways on both clusters:

* **no-wait** — run at release, the paper's behaviour (and the
  bit-identity baseline: these runs are float-for-float the plain
  ``run_job`` runs);
* **edd** — earliest-deadline-first ordering, still starting at
  release: the control showing ordering alone saves nothing;
* **threshold** — hold each job until grid intensity dips to the
  day's 40th percentile, never waiting past what its deadline allows;
* **suspend-resume** — start at release, but park the *whole fleet*
  (YARN blacklist + admin power-off, 0 W) whenever intensity spikes,
  and boot it back when the air clears.

The report prices every arm in grams of CO2, time-of-use dollars,
minutes of waiting and deadline misses — and then re-asks the paper's
question: does the Edison's efficiency edge grow or shrink when the
grid sets the price?  (Spoiler worth watching for: chasing clean
grid-seconds into the solar dip lands the work in a *pricier* tariff
band — the gram-optimal hour and the dollar-optimal hour are not the
same hour.)

Run:  python examples/carbon_day.py           (a few seconds)
"""

import os

from repro.carbon import CarbonDayPlan, carbon_experiment

PLAN = os.path.join(os.path.dirname(__file__), "..", "experiments",
                    "carbon_day.json")


def main() -> None:
    plan = CarbonDayPlan.load(PLAN)
    print(f"Serving the committed grid day ({plan.day_s:.0f} s, "
          f"{len(plan.jobs)} deferrable jobs, seed {plan.seed}) "
          f"{len(plan.policies)}x2 ways — every arm is a full "
          "cluster simulation...")
    print()
    report = carbon_experiment(plan)
    for line in report.lines():
        print(line)

    print()
    print("the suspend-resume day, as the governor lived it (edison):")
    arm = report.arm("suspend-resume", "edison")
    for action in arm.actions:
        verb = ("parked the fleet" if action["action"] == "suspend"
                else "booted it back")
        print(f"  t={action['time']:7.1f}s  {verb:18s} "
              f"(job {action['job']})")
    for record in arm.records:
        print(f"  {record['name']:12s} released {record['release_s']:6.0f}"
              f"  ran {record['start_s']:6.0f}-{record['end_s']:6.0f}"
              f"  {record['grams_co2']:.3f} g"
              + (f"  ({record['suspensions']} suspension(s), "
                 f"{record['suspended_s']:.0f} s parked)"
                 if record["suspensions"] else ""))


if __name__ == "__main__":
    main()
