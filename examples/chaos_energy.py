#!/usr/bin/env python
"""Chaos study: what one dead node costs each cluster.

The reliability argument behind the paper's 35-node Edison deployment
is that sensor-class nodes fail routinely, so losing one must be a
marginal event.  This script kills one node on each tier and measures
the damage against an identical fault-free run:

* Web tier — one of 24 Edison web servers dies for the whole
  measurement window: goodput drops by roughly its capacity share.
  The same experiment on the 2-server Dell tier loses half the fleet.
* Hadoop — one of 35 Edison slaves dies mid-wordcount: completed map
  output is re-executed, reads fall back to surviving HDFS replicas,
  and the job finishes at a measured time/energy overhead.

Run:  python examples/chaos_energy.py              (~2 minutes)
      python examples/chaos_energy.py --skip-dell  (Edison only)
"""

import sys

from repro import job_kill_experiment, web_kill_experiment
from repro.core.report import format_table


def web_row(platform: str, concurrency: int):
    result = web_kill_experiment(platform=platform, concurrency=concurrency,
                                 duration=4.0, warmup=1.0, kill_at=0.0)
    return (
        platform,
        f"{result.victims[0]} (1 of {result.web_servers})",
        f"{result.baseline.ok_calls}",
        f"{result.faulted.ok_calls}",
        f"{result.goodput_loss_fraction * 100:.1f} %",
        f"{result.expected_loss_fraction * 100:.1f} %",
        f"{result.energy_per_call_overhead * 100:+.1f} %",
    ), result


def main() -> None:
    platforms = ["edison"]
    if "--skip-dell" not in sys.argv[1:]:
        platforms.append("dell")

    rows = []
    for platform in platforms:
        # 2048 concurrent sessions saturate both tiers, so goodput
        # tracks surviving capacity: ~1/24 lost on Edison, half on Dell.
        row, result = web_row(platform, 2048)
        rows.append(row)
    print(format_table(
        ("platform", "victim", "ok calls", "under fault", "goodput lost",
         "capacity share", "J/call"),
        rows, title="Web tier: kill one server for the whole window"))
    print()

    # 150 s is late enough that the victim holds completed map output,
    # so the kill forces re-execution, not just task retries.
    job = job_kill_experiment("wordcount", "edison", 35, kill_at=150.0)
    status = "completed" if job.completed else "FAILED"
    print(f"wordcount, 35 Edison slaves, {job.victims[0]} killed at 150 s: "
          f"{status}")
    print(f"  fault-free:      {job.baseline.seconds:8.1f} s  "
          f"{job.baseline.joules:10.0f} J")
    if job.faulted is not None:
        print(f"  one slave down:  {job.faulted.seconds:8.1f} s  "
              f"{job.faulted.joules:10.0f} J")
        print(f"  overhead:        {job.time_overhead_fraction * 100:+7.1f} %  "
              f"{job.energy_overhead_fraction * 100:+9.1f} %")
    print(f"  map outputs lost and re-executed: {job.recovered_maps}")
    for line in job.availability.lines():
        print(f"  {line}")


if __name__ == "__main__":
    main()
