#!/usr/bin/env python
"""Design-space exploration: what would a *better* micro server need?

The library's hardware profiles are plain dataclasses, so hypothetical
platforms are one constructor away.  This script builds three Edison
variants the paper's discussion hints at —

* ``edison``            the real node (USB NIC, 0.5 GHz Atom)
* ``edison-inic``       integrated 0.1 W Ethernet (the paper's FAWN
                        comparison: the adapter burns ~74 % of idle)
* ``edison-2x``         a doubled-clock, doubled-DMIPS sensor node at
                        +0.25 W busy power

— and reruns the wordcount and pi energy comparison against the Dell
baseline for each.

Run:  python examples/design_your_own_micro_server.py
"""

from dataclasses import replace

from repro import DELL_R620, EDISON, EDISON_INTEGRATED_NIC, JOB_FACTORIES, \
    run_job
from repro.core.report import format_table
from repro.hardware import CpuSpec, PowerSpec

EDISON_2X = replace(
    EDISON_INTEGRATED_NIC,
    cpu=CpuSpec(cores=2, threads_per_core=1,
                dmips_per_thread=2 * EDISON.cpu.dmips_per_thread),
    power=PowerSpec(
        idle_w=EDISON.power.idle_w,
        busy_w=EDISON.power.busy_w + 0.25,
        adapter_w=0.1,
    ),
)

VARIANTS = (
    ("edison", EDISON),
    ("edison-inic", EDISON_INTEGRATED_NIC),
    ("edison-2x", EDISON_2X),
)


def main() -> None:
    baselines = {}
    for job in ("wordcount", "pi"):
        spec, config = JOB_FACTORIES[job]("dell", 2)
        baselines[job] = run_job("dell", 2, spec, config=config)
    rows = []
    for job in ("wordcount", "pi"):
        for label, hardware in VARIANTS:
            spec, config = JOB_FACTORIES[job]("edison", 35)
            report = run_job("edison", 35, spec, config=config,
                             edison_spec=hardware)
            gain = baselines[job].joules / report.joules
            rows.append((job, label, f"{report.seconds:.0f}",
                         f"{report.joules:.0f}", f"{gain:.2f}x"))
        rows.append((job, "dell-2 (baseline)",
                     f"{baselines[job].seconds:.0f}",
                     f"{baselines[job].joules:.0f}", "1.00x"))
    print(format_table(
        ("job", "node design", "time s", "energy J", "WDPJ vs Dell"),
        rows,
        title="What a better sensor-class node would buy "
              "(35 nodes vs 2 Dell R620)"))
    print()
    print("Takeaways: dropping the USB adapter (~1 W of a 1.7 W node) "
          "multiplies the efficiency gain;\na 2x-clock Atom would even "
          "flip the pi result while barely moving the power budget.")


if __name__ == "__main__":
    main()
