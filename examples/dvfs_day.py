#!/usr/bin/env python
"""Three frequency governors serve the same day; the joules disagree.

The paper runs both platforms at nominal frequency — the knob every
real kernel turns is left untouched.  This script turns it: the
committed seeded sweep (experiments/dvfs_day.json) serves three day
shapes — a flat moderate rate, a diurnal swing, and a diurnal day with
a flash crowd — on both platforms under the three cpufreq-style
governors:

* **performance** — every CPU pinned at P0; the paper's configuration,
  and the joule baseline to beat;
* **powersave** — every CPU parked at its deepest P-state; cheapest
  watts, but watch the p95 and the SLO column when the peak arrives;
* **ondemand** — a control loop per node that reads CPU utilisation
  from the telemetry TSDB every half second, jumps to P0 the moment
  demand arrives and steps down one state at a time when it ebbs.

Every transition re-rates in-flight work exactly like a thermal
throttle (the next CPU slice runs at the new speed) and scales the
busy-power span by the P-state's f^2 voltage factor, so the meter sees
the edge the governor caused.  The closing scorecards ladder each
platform from 10 % to 100 % load to show what all of this is chasing:
energy proportionality — the Edison's idle floor is the villain, and
frequency scaling claws back only the span above it.

Run:  python examples/dvfs_day.py           (~1 minute)
"""

import os

from repro.dvfs import DvfsPlan, dvfs_experiment

PLAN = os.path.join(os.path.dirname(__file__), "..", "experiments",
                    "dvfs_day.json")


def main() -> None:
    plan = DvfsPlan.load(PLAN)
    print(f"Serving the committed sweep ({plan.duration_s:.0f} s days, "
          f"seed {plan.seed}) — 3 governors x 2 platforms x "
          f"{len(plan.shapes)} shapes...")
    print()
    report = dvfs_experiment(plan)
    for line in report.lines():
        print(line)

    print()
    print("where the ondemand days were actually spent:")
    for arm in report.arms:
        if arm.governor != "ondemand":
            continue
        total = sum(arm.residency_s.values()) or 1.0
        mix = ", ".join(f"{name} {seconds / total:.0%}"
                        for name, seconds in sorted(arm.residency_s.items()))
        print(f"  {arm.platform}/{arm.shape_name}: "
              f"{arm.transitions} switches; {mix}")


if __name__ == "__main__":
    main()
