#!/usr/bin/env python
"""MapReduce energy study: all six Table 8 jobs on both clusters.

For each job the script prints run time, energy, mean power and the
Edison cluster's work-done-per-joule gain over the Dell cluster —
positive for the data-intensive jobs, negative for pure-CPU pi,
exactly the paper's Table 8 story.  It also prints a wordcount
execution timeline (the Figure 12 data) as text.

Run:  python examples/mapreduce_energy.py          (~1 minute)
      python examples/mapreduce_energy.py wordcount pi   (subset)
"""

import sys

from repro import JOB_FACTORIES, run_job
from repro.core.report import format_series, format_table
from repro.mapreduce import TABLE8_JOBS


def main() -> None:
    jobs = [j for j in sys.argv[1:] if j in TABLE8_JOBS] or TABLE8_JOBS
    rows = []
    wordcount_report = None
    for job in jobs:
        reports = {}
        for platform, slaves in (("edison", 35), ("dell", 2)):
            spec, config = JOB_FACTORIES[job](platform, slaves)
            reports[platform] = run_job(platform, slaves, spec, config=config)
        if job == "wordcount":
            wordcount_report = reports["edison"]
        gain = reports["dell"].joules / reports["edison"].joules
        rows.append((
            job,
            f"{reports['edison'].seconds:.0f}s/{reports['edison'].joules:.0f}J",
            f"{reports['dell'].seconds:.0f}s/{reports['dell'].joules:.0f}J",
            f"{gain:.2f}x"))
    print(format_table(
        ("job", "35 Edison", "2 Dell", "Edison WDPJ gain"), rows,
        title="Table 8 jobs: time/energy and the efficiency gain"))
    if wordcount_report is not None:
        print()
        timeline = wordcount_report.timeline
        print(format_series("wordcount/edison CPU utilisation",
                            timeline.cpu.pairs(), "t(s)", "util",
                            max_points=20))
        print(format_series("wordcount/edison cluster power",
                            timeline.power_w.pairs(), "t(s)", "W",
                            max_points=20))
        print(format_series("wordcount/edison map progress",
                            timeline.map_progress.pairs(), "t(s)", "frac",
                            max_points=20))


if __name__ == "__main__":
    main()
