#!/usr/bin/env python
"""Monitored chaos: how fast does the alerting plane see a dead node?

A 4-slave Edison Hadoop cluster runs a MapReduce job while a telemetry
plane (per-node scrape agents at 4 Hz plus the stock alert rules)
watches it.  At t=20s one slave is crashed and repaired 30 seconds
later.  Three clocks race:

* **injection** — the ground-truth crash time the fault injector logs;
* **detection** — the ``node_silent`` absence rule fires once the dead
  node's agent has missed ~2.5 scrapes;
* **recovery** — YARN expires the NodeManager after two missed
  heartbeats, blacklists it and re-executes its lost containers.

Detection should land between the other two: after the crash (nothing
is psychic) but before the framework reacts (monitoring that is slower
than recovery is decoration).  The script prints the three timestamps,
the measured time-to-detect, and the alert's full lifecycle.

Run:  python examples/monitored_chaos.py          (~half a minute)
"""

from repro import FaultInjector, JobRunner, Telemetry, default_rules, \
    single_node_kill
from repro.mapreduce.jobs import pi_job
from repro.trace import Tracer

KILL_AT = 20.0
REPAIR_AFTER = 30.0


def main() -> None:
    tracer = Tracer()
    spec, config = pi_job("edison", 4)
    runner = JobRunner("edison", 4, config=config, seed=7, trace=tracer)
    victim = runner.slave_servers[0].name

    plan = single_node_kill(victim, KILL_AT, repair_s=REPAIR_AFTER)
    FaultInjector(runner.cluster, plan, detection_s=0.25)

    telemetry = Telemetry(rules=default_rules())
    telemetry.attach_job(runner)

    print(f"running pi on 4 Edison slaves; {victim} dies at "
          f"t={KILL_AT:.0f}s, repaired at t={KILL_AT + REPAIR_AFTER:.0f}s")
    report = runner.run(spec)
    print(f"job finished: {report.seconds:.0f}s, {report.joules:.0f}J\n")

    detection = telemetry.detection_report()
    crash = next(d for d in detection.detections if d.kind == "crash")
    blacklist = min(e.ts for e in tracer.log.events(category="yarn",
                                                    name="node.blacklist"))

    print(f"  injected  t={crash.injected_at:7.2f}s  "
          f"(ground truth from the fault injector)")
    print(f"  detected  t={crash.detected_at:7.2f}s  "
          f"({crash.rule} fired; time-to-detect "
          f"{crash.time_to_detect:.2f}s)")
    print(f"  recovery  t={blacklist:7.2f}s  "
          f"(YARN blacklists the node and remaps its work)")
    margin = blacklist - crash.detected_at
    print(f"\nthe alert beat YARN's own expiry by {margin:.2f}s\n")

    for line in telemetry.alert_lines():
        print(line)
    print()
    for line in detection.lines():
        print(line)


if __name__ == "__main__":
    main()
