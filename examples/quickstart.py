#!/usr/bin/env python
"""Quickstart: measure work-done-per-joule on both clusters.

Runs the paper's two headline experiments at small scale:

1. a web-serving level on the full Edison (24 web + 11 cache) and Dell
   (2 web + 1 cache) tiers, reporting requests/s, delay, power and
   requests-per-joule, and
2. the wordcount MapReduce job on 35 Edison slaves vs 2 Dell slaves,
   reporting run time, energy and the efficiency gain.

Expected output: the Edison cluster matches the Dell cluster's web
throughput at ~3.5x the requests-per-joule, and finishes wordcount
slower but with ~2.3x less energy.

Run:  python examples/quickstart.py
"""

from repro import JOB_FACTORIES, WebServiceDeployment, run_job


def web_demo() -> None:
    print("== Web serving (Section 5.1) ==")
    results = {}
    for platform in ("edison", "dell"):
        deployment = WebServiceDeployment(platform)
        level = deployment.run_level(concurrency=512, duration=3.0,
                                     warmup=1.0)
        results[platform] = level
        print(f"  {platform:6s}: {level.requests_per_second:7.0f} req/s  "
              f"{level.mean_delay_s * 1000:6.1f} ms  "
              f"{level.mean_power_w:6.1f} W  "
              f"{level.requests_per_second / level.mean_power_w:6.1f} req/J")
    ratio = ((results['edison'].requests_per_second
              / results['edison'].mean_power_w)
             / (results['dell'].requests_per_second
                / results['dell'].mean_power_w))
    print(f"  Edison requests-per-joule advantage: {ratio:.2f}x "
          f"(paper: ~3.5x)")


def mapreduce_demo() -> None:
    print("== MapReduce wordcount (Section 5.2) ==")
    reports = {}
    for platform, slaves in (("edison", 35), ("dell", 2)):
        spec, config = JOB_FACTORIES["wordcount"](platform, slaves)
        report = run_job(platform, slaves, spec, config=config)
        reports[platform] = report
        print(f"  {platform:6s} x{slaves:2d}: {report.seconds:6.0f} s  "
              f"{report.joules:7.0f} J  "
              f"(data-local maps: {report.locality_fraction * 100:.0f}%)")
    gain = reports["dell"].joules / reports["edison"].joules
    print(f"  Edison work-done-per-joule advantage: {gain:.2f}x "
          f"(paper: 2.28x)")


if __name__ == "__main__":
    web_demo()
    print()
    mapreduce_demo()
