#!/usr/bin/env python
"""Gray failures, graceful degradation, and the energy price of both.

Crash faults are the easy case: a dead node stops answering, detectors
fire, and the cluster routes around it (see ``chaos_energy.py``).
*Gray* failures are nastier — a slave stuck at 8 % clock behind a
failed fan, a NIC dropping a third of its frames — because the sick
node keeps heartbeating, so nothing evicts it and every request or
task it touches simply gets slow.

This script runs the repo's two committed gray-failure experiments,
each a paired run under the *same* seeded fault plan:

* Web tier — three Edison web servers throttle, one crashes and
  returns, a cache node drops packets, all mid-measurement.  The
  unmitigated tier blows its availability SLO; with circuit breakers,
  retries, hedging and load shedding armed it serves every user.
* MapReduce — one slave of eight throttles *permanently* during the
  paper's single-wave optimized wordcount.  Unmitigated, seven healthy
  slaves burn idle watts for an hour-plus waiting on the limper; LATE
  speculation re-runs its two stuck maps elsewhere and finishes 3.4x
  sooner on 3.2x fewer joules.

Both reports price the mitigation in joules — speculative twins that
lost, hedges reaped, sheds issued — so the paper's work-per-joule
metric is quoted *net of the resilience tax*.

Run:  python examples/resilient_chaos.py           (~10 seconds)
"""

from repro.resilience import (job_resilience_experiment,
                              web_resilience_experiment)


def main() -> None:
    print("Web tier under gray failures (throttles + crash + packet "
          "loss)...")
    web = web_resilience_experiment()
    print()
    for line in web.lines():
        print(line)

    print()
    print("Single-wave wordcount with one slave stuck at 8% clock...")
    job = job_resilience_experiment()
    print()
    for line in job.lines():
        print(line)

    print()
    ratio = job.unmitigated.seconds / job.mitigated.seconds
    print(f"The takeaway: the web tier buys back its SLO for "
          f"{web.waste_fraction * 100:.1f}% of run energy in duplicated "
          f"work, and speculation turns the job's gray straggler from a "
          f"{ratio:.1f}x makespan blowup into "
          f"{job.mitigated.total_waste_joules:.0f} J of insurance.")


if __name__ == "__main__":
    main()
