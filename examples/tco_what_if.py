#!/usr/bin/env python
"""TCO what-if explorer: when do micro servers stop paying off?

Reproduces Table 10 and then sweeps the two assumptions the paper's
Section 6 model is most sensitive to:

* electricity price (the cheaper the power, the less the Edison's
  efficiency matters against its larger node count), and
* Dell server price (commodity pricing erodes the capex gap).

Run:  python examples/tco_what_if.py
"""

from dataclasses import replace

from repro.core.report import format_table
from repro.tco import DELL_TCO, EDISON_TCO, cluster_tco, savings_fraction, \
    table10


def main() -> None:
    rows = [(f"{scenario}/{load}", f"${values['dell']:.0f}",
             f"${values['edison']:.0f}",
             f"{savings_fraction(values) * 100:.0f}%")
            for (scenario, load), values in table10().items()]
    print(format_table(("scenario", "Dell cluster", "Edison cluster",
                        "savings"), rows,
                       title="Table 10: 3-year TCO (paper's assumptions)"))
    print()

    rows = []
    for price in (0.05, 0.10, 0.20, 0.40):
        dell = cluster_tco(replace(DELL_TCO, electricity_usd_per_kwh=price),
                           3, 0.75)
        edison = cluster_tco(
            replace(EDISON_TCO, electricity_usd_per_kwh=price), 35, 0.75)
        rows.append((f"${price:.2f}/kWh", f"${dell:.0f}", f"${edison:.0f}",
                     f"{(1 - edison / dell) * 100:.0f}%"))
    print(format_table(("electricity", "Dell", "Edison", "savings"), rows,
                       title="Sensitivity: electricity price "
                             "(web scenario, high load)"))
    print()

    rows = []
    for dell_price in (1000.0, 2500.0, 5000.0):
        dell = cluster_tco(replace(DELL_TCO, node_cost_usd=dell_price),
                           3, 0.75)
        edison = cluster_tco(EDISON_TCO, 35, 0.75)
        rows.append((f"${dell_price:.0f}/server", f"${dell:.0f}",
                     f"${edison:.0f}", f"{(1 - edison / dell) * 100:.0f}%"))
    print(format_table(("Dell price", "Dell", "Edison", "savings"), rows,
                       title="Sensitivity: brawny server price"))


if __name__ == "__main__":
    main()
