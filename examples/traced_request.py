#!/usr/bin/env python
"""One slow request, end to end: tree, critical path, joules, flame.

A 1/8-scale Edison web tier serves a short traced run with exemplar
telemetry attached.  The exemplar store hands us the *worst* latency
the histogram saw with the trace id that produced it; the causality
package then pulls that request's causal tree out of the span stream
and answers, for this one request:

* what the tree looks like (connection → call → request → cache/db);
* where its wall time went — the critical path split into working
  (``self``) and waiting (``blocked``) segments;
* how many joules it was charged — the power meter's per-node traces
  integrated over its spans, marginal watts split across whoever was
  resident;
* and, for the whole run, a latency flame graph
  (``traced_request_flame.html``, self-contained SVG — open it in any
  browser).

Run:  python examples/traced_request.py           (~a few seconds)
"""

from repro.causality import (attribute_energy, build_forest,
                             critical_path, latency_stacks,
                             write_flame_html)
from repro.telemetry import Telemetry
from repro.trace import Tracer
from repro.web import WebServiceDeployment

FLAME = "traced_request_flame.html"


def main() -> None:
    tracer = Tracer()
    telemetry = Telemetry(exemplars=True)
    deployment = WebServiceDeployment("edison", "1/8", seed=11,
                                      trace=tracer)
    telemetry.attach_web(deployment)
    deployment.run_level(32, duration=3.0, warmup=0.5)

    worst = telemetry.exemplars.worst()
    print(f"worst observed request: {worst.value * 1000:.1f} ms "
          f"(trace {worst.trace_id})")

    forest = build_forest(tracer.log)
    # A still-open connection at run end leaves its root span unflushed;
    # trees() then hands us the orphaned subtrees of the same trace.
    roots = forest.trees().get(worst.trace_id, [])
    print("\ncausal tree:")
    for root in roots:
        for node in root.walk():
            depth = len(forest.ancestors(node.span_id))
            flag = f"  [aborted: {node.aborted}]" if node.aborted else ""
            where = f" @ {node.node}" if node.node else ""
            print(f"  {'  ' * depth}{node.name}{where} "
                  f"{node.dur * 1000:8.3f} ms{flag}")

    tree = max(roots, key=lambda r: r.dur)
    path = critical_path(tree)
    kinds = path.by_kind()
    print(f"\ncritical path ({tree.dur * 1000:.1f} ms total = "
          f"{kinds.get('self', 0.0) * 1000:.1f} working + "
          f"{kinds.get('blocked', 0.0) * 1000:.1f} waiting):")
    for seg in path.longest(6):
        where = f" @ {seg.node}" if seg.node else ""
        print(f"  {seg.duration * 1000:8.3f} ms  {seg.kind:7s} "
              f"{seg.name}{where}")

    idle = {server.name: server.spec.power.min_w
            for server in deployment.cluster.servers.values()}
    attribution = attribute_energy(tracer.log, idle_w=idle,
                                   forest=forest)
    joules = attribution.by_trace(forest).get(worst.trace_id, 0.0)
    total = sum(acct.attributed_j for acct in attribution.nodes.values())
    print(f"\nenergy charged to this connection: {joules * 1000:.2f} mJ "
          f"(of {total:.2f} J attributed across the run; per-node "
          f"ledgers conserve exactly)")

    write_flame_html(FLAME, latency_stacks(forest),
                     title="latency flame: traced 1/8 Edison web run",
                     unit="µs")
    print(f"\nlatency flame graph -> {FLAME}")


if __name__ == "__main__":
    main()
