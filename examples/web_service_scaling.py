#!/usr/bin/env python
"""Web-tier scaling study: throughput and delay vs concurrency and size.

Reproduces the structure of Figures 4 and 7: the Edison web tier is
swept at four sizes (3/6/12/24 web servers) across httperf concurrency
levels, showing (a) linear throughput scaling, (b) the per-size
concurrency cliff where 5xx errors begin, and (c) the flat power line
that makes the micro cluster's requests-per-joule so strong.

Run:  python examples/web_service_scaling.py          (~2 minutes)
      python examples/web_service_scaling.py --quick  (fewer levels)
"""

import sys

from repro import sweep_concurrency
from repro.core.report import format_table

LEVELS_FULL = (8, 32, 128, 256, 512, 1024, 2048)
LEVELS_QUICK = (64, 512, 1024)


def main() -> None:
    levels = LEVELS_QUICK if "--quick" in sys.argv else LEVELS_FULL
    rows = []
    summary = []
    for scale in ("1/8", "1/4", "1/2", "full"):
        sweep = sweep_concurrency("edison", scale, levels=levels,
                                  duration=2.5, warmup=0.8)
        for level in sweep.levels:
            rows.append((scale, level.concurrency,
                         f"{level.requests_per_second:.0f}",
                         f"{level.mean_delay_s * 1000:.1f}",
                         level.error_calls,
                         f"{level.mean_power_w:.1f}"))
        summary.append((scale, f"{sweep.peak_rps():.0f}",
                        sweep.max_clean_concurrency()))
    print(format_table(
        ("scale", "conn/s", "req/s", "delay ms", "5xx", "power W"),
        rows, title="Edison web tier sweep (0% images, 93% hit ratio)"))
    print()
    print(format_table(
        ("scale", "peak req/s", "max clean conn/s"), summary,
        title="Linear scaling: peak throughput and the error cliff "
              "both scale with web-server count"))


if __name__ == "__main__":
    main()
