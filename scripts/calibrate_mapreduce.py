"""Fit per-job cost knobs to the full-scale Table 8 cells.

Protocol (see src/repro/mapreduce/costs.py): the Edison-35 run time
pins the phase path lengths (uniform scale on map/sort/reduce/fixed MI),
the Dell-2 run time pins the Dell java factor.  Alternate 1-D secant
steps until both land within tolerance, then print the fitted JobCosts
to paste into src/repro/mapreduce/jobs/*.py.

Run:  python scripts/calibrate_mapreduce.py
"""

from dataclasses import replace

from repro.core.paperdata import T8
from repro.mapreduce import JOB_FACTORIES, run_job
from repro.mapreduce.costs import ALLOC_LEAD_S

TOLERANCE = 0.03
MAX_ROUNDS = 8


def scaled(costs, scale):
    return replace(
        costs,
        map_mi_per_mb=costs.map_mi_per_mb * scale,
        sort_mi_per_mb=costs.sort_mi_per_mb * scale,
        reduce_mi_per_mb=costs.reduce_mi_per_mb * scale,
        map_fixed_mi=costs.map_fixed_mi * scale,
    )


def with_dell_factor(costs, factor):
    return replace(costs, java_factor={"edison": 1.0, "dell": factor})


def run(job, platform, slaves, costs):
    spec, config = JOB_FACTORIES[job](platform, slaves)
    spec = replace(spec, costs=costs)
    report = run_job(platform, slaves, spec, config=config)
    return report.seconds


def calibrate(job):
    spec, _ = JOB_FACTORIES[job]("edison", 35)
    costs = spec.costs
    target_e = T8[job]["edison"][35].seconds
    target_d = T8[job]["dell"][2].seconds
    for round_no in range(MAX_ROUNDS):
        t_e = run(job, "edison", 35, costs)
        print(f"  [{job} r{round_no}] edison={t_e:.0f}s", flush=True)
        err_e = t_e / target_e - 1
        if abs(err_e) > TOLERANCE:
            work = t_e - ALLOC_LEAD_S["edison"]
            want = target_e - ALLOC_LEAD_S["edison"]
            costs = scaled(costs, max(0.2, min(5.0, want / work)))
            continue
        t_d = run(job, "dell", 2, costs)
        print(f"  [{job} r{round_no}] dell={t_d:.0f}s", flush=True)
        err_d = t_d / target_d - 1
        if abs(err_d) > TOLERANCE:
            work = t_d - ALLOC_LEAD_S["dell"]
            want = target_d - ALLOC_LEAD_S["dell"]
            factor = costs.factor("dell") * max(0.2, min(5.0, want / work))
            costs = with_dell_factor(costs, factor)
            continue
        break
    t_e = run(job, "edison", 35, costs)
    t_d = run(job, "dell", 2, costs)
    print(f"{job}: edison {t_e:.0f}s (target {target_e}) "
          f"dell {t_d:.0f}s (target {target_d})")
    print(f"  map={costs.map_mi_per_mb:.0f} sort={costs.sort_mi_per_mb:.0f} "
          f"reduce={costs.reduce_mi_per_mb:.0f} "
          f"fixed={costs.map_fixed_mi:.0f} "
          f"dell_factor={costs.factor('dell'):.2f}", flush=True)


if __name__ == "__main__":
    for job in ("wordcount", "wordcount2", "logcount", "logcount2", "pi",
                "terasort"):
        calibrate(job)
