"""Export every figure's data series as CSV for plotting.

Writes one CSV per paper figure into ``figures/`` so any plotting tool
can redraw them: fig4_7 (throughput/delay/power vs concurrency),
fig10_11 (delay histograms), fig12_17 (job timelines), fig18_19 (time
and energy vs cluster size).

Run:  python scripts/export_figures.py [output_dir]   (~10 minutes)
"""

import csv
import os
import sys

from repro.core import paperdata as paper
from repro.mapreduce import JOB_FACTORIES, TABLE8_JOBS, run_scaling_grid, \
    run_job
from repro.web import WebWorkload, delay_distribution, sweep_concurrency


def write_csv(path, headers, rows):
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    print(f"wrote {path} ({len(rows)} rows)")


def export_fig4_7(outdir):
    rows = []
    for platform, scales in (("edison", ("full", "1/2", "1/4", "1/8")),
                             ("dell", ("full", "1/2"))):
        for scale in scales:
            sweep = sweep_concurrency(platform, scale, duration=3.0)
            for level in sweep.levels:
                rows.append((platform, scale, level.concurrency,
                             round(level.requests_per_second, 1),
                             round(level.mean_delay_s * 1000, 2),
                             level.error_calls,
                             round(level.mean_power_w, 2)))
    write_csv(os.path.join(outdir, "fig4_7_web_baseline.csv"),
              ("platform", "scale", "concurrency", "rps", "delay_ms",
               "errors_5xx", "power_w"), rows)


def export_fig6_9(outdir):
    heavy = WebWorkload(image_fraction=0.20, cache_hit_ratio=0.93)
    rows = []
    for platform in ("edison", "dell"):
        sweep = sweep_concurrency(platform, "full", heavy, duration=3.0)
        for level in sweep.levels:
            rows.append((platform, level.concurrency,
                         round(level.requests_per_second, 1),
                         round(level.mean_delay_s * 1000, 2),
                         level.error_calls, round(level.mean_power_w, 2)))
    write_csv(os.path.join(outdir, "fig6_9_web_heavy.csv"),
              ("platform", "concurrency", "rps", "delay_ms", "errors_5xx",
               "power_w"), rows)


def export_fig10_11(outdir):
    rows = []
    for platform in ("edison", "dell"):
        log = delay_distribution(platform, duration=6.0, warmup=2.0)
        for bin_start, count in log.histogram(bin_width_s=0.25, max_s=8.0):
            rows.append((platform, bin_start, count))
    write_csv(os.path.join(outdir, "fig10_11_delay_hist.csv"),
              ("platform", "delay_bin_s", "samples"), rows)


def export_fig12_17(outdir):
    rows = []
    for job in ("wordcount", "wordcount2", "pi"):
        for platform, slaves in (("edison", 35), ("dell", 2)):
            spec, config = JOB_FACTORIES[job](platform, slaves)
            report = run_job(platform, slaves, spec, config=config)
            timeline = report.timeline
            for i, t in enumerate(timeline.cpu.times):
                rows.append((job, platform, round(t, 1),
                             round(timeline.cpu.values[i], 3),
                             round(timeline.mem.values[i], 3),
                             round(timeline.power_w.values[i], 2),
                             round(timeline.map_progress.at(t), 3),
                             round(timeline.reduce_progress.at(t), 3)))
    write_csv(os.path.join(outdir, "fig12_17_timelines.csv"),
              ("job", "platform", "t_s", "cpu", "mem", "power_w",
               "map_progress", "reduce_progress"), rows)


def export_fig18_19(outdir):
    rows = []
    for platform in ("edison", "dell"):
        grid = run_scaling_grid(platform)
        for job in TABLE8_JOBS:
            for size, report in sorted(grid.reports[job].items()):
                published = paper.T8[job][platform][size]
                rows.append((job, platform, size, round(report.seconds, 1),
                             round(report.joules, 1), published.seconds,
                             published.joules))
    write_csv(os.path.join(outdir, "fig18_19_table8_scaling.csv"),
              ("job", "platform", "slaves", "sim_seconds", "sim_joules",
               "paper_seconds", "paper_joules"), rows)


def main() -> None:
    outdir = sys.argv[1] if len(sys.argv) > 1 else "figures"
    os.makedirs(outdir, exist_ok=True)
    export_fig4_7(outdir)
    export_fig6_9(outdir)
    export_fig10_11(outdir)
    export_fig12_17(outdir)
    export_fig18_19(outdir)


if __name__ == "__main__":
    main()
