"""Regenerate EXPERIMENTS.md: paper vs simulated for every table/figure.

Runs the entire evaluation (Section 4 micro-benchmarks, the Section 5.1
web sweeps, the full Table 8 MapReduce grid, and the Section 6 TCO
model) and writes the comparison document.  Takes ~10 minutes.

Run:  python scripts/generate_experiments_report.py [output.md]
"""

import sys
import time

from repro.cluster import Cluster
from repro.core import paperdata as paper
from repro.faults import job_kill_experiment, web_kill_experiment
from repro.hardware import DELL_R620, EDISON, make_server
from repro.core.capacity import replacement_estimate
from repro.mapreduce import TABLE8_JOBS, run_scaling_grid
from repro.mapreduce.scaling import efficiency_table
from repro.microbench import run_dhrystone, run_iperf, run_sysbench_memory
from repro.sim import Simulation
from repro.tco import savings_fraction, table10
from repro.web import (
    WebWorkload, delay_distribution, energy_efficiency_ratio,
    measure_delay_decomposition, sweep_concurrency,
)

WEB_DURATION = 3.0


def row(label, paper_value, measured, unit=""):
    if paper_value:
        err = f"{(measured - paper_value) / paper_value * 100:+.1f}%"
    else:
        err = "n/a"
    return f"| {label} | {paper_value:g}{unit} | {measured:g}{unit} | {err} |"


def header(title):
    return [f"\n## {title}\n",
            "| experiment | paper | simulated | error |",
            "|---|---|---|---|"]


def section4(lines):
    lines += header("Section 4 — individual server tests")
    sim = Simulation()
    dmips_e = run_dhrystone(sim, make_server(sim, EDISON, "e")).dmips
    sim = Simulation()
    dmips_d = run_dhrystone(sim, make_server(sim, DELL_R620, "d")).dmips
    lines.append(row("Dhrystone Edison (DMIPS)", paper.S41_EDISON_DMIPS,
                     round(dmips_e, 1)))
    lines.append(row("Dhrystone Dell (DMIPS)", paper.S41_DELL_DMIPS,
                     round(dmips_d, 1)))
    estimate = replacement_estimate(EDISON, DELL_R620)
    lines.append(row("Table 2: Edisons per Dell", paper.T2_EDISONS_PER_DELL,
                     estimate.required))
    sim = Simulation()
    mem_e = run_sysbench_memory(sim, make_server(sim, EDISON, "e"),
                                1 << 20, 2).rate_bps
    sim = Simulation()
    mem_d = run_sysbench_memory(sim, make_server(sim, DELL_R620, "d"),
                                1 << 20, 12).rate_bps
    lines.append(row("S4.2 Edison mem BW (GB/s)",
                     paper.S42_EDISON_MEM_BW / 1e9, round(mem_e / 1e9, 2)))
    lines.append(row("S4.2 Dell mem BW (GB/s)", paper.S42_DELL_MEM_BW / 1e9,
                     round(mem_d / 1e9, 2)))
    for pair, spec_a, spec_b in ((("dell", "dell"), DELL_R620, DELL_R620),
                                 (("edison", "edison"), EDISON, EDISON)):
        sim = Simulation()
        cluster = Cluster(sim)
        cluster.add(spec_a, "a")
        cluster.add(spec_b, "b")
        tcp = run_iperf(sim, cluster.topology, "a", "b",
                        nbytes=250e6).goodput_bps
        lines.append(row(f"S4.4 TCP {pair[0]}-{pair[1]} (Mb/s)",
                         paper.S44_TCP_BPS[pair] / 1e6, round(tcp / 1e6, 1)))


def section51(lines):
    lines += header("Section 5.1 — web service (Figures 4-11, Table 7)")
    light_e = sweep_concurrency("edison", "full", duration=WEB_DURATION)
    light_d = sweep_concurrency("dell", "full", duration=WEB_DURATION)
    lines.append(row("Fig 4 Edison peak req/s", paper.S51_PEAK_RPS_LIGHT,
                     round(light_e.peak_rps())))
    lines.append(row("Fig 4 Dell peak req/s", paper.S51_PEAK_RPS_LIGHT,
                     round(light_d.peak_rps())))
    lines.append(row("Fig 4 Edison power (W)", 57.0,
                     round(light_e.mean_power_at_peak(), 1)))
    lines.append(row("Fig 4 Dell power (W)", 185.0,
                     round(light_d.mean_power_at_peak(), 1)))
    lines.append(row("Fig 4 requests/joule gain",
                     paper.S51_ENERGY_EFFICIENCY_RATIO,
                     round(energy_efficiency_ratio(light_e, light_d), 2)))
    lines.append(row("Fig 4 Edison max clean conn/s",
                     paper.S51_EDISON_MAX_CONCURRENCY,
                     light_e.max_clean_concurrency()))
    lines.append(row("Fig 4 Dell max clean conn/s",
                     paper.S51_DELL_MAX_CONCURRENCY,
                     light_d.max_clean_concurrency()))
    heavy = WebWorkload(image_fraction=0.20, cache_hit_ratio=0.93)
    heavy_e = sweep_concurrency("edison", "full", heavy,
                                duration=WEB_DURATION)
    heavy_d = sweep_concurrency("dell", "full", heavy, duration=WEB_DURATION)
    lines.append(row("Fig 6 heavy/light peak ratio",
                     paper.S51_HEAVY_TO_LIGHT_RPS,
                     round(heavy_e.peak_rps() / paper.S51_PEAK_RPS_LIGHT, 3)))
    lines.append(row("Fig 6 requests/joule gain",
                     paper.S51_ENERGY_EFFICIENCY_RATIO,
                     round(energy_efficiency_ratio(heavy_e, heavy_d), 2)))
    for rate, db, cache, total in paper.T7_ROWS:
        e = measure_delay_decomposition("edison", rate,
                                        duration=WEB_DURATION, warmup=1.0)
        d = measure_delay_decomposition("dell", rate, duration=WEB_DURATION,
                                        warmup=1.0)
        lines.append(row(f"T7@{rate} Edison total (ms)", total[0],
                         round(e.total_delay_s * 1e3, 2)))
        lines.append(row(f"T7@{rate} Dell total (ms)", total[1],
                         round(d.total_delay_s * 1e3, 2)))
    hist_d = delay_distribution("dell", duration=6.0, warmup=2.0)
    hist_e = delay_distribution("edison", duration=6.0, warmup=2.0)
    lines.append(row("Fig 11 Dell mass above 0.9s (%)", 30.0,
                     round(hist_d.fraction_above(0.9) * 100, 1)))
    lines.append(row("Fig 10 Edison mass above 0.9s (%)", 1.0,
                     round(hist_e.fraction_above(0.9) * 100, 1)))


def section52(lines):
    lines += header("Section 5.2/5.3 — MapReduce (Table 8, Figures 18-19)")
    edison = run_scaling_grid("edison")
    dell = run_scaling_grid("dell")
    for job in TABLE8_JOBS:
        for platform, grid in (("edison", edison), ("dell", dell)):
            for size, report in sorted(grid.reports[job].items(),
                                       reverse=True):
                published = paper.T8[job][platform][size]
                lines.append(row(f"{job} {platform}-{size} time (s)",
                                 published.seconds, round(report.seconds)))
                lines.append(row(f"{job} {platform}-{size} energy (J)",
                                 published.joules, round(report.joules)))
    for job, (simulated, published) in efficiency_table(edison, dell).items():
        lines.append(row(f"{job} full-scale WDPJ gain", round(published, 3),
                         round(simulated, 3)))
    lines.append(row("S5.3 Edison mean speed-up",
                     paper.S53_EDISON_MEAN_SPEEDUP,
                     round(edison.mean_speedup(), 2)))
    lines.append(row("S5.3 Dell mean speed-up", paper.S53_DELL_MEAN_SPEEDUP,
                     round(dell.mean_speedup(), 2)))


def section_tracing(lines):
    lines.append("\n## Tracing & profiling a run\n")
    lines.append('''Any of the runs above can be captured as a structured trace and
inspected span-by-span.  To record a Figure-12-style wordcount run
(map/reduce attempts, shuffles, container grants, vcore queueing and
the power-meter track on one timeline):

```bash
python -m repro job wordcount --platform edison --slaves 4 --trace fig12.json
```

then open `fig12.json` in [Perfetto](https://ui.perfetto.dev) (or
`chrome://tracing`): each simulated node is a named thread track;
`task` spans show map/reduce attempts and shuffles, `resource` spans
show vcore/disk queueing, and the `power` counter track is the meter
trace whose integral is the reported energy.  The same flag works for
the web tier (`python -m repro web ... --trace web.json`), producing
per-request connect/cache/db/request spans.

The trace is also a correctness oracle: `tests/test_trace.py`
re-derives the Table 7 delay decomposition from the web spans alone and
holds it to within 1 % of the call-log numbers, and asserts traced and
untraced runs produce bit-identical results.''')


def section_faults(lines):
    lines.append("\n## Reliability & fault injection\n")
    lines.append('''The paper's Section 5.2 chose HDFS replication 2 on the 35-node
Edison cluster because sensor-class nodes drop out routinely; the
implicit claim is that losing one node is a *marginal* event.
`repro.faults` makes that claim measurable: a seeded fault plan kills
nodes, cuts their power, degrades NICs or fails disks mid-run, the
YARN/HDFS/web layers detect and recover, and the chaos runs below
compare against bit-identical fault-free twins (an attached injector
with an empty plan changes nothing — asserted by tests, like tracing).

```bash
python -m repro chaos web --platform edison --concurrency 2048
python -m repro chaos job wordcount --platform edison --slaves 35 --kill-at 150
python -m repro web --platform edison --fault-plan plan.json
```
''')
    lines.append("| experiment | measured |")
    lines.append("|---|---|")
    web = web_kill_experiment(concurrency=2048, duration=4.0, warmup=1.0,
                              kill_at=0.0)
    dell = web_kill_experiment(platform="dell", concurrency=2048,
                               duration=4.0, warmup=1.0, kill_at=0.0)
    job = job_kill_experiment("wordcount", "edison", 35, kill_at=150.0)
    lines.append(f"| kill 1 of {web.web_servers} Edison web servers: "
                 f"goodput lost | {web.goodput_loss_fraction * 100:.1f} % "
                 f"(capacity share {web.expected_loss_fraction * 100:.1f} %)"
                 f" |")
    lines.append(f"| kill 1 of {dell.web_servers} Dell web servers: "
                 f"goodput lost | {dell.goodput_loss_fraction * 100:.1f} % |")
    status = "completes" if job.completed else "fails"
    lines.append(f"| kill 1 of 35 Hadoop slaves at 150 s: wordcount | "
                 f"{status}, +{job.time_overhead_fraction * 100:.0f} % time, "
                 f"+{job.energy_overhead_fraction * 100:.0f} % energy |")
    lines.append(f"| map outputs lost and re-executed | "
                 f"{job.recovered_maps} |")
    lines.append('''
The contrast is the reliability argument in one table: at saturation
the 24-server Edison web tier sheds ~1/24 of its goodput when a node
dies — close to the 1/35 marginal-node share — while the 2-server
Dell tier loses half its capacity.  The killed Hadoop slave costs a
re-execution and replica-fallback overhead, not the job; a job fails
cleanly only when *every* replica of a block is gone.''')


def section6(lines):
    lines += header("Section 6 — TCO (Table 10)")
    results = table10()
    for key, values in results.items():
        published = paper.T10[key]
        lines.append(row(f"TCO {key[0]}/{key[1]} Dell ($)",
                         published["dell"], round(values["dell"], 1)))
        lines.append(row(f"TCO {key[0]}/{key[1]} Edison ($)",
                         published["edison"], round(values["edison"], 1)))
    best = max(savings_fraction(v) for v in results.values())
    lines.append(row("best Edison savings (%)", 47.0, round(best * 100, 1)))


PREAMBLE = '''# EXPERIMENTS — paper vs simulated, every table and figure

Generated by `python scripts/generate_experiments_report.py`.

Full-scale MapReduce cells (35 Edison / 2 Dell) and the per-platform
hardware capacities are **calibration anchors** (fitted; see
`src/repro/mapreduce/costs.py`); everything else — scaled-down cluster
sizes, web sweeps, delay decompositions, TCO — is a **prediction** of
the simulator under the calibrated hardware models.

Known deviations (and why they are accepted):

* The paper's smallest-cluster MapReduce cells (4/8 Edison nodes,
  1 Dell node for wordcount/logcount/terasort) degrade *superlinearly*
  in ways the simulator under-predicts by up to ~50 %.  The paper
  itself attributes such cells to memory pressure and disk-seek thrash
  at saturation, neither of which the fluid models capture; the
  qualitative ordering (smaller cluster -> slower, sometimes cheaper in
  energy) is preserved.
* Edison cache-fetch delay at intermediate request rates (Table 7,
  1920-3840 req/s) grows more slowly than the paper's measurement; the
  blow-up at the top rate is reproduced.  The paper's own mid-rate
  growth starts at ~25 % cluster utilisation, which no open queueing
  model reproduces without an additional contention source.
* Dell MapReduce energies sit ~5-20 % below the paper (the component
  power blend under-credits IO-phase draw on the Xeon); who-wins and
  the efficiency factors are unaffected.
'''


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    start = time.time()
    lines = [PREAMBLE]
    section4(lines)
    section51(lines)
    section52(lines)
    section_tracing(lines)
    section_faults(lines)
    section6(lines)
    lines.append(f"\n*(regenerated in {time.time() - start:.0f} s of "
                 f"wall-clock simulation)*")
    with open(output, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    print(f"wrote {output} in {time.time() - start:.0f}s")


if __name__ == "__main__":
    main()
