#!/usr/bin/env python
"""Autoscale smoke: off-path bit-identity plus the three-arm day.

Two contracts, checked in order:

1. **Off-path fidelity** — with autoscaling *off* (either ``None`` or
   ``AutoscaleConfig.disabled()``) a fixed-rate web level, a shaped
   static day and a hybrid shaped day must match the committed digests
   in ``experiments/autoscale_baseline.json`` float-for-float, and the
   ``None`` and ``disabled()`` hybrid variants must match each other.
   The autoscale package must be invisible until armed.

2. **Three-arm acceptance** — the committed seeded day in
   ``experiments/autoscale_day.json`` must show the autoscaled hybrid
   strictly dominating at least one static arm on joules at
   equal-or-better availability, with the elasticity bill (boot and
   drain joules) itemised and non-zero.  The full report lands in
   ``--out-dir`` as a JSON artifact.

Run:  PYTHONPATH=src python scripts/run_autoscale_smoke.py
      PYTHONPATH=src python scripts/run_autoscale_smoke.py --update
"""

import os
import sys
from dataclasses import asdict

import smokelib
from smokelib import check

smokelib.bootstrap()

BASELINE = os.path.join(smokelib.EXPERIMENTS, "autoscale_baseline.json")
DAY = os.path.join(smokelib.EXPERIMENTS, "autoscale_day.json")


def off_path_digests(autoscale):
    """Fidelity digests with the autoscaler off: one fixed-rate level,
    one shaped static day, one shaped hybrid day."""
    from repro.autoscale import HybridWebDeployment
    from repro.autoscale.report import DAY_SEED
    from repro.web import (DiurnalShape, ShapedLoad,
                           WebServiceDeployment)

    shape = ShapedLoad(DiurnalShape(base_rps=60.0, peak_rps=240.0,
                                    period_s=24.0))
    static = WebServiceDeployment("edison", "1/4", seed=DAY_SEED)
    level = static.run_level(24, duration=3.0, warmup=1.0)
    shaped = WebServiceDeployment("edison", "1/4", seed=DAY_SEED)
    shaped_level = shaped.run_shaped(shape, 24.0, calls=5)
    hybrid = HybridWebDeployment(edison_web=2, dell_web=1, cache=1,
                                 seed=DAY_SEED, autoscale=autoscale)
    hybrid_level = hybrid.run_day(shape, 24.0, calls=5)
    return {"level": asdict(level),
            "shaped": asdict(shaped_level),
            "hybrid": asdict(hybrid_level),
            "hybrid_joules": hybrid.meter.energy_joules()}


def main() -> int:
    args = smokelib.make_parser(__doc__).parse_args()

    from repro.autoscale import (AutoscaleConfig, DayPlan,
                                 autoscale_experiment)

    print("off-path fidelity (autoscale package must be invisible):")
    plain = off_path_digests(None)
    disabled = off_path_digests(AutoscaleConfig.disabled())
    check(plain == disabled,
          "autoscale=None and AutoscaleConfig.disabled() are "
          "bit-identical")
    smokelib.compare_or_update(
        BASELINE, plain, args.update,
        "off-path digests match the committed baseline")

    print("three-arm acceptance (committed day, committed seed):")
    plan = DayPlan.load(DAY)
    report = autoscale_experiment(plan)
    for line in report.lines():
        print("  " + line)

    hybrid = report.hybrid
    dominated = report.dominated_arms()
    check(bool(dominated),
          "hybrid strictly dominates a static arm on joules at "
          f"equal-or-better availability ({', '.join(dominated) or 'none'})")
    check(bool(hybrid.availability_met),
          "hybrid arm meets the availability SLO "
          f"({(hybrid.availability or 0) * 100:.4f}%)")
    check(hybrid.boot_j > 0,
          f"boot energy is itemised ({hybrid.boot_j:.1f} J over "
          f"{hybrid.counters.get('boots', 0)} boots)")
    check(hybrid.drain_j > 0,
          f"drain energy is itemised ({hybrid.drain_j:.1f} J over "
          f"{hybrid.counters.get('drains', 0)} drains)")
    check(hybrid.counters.get("evals", 0) > 0,
          f"the controller evaluated ({hybrid.counters.get('evals', 0)} "
          "ticks)")

    smokelib.write_artifact(args.out_dir, "autoscale_report.json",
                            report.to_dict())
    return smokelib.finish()


if __name__ == "__main__":
    sys.exit(main())
