#!/usr/bin/env python
"""Carbon smoke: off-path bit-identity plus the eight-arm day.

Three contracts, checked in order:

1. **Off-path fidelity** — the carbon plane must be invisible until
   used: every committed job kind, run plainly on both platforms, must
   match the digests in ``experiments/carbon_baseline.json``
   float-for-float, and attaching an (idle) empty-plan FaultInjector —
   the only prerequisite the suspend-resume arm has — must not move a
   single float.

2. **Front-end neutrality** — the no-wait scheduler arm is a queue in
   front of the same runs: its per-job seconds and joules must equal
   the plain digests exactly.

3. **Eight-arm acceptance** — the committed seeded day in
   ``experiments/carbon_day.json`` must show a waiting or
   suspend-resume policy beating no-wait on grams CO2 at zero deadline
   misses on both platforms, with the suspend-resume arm actually
   suspending and the Edison-vs-R620 delta present.  The full report
   lands in ``--out-dir`` as a JSON artifact.

Run:  PYTHONPATH=src python scripts/run_carbon_smoke.py
      PYTHONPATH=src python scripts/run_carbon_smoke.py --update
"""

import os
import sys

import smokelib
from smokelib import check

smokelib.bootstrap()

BASELINE = os.path.join(smokelib.EXPERIMENTS, "carbon_baseline.json")
DAY = os.path.join(smokelib.EXPERIMENTS, "carbon_day.json")

FLEETS = (("edison", 4), ("dell", 2))


def plain_digests(with_injector: bool, seed: int):
    """Every committed job kind on both platforms, run outside any
    carbon machinery (optionally with an idle empty-plan injector)."""
    from repro.carbon.jobspec import CARBON_JOB_KINDS
    from repro.faults import FaultInjector
    from repro.mapreduce.runtime import JobRunner

    digests = {}
    for kind in sorted(CARBON_JOB_KINDS):
        for platform, slaves in FLEETS:
            spec, config = CARBON_JOB_KINDS[kind](platform)
            runner = JobRunner(platform, slaves, config=config, seed=seed)
            if with_injector:
                FaultInjector(runner.cluster)
            report = runner.run(spec)
            digests[f"{kind}/{platform}"] = {
                "seconds": report.seconds, "joules": report.joules,
                "locality": report.locality_fraction}
    return digests


def main() -> int:
    args = smokelib.make_parser(__doc__).parse_args()

    from repro.carbon import CarbonDayPlan, carbon_experiment

    plan = CarbonDayPlan.load(DAY)

    print("off-path fidelity (carbon plane must be invisible):")
    plain = plain_digests(with_injector=False, seed=plan.seed)
    armed = plain_digests(with_injector=True, seed=plan.seed)
    check(plain == armed,
          "an idle empty-plan FaultInjector moves no float")
    smokelib.compare_or_update(
        BASELINE, plain, args.update,
        "plain-run digests match the committed baseline")

    print("eight-arm acceptance (committed day, committed seed):")
    report = carbon_experiment(plan)
    for line in report.lines():
        print("  " + line)

    print("front-end neutrality (no-wait arm == plain runs):")
    for platform, _ in FLEETS:
        arm = report.arm("no-wait", platform)
        neutral = all(
            record["joules"] == plain[f"{record['kind']}/{platform}"]
            ["joules"]
            and record["seconds"]
            == plain[f"{record['kind']}/{platform}"]["seconds"]
            for record in arm.records)
        check(neutral,
              f"no-wait/{platform} per-job seconds+joules equal the "
              "plain runs")

    for platform, _ in FLEETS:
        dominating = report.dominating_policies(platform)
        check(bool(dominating),
              f"a policy beats no-wait on grams at 0 misses on "
              f"{platform} ({', '.join(dominating) or 'none'})")
        arm = report.arm("suspend-resume", platform)
        check(arm.suspensions > 0,
              f"suspend-resume/{platform} actually parked the fleet "
              f"({arm.suspensions} suspensions, "
              f"{arm.suspended_s:.0f} s)")
    delta = report.platform_delta()
    check(delta is not None and delta["no_wait_ratio"] > 1.0,
          "the R620 day emits more CO2 than the Edison day "
          + (f"({delta['no_wait_ratio']:.2f}x at release)"
             if delta else "(no delta)"))

    smokelib.write_artifact(args.out_dir, "carbon_report.json",
                            report.to_dict())
    return smokelib.finish()


if __name__ == "__main__":
    sys.exit(main())
