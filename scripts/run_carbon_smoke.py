#!/usr/bin/env python
"""Carbon smoke: off-path bit-identity plus the eight-arm day.

Three contracts, checked in order:

1. **Off-path fidelity** — the carbon plane must be invisible until
   used: every committed job kind, run plainly on both platforms, must
   match the digests in ``experiments/carbon_baseline.json``
   float-for-float, and attaching an (idle) empty-plan FaultInjector —
   the only prerequisite the suspend-resume arm has — must not move a
   single float.

2. **Front-end neutrality** — the no-wait scheduler arm is a queue in
   front of the same runs: its per-job seconds and joules must equal
   the plain digests exactly.

3. **Eight-arm acceptance** — the committed seeded day in
   ``experiments/carbon_day.json`` must show a waiting or
   suspend-resume policy beating no-wait on grams CO2 at zero deadline
   misses on both platforms, with the suspend-resume arm actually
   suspending and the Edison-vs-R620 delta present.  The full report
   lands in ``--out-dir`` as a JSON artifact.

Run:  PYTHONPATH=src python scripts/run_carbon_smoke.py
      PYTHONPATH=src python scripts/run_carbon_smoke.py --update
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

REPO = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
BASELINE = os.path.join(REPO, "experiments", "carbon_baseline.json")
DAY = os.path.join(REPO, "experiments", "carbon_day.json")

failures = []


def check(ok: bool, what: str) -> None:
    print(("  ok  " if ok else "  FAIL") + f"  {what}")
    if not ok:
        failures.append(what)


FLEETS = (("edison", 4), ("dell", 2))


def plain_digests(with_injector: bool, seed: int):
    """Every committed job kind on both platforms, run outside any
    carbon machinery (optionally with an idle empty-plan injector)."""
    from repro.carbon.jobspec import CARBON_JOB_KINDS
    from repro.faults import FaultInjector
    from repro.mapreduce.runtime import JobRunner

    digests = {}
    for kind in sorted(CARBON_JOB_KINDS):
        for platform, slaves in FLEETS:
            spec, config = CARBON_JOB_KINDS[kind](platform)
            runner = JobRunner(platform, slaves, config=config, seed=seed)
            if with_injector:
                FaultInjector(runner.cluster)
            report = runner.run(spec)
            digests[f"{kind}/{platform}"] = {
                "seconds": report.seconds, "joules": report.joules,
                "locality": report.locality_fraction}
    return digests


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed off-path baseline "
                             "instead of checking against it")
    parser.add_argument("--out-dir", default=REPO, metavar="DIR",
                        help="where the report JSON artifact goes")
    args = parser.parse_args()

    from repro.carbon import CarbonDayPlan, carbon_experiment

    plan = CarbonDayPlan.load(DAY)

    print("off-path fidelity (carbon plane must be invisible):")
    plain = plain_digests(with_injector=False, seed=plan.seed)
    armed = plain_digests(with_injector=True, seed=plan.seed)
    check(plain == armed,
          "an idle empty-plan FaultInjector moves no float")
    if args.update:
        with open(BASELINE, "w", encoding="utf-8") as handle:
            json.dump(plain, handle, indent=1)
            handle.write("\n")
        print(f"  baseline rewritten -> {BASELINE}")
    else:
        with open(BASELINE, encoding="utf-8") as handle:
            committed = json.load(handle)
        check(plain == committed,
              "plain-run digests match the committed baseline")

    print("eight-arm acceptance (committed day, committed seed):")
    report = carbon_experiment(plan)
    for line in report.lines():
        print("  " + line)

    print("front-end neutrality (no-wait arm == plain runs):")
    for platform, _ in FLEETS:
        arm = report.arm("no-wait", platform)
        neutral = all(
            record["joules"] == plain[f"{record['kind']}/{platform}"]
            ["joules"]
            and record["seconds"]
            == plain[f"{record['kind']}/{platform}"]["seconds"]
            for record in arm.records)
        check(neutral,
              f"no-wait/{platform} per-job seconds+joules equal the "
              "plain runs")

    for platform, _ in FLEETS:
        dominating = report.dominating_policies(platform)
        check(bool(dominating),
              f"a policy beats no-wait on grams at 0 misses on "
              f"{platform} ({', '.join(dominating) or 'none'})")
        arm = report.arm("suspend-resume", platform)
        check(arm.suspensions > 0,
              f"suspend-resume/{platform} actually parked the fleet "
              f"({arm.suspensions} suspensions, "
              f"{arm.suspended_s:.0f} s)")
    delta = report.platform_delta()
    check(delta is not None and delta["no_wait_ratio"] > 1.0,
          "the R620 day emits more CO2 than the Edison day "
          + (f"({delta['no_wait_ratio']:.2f}x at release)"
             if delta else "(no delta)"))

    path = os.path.join(args.out_dir, "carbon_report.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_dict(), handle, indent=1)
        handle.write("\n")
    print(f"  artifact -> {path}")

    if failures:
        print(f"{len(failures)} check(s) failed")
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
