#!/usr/bin/env python
"""Causality smoke: tracing stays invisible, and its sums close.

Four contracts, checked in order:

1. **Off-path fidelity** — an untraced web level and an untraced
   terasort-mini job must match the committed digests in
   ``experiments/causality_baseline.json`` float-for-float, and the
   *traced* runs of the same seeds must produce the very same results:
   span contexts, per-node power counters and causal ids may never
   move a simulation float.

2. **Energy conservation** — on the traced runs, per metered node,
   ``baseline + attributed + unattributed`` must equal the meter's
   integrated joules within 0.1 % (it is exact by construction; the
   bound catches summation regressions), and the attribution's metered
   total must equal the PowerMeter's node integrals.

3. **Critical-path decomposition** — re-deriving the Table 7 delay
   decomposition from causal tree structure alone must agree with the
   call-record measurement within 1 % on the committed seeded run.

4. **Flame artifacts** — the latency flame graph (HTML) and collapsed
   stacks of the traced web run land in ``--out-dir`` non-empty.

Run:  PYTHONPATH=src python scripts/run_causality_smoke.py
      PYTHONPATH=src python scripts/run_causality_smoke.py --update
"""

import os
import sys
from dataclasses import asdict

import smokelib
from smokelib import check

smokelib.bootstrap()

BASELINE = os.path.join(smokelib.EXPERIMENTS, "causality_baseline.json")

SEED = 20160901
WEB_ARGS = dict(concurrency=24, duration=3.0, warmup=1.0)
JOB_KIND = "terasort-mini"
JOB_SLAVES = 4


def web_run(trace=None):
    from repro.web import WebServiceDeployment
    deployment = WebServiceDeployment("edison", "1/4", seed=SEED,
                                      trace=trace)
    level = deployment.run_level(WEB_ARGS["concurrency"],
                                 duration=WEB_ARGS["duration"],
                                 warmup=WEB_ARGS["warmup"])
    return deployment, level


def job_run(trace=None):
    from repro.carbon.jobspec import CARBON_JOB_KINDS
    from repro.mapreduce.runtime import JobRunner
    spec, config = CARBON_JOB_KINDS[JOB_KIND]("edison")
    runner = JobRunner("edison", JOB_SLAVES, config=config, seed=SEED,
                       trace=trace)
    report = runner.run(spec)
    return runner, report


def job_digest(report):
    return {"seconds": report.seconds, "joules": report.joules,
            "locality": report.locality_fraction}


def check_conservation(label, log, cluster):
    import repro.causality as causality
    idle = {server.name: server.spec.power.min_w
            for server in cluster.servers.values()}
    attribution = causality.attribute_energy(log, idle_w=idle)
    check(bool(attribution.nodes),
          f"{label}: trace carries per-node power counters "
          f"({len(attribution.nodes)} nodes)")
    worst = 0.0
    matched = True
    for name, acct in sorted(attribution.nodes.items()):
        worst = max(worst, acct.conservation_error_rel)
        metered = cluster.meter.node_energy_joules(name)
        if abs(acct.metered_j - metered) > 1e-9 * max(metered, 1.0):
            matched = False
    check(worst <= 1e-3,
          f"{label}: per-node energy conserves "
          f"(worst error {worst:.2e} <= 1e-3)")
    check(matched,
          f"{label}: attribution integrals equal the PowerMeter's")
    attributed = sum(acct.attributed_j
                     for acct in attribution.nodes.values())
    check(attributed > 0.0,
          f"{label}: marginal joules land on spans "
          f"({attributed:.2f} J attributed)")
    return attribution


def main() -> int:
    args = smokelib.make_parser(__doc__).parse_args()

    import repro.causality as causality
    from repro.trace import Tracer, delay_decomposition_from_trace
    from repro.web.deployment import measure_delay_decomposition

    print("off-path fidelity (tracing must be invisible):")
    _, plain_level = web_run()
    _, plain_job = job_run()
    digests = {"web": asdict(plain_level), "job": job_digest(plain_job)}
    smokelib.compare_or_update(
        BASELINE, digests, args.update,
        "untraced digests match the committed baseline")

    web_tracer = Tracer()
    web_deployment, traced_level = web_run(trace=web_tracer)
    job_tracer = Tracer()
    job_runner, traced_job = job_run(trace=job_tracer)
    check(asdict(traced_level) == digests["web"],
          "traced web level is bit-identical to the untraced run")
    check(job_digest(traced_job) == digests["job"],
          f"traced {JOB_KIND} job is bit-identical to the untraced run")

    print("energy conservation (attribution sums close):")
    check_conservation("web", web_tracer.log, web_deployment.cluster)
    check_conservation(JOB_KIND, job_tracer.log, job_runner.cluster)

    print("critical-path decomposition (Table 7 from tree structure):")
    t7_tracer = Tracer()
    measured = measure_delay_decomposition("edison", 480, duration=2.0,
                                           warmup=0.5, trace=t7_tracer)
    flat = delay_decomposition_from_trace(t7_tracer.log, after=0.5)
    tree = causality.decomposition_from_critical_paths(t7_tracer.log,
                                                       after=0.5)
    check(tree.requests == flat.requests,
          f"tree walk counts the same requests ({tree.requests})")
    agree = True
    for field, want in (("db_delay_s", measured.db_delay_s),
                        ("cache_delay_s", measured.cache_delay_s),
                        ("total_delay_s", measured.total_delay_s)):
        got = getattr(tree, field)
        if abs(got - want) > 0.01 * abs(want):
            agree = False
    check(agree,
          "tree-derived db/cache/total agree with the call-record "
          f"measurement within 1% (db {tree.db_delay_s * 1e3:.3f} vs "
          f"{measured.db_delay_s * 1e3:.3f} ms)")

    print("flame artifacts:")
    forest = causality.build_forest(web_tracer.log)
    stacks = causality.latency_stacks(forest)
    html_path = smokelib.artifact_path(args.out_dir, "causality_flame.html")
    causality.write_flame_html(html_path, stacks,
                               title="latency flame: causality smoke "
                                     "web run", unit="µs")
    print(f"  artifact -> {html_path}")
    collapsed_path = smokelib.artifact_path(args.out_dir,
                                            "causality_flame.txt")
    causality.write_collapsed(collapsed_path, stacks)
    print(f"  artifact -> {collapsed_path}")
    check(os.path.getsize(html_path) > 0
          and os.path.getsize(collapsed_path) > 0 and bool(stacks),
          f"flame outputs are non-empty ({len(stacks)} stacks)")

    return smokelib.finish()


if __name__ == "__main__":
    sys.exit(main())
