#!/usr/bin/env python
"""Durability smoke: off-path bit-identity plus the committed day.

Two contracts, checked in order:

1. **Off-path fidelity** — with the durability plane *off* (either
   ``None`` or ``DurabilityConfig.disabled()``) a plain MapReduce job,
   a crash-faulted job and a partitioned job must match the committed
   digests in ``experiments/durability_baseline.json``
   float-for-float, and the ``None`` and ``disabled()`` variants must
   match each other.  No phi detector, heartbeat feeder, repair
   monitor or ledger may exist until a config arms them.

2. **Day acceptance** — the committed seeded day in
   ``experiments/durability_day.json`` (a ToR switch outage, a
   two-node trunk partition, a dead disk, a late rack partition) must
   show the paper's Section 6 knee: rack-aware r=2 rides out the whole
   day on Edison with zero lost blocks while r=1 records a loss event;
   block conservation holds at every census; split-brain
   reconciliation kills every zombie it starts; and partitions add
   unreachable-seconds but zero downtime against the no-partition
   controls.  The full report lands in ``--out-dir`` as JSON.

Run:  PYTHONPATH=src python scripts/run_durability_smoke.py
      PYTHONPATH=src python scripts/run_durability_smoke.py --update
"""

import os
import sys

import smokelib
from smokelib import check

smokelib.bootstrap()

BASELINE = os.path.join(smokelib.EXPERIMENTS, "durability_baseline.json")
DAY = os.path.join(smokelib.EXPERIMENTS, "durability_day.json")


def off_path_digests(durability):
    """Fidelity digests with durability off: a plain job, a
    crash-faulted job and a partitioned job — all through the same
    :func:`repro.durability.attach_job` the armed path uses, so "off"
    exercises the real integration point."""
    from repro.durability import DAY_SEED, attach_job
    from repro.faults import FaultInjector
    from repro.faults.models import (FaultPlan, node_crash,
                                     rack_partition)
    from repro.mapreduce import JOB_FACTORIES, JobRunner

    def one_job(faults=None, racks=1):
        spec, config = JOB_FACTORIES["wordcount2"]("dell", 8)
        runner = JobRunner("dell", 8, config=config, seed=DAY_SEED,
                           racks=racks)
        injector = None
        if faults is not None:
            injector = FaultInjector(runner.cluster, faults)
        assert attach_job(runner, durability) is None
        assert getattr(runner, "durability_ledger", None) is None
        assert runner.hdfs.monitor is None
        report = runner.run(spec)
        digest = {"seconds": report.seconds, "joules": report.joules,
                  "locality_fraction": report.locality_fraction,
                  "health": runner.hdfs.health_summary()}
        if injector is not None:
            slaves = [s.name for s in runner.slave_servers]
            digest["downtime_s"] = sum(
                injector.downtime(n, until=runner.sim.now)
                for n in slaves)
            digest["unreachable_s"] = sum(
                injector.unreachable_time(n, until=runner.sim.now)
                for n in slaves)
        return digest

    crash = FaultPlan(faults=(
        node_crash("dell-slave-3", at=6.0, repair_s=10.0),))
    cut = FaultPlan(faults=(
        rack_partition("dell-rack-0", at=6.0, duration=8.0),))
    return {"plain": one_job(),
            "crashed": one_job(faults=crash),
            "partitioned": one_job(faults=cut, racks=2)}


def main() -> int:
    args = smokelib.make_parser(__doc__).parse_args()

    from repro.durability import (DurabilityConfig, DurabilityPlan,
                                  durability_experiment)

    print("off-path fidelity (no detector/monitor/ledger until armed):")
    plain = off_path_digests(None)
    disabled = off_path_digests(DurabilityConfig.disabled())
    check(plain == disabled,
          "durability=None and DurabilityConfig.disabled() are "
          "bit-identical")
    smokelib.compare_or_update(
        BASELINE, plain, args.update,
        "off-path digests match the committed baseline")

    print("day acceptance (committed plan, committed seed):")
    plan = DurabilityPlan.load(DAY)
    report = durability_experiment(plan)
    for line in report.lines():
        print("  " + line)

    check(report.knee("edison") == 2,
          "rack-aware r=2 is the durability knee on Edison")
    r2 = report.arm("edison", True, 2)
    check(r2.blocks_lost == 0 and not r2.job_failed,
          "edison rack-aware r=2 finishes the day with zero lost blocks")
    r1 = report.arm("edison", True, 1)
    check(r1.loss_events >= 1,
          f"edison r=1 records a data-loss event "
          f"({r1.blocks_lost} block(s) gone)")
    check(all(a.conservation_violations == 0
              for a in (*report.arms, *report.controls)),
          "created == live + lost at every census on every arm")
    check(all(a.duplicate_kills == a.zombies_started
              for a in (*report.arms, *report.controls)),
          "reconciliation kills every zombie attempt it starts")
    check(report.partition_downtime_clean(),
          "partitions add zero downtime against the no-partition "
          "controls")
    fault_arms = [a for a in report.arms
                  if a.platform in {c.platform for c in report.controls}]
    check(all(a.unreachable_s > 0 for a in fault_arms)
          and all(c.unreachable_s == 0 for c in report.controls),
          "unreachable-seconds accrue on fault arms and never on "
          "controls")
    repairing = [a for a in report.arms
                 if a.replication > 1 and not a.job_failed]
    check(all(a.repairs_completed > 0 for a in repairing),
          "every surviving replicated arm actually re-replicated")
    check(all(a.re_replication_j > 0 for a in repairing),
          "re-replication is billed to the energy ledger")

    smokelib.write_artifact(args.out_dir, "durability_report.json",
                            report.to_dict())
    return smokelib.finish()


if __name__ == "__main__":
    sys.exit(main())
