#!/usr/bin/env python
"""DVFS smoke: off-path bit-identity plus the governor sweep.

Two contracts, checked in order:

1. **Off-path fidelity** — with DVFS *off* (either ``None`` or
   ``DvfsConfig.disabled()``) a fixed-rate web level, a shaped day and
   a MapReduce job must match the committed digests in
   ``experiments/dvfs_baseline.json`` float-for-float, and the
   ``None`` and ``disabled()`` variants must match each other.  The
   P-state tables on every CpuSpec must be invisible until a governor
   arms them.

2. **Sweep acceptance** — the committed seeded plan in
   ``experiments/dvfs_day.json`` must show ``ondemand`` strictly
   beating ``performance`` on joules at equal SLO attainment on at
   least one platform/shape arm, with transitions actually happening
   and the proportionality scorecards populated.  The full report
   (arms + scorecards) lands in ``--out-dir`` as JSON plus an HTML
   dashboard of one governed day.

Run:  PYTHONPATH=src python scripts/run_dvfs_smoke.py
      PYTHONPATH=src python scripts/run_dvfs_smoke.py --update
"""

import os
import sys
from dataclasses import asdict

import smokelib
from smokelib import check

smokelib.bootstrap()

BASELINE = os.path.join(smokelib.EXPERIMENTS, "dvfs_baseline.json")
DAY = os.path.join(smokelib.EXPERIMENTS, "dvfs_day.json")


def off_path_digests(dvfs):
    """Fidelity digests with DVFS off: one fixed-rate web level, one
    shaped day, one MapReduce job — through the same attach helpers
    the armed path uses, so "off" exercises the real integration."""
    from repro.dvfs import DVFS_SEED, attach_job, attach_web
    from repro.mapreduce import JOB_FACTORIES, JobRunner
    from repro.web import (DiurnalShape, ShapedLoad,
                           WebServiceDeployment)

    static = WebServiceDeployment("edison", "1/4", seed=DVFS_SEED)
    assert attach_web(static, dvfs, until=3.0) is None
    level = static.run_level(24, duration=3.0, warmup=1.0)

    shape = ShapedLoad(DiurnalShape(base_rps=60.0, peak_rps=240.0,
                                    period_s=24.0))
    shaped = WebServiceDeployment("edison", "1/4", seed=DVFS_SEED)
    assert attach_web(shaped, dvfs, until=24.0) is None
    shaped_level = shaped.run_shaped(shape, 24.0, calls=5)

    spec, config = JOB_FACTORIES["wordcount2"]("edison", 8)
    runner = JobRunner("edison", 8, config=config, seed=DVFS_SEED)
    assert attach_job(runner, dvfs) is None
    report = runner.run(spec)
    return {"level": asdict(level),
            "shaped": asdict(shaped_level),
            "job": {"seconds": report.seconds, "joules": report.joules,
                    "locality_fraction": report.locality_fraction}}


def render_governed_dashboard(plan, out_dir: str) -> None:
    """One governed diurnal day, dashboarded with its scorecards."""
    from repro.dvfs import DvfsConfig, attach_web, measure_proportionality
    from repro.telemetry import Telemetry, write_dashboard
    from repro.web import WebServiceDeployment

    shape_name = "diurnal" if "diurnal" in plan.shapes \
        else next(iter(plan.shapes))
    ondemand = DvfsConfig(enabled=True, governor=plan.ondemand)
    deployment = WebServiceDeployment("edison", plan.scale("edison"),
                                      seed=plan.seed)
    telemetry = Telemetry()
    telemetry.attach_web(deployment, until=plan.duration_s)
    attach_web(deployment, ondemand, until=plan.duration_s)
    deployment.run_shaped(plan.shapes[shape_name], plan.duration_s,
                          calls=plan.calls)
    bundle = telemetry.bundle(meta={"experiment": "dvfs",
                                    "shape": shape_name})
    bundle["dvfs"] = {
        "scorecards": [
            measure_proportionality("edison", scale=plan.scale("edison"),
                                    dvfs=dvfs, seed=plan.seed,
                                    calls=plan.calls).to_dict()
            for dvfs in (None, ondemand)]}
    path = smokelib.artifact_path(out_dir, "dvfs_dashboard.html")
    write_dashboard(bundle, path)
    print(f"  artifact -> {path}")


def main() -> int:
    args = smokelib.make_parser(__doc__).parse_args()

    from repro.dvfs import DvfsConfig, DvfsPlan, dvfs_experiment

    print("off-path fidelity (P-state tables must be invisible):")
    plain = off_path_digests(None)
    disabled = off_path_digests(DvfsConfig.disabled())
    check(plain == disabled,
          "dvfs=None and DvfsConfig.disabled() are bit-identical")
    smokelib.compare_or_update(
        BASELINE, plain, args.update,
        "off-path digests match the committed baseline")

    print("sweep acceptance (committed plan, committed seed):")
    plan = DvfsPlan.load(DAY)
    report = dvfs_experiment(plan)
    for line in report.lines():
        print("  " + line)

    wins = report.ondemand_wins()
    check(bool(wins),
          "ondemand strictly beats performance on joules at equal SLO "
          f"attainment ({', '.join(wins) or 'none'})")
    ondemand_arms = [a for a in report.arms if a.governor == "ondemand"]
    check(all(a.transitions > 0 for a in ondemand_arms),
          "every ondemand arm actually switched P-states")
    check(all(a.transitions == 0 for a in report.arms
              if a.governor == "performance"),
          "performance arms never left P0")
    for card in report.scorecards:
        check(0.0 < card.dynamic_range < 1.0,
              f"{card.platform}/{card.governor} dynamic range in (0, 1) "
              f"({card.dynamic_range:.3f})")
    # Gap figures normalise to each card's *own* measured peak, and a
    # governor lowers that peak too — so compare ladders by what they
    # burned, not by their self-normalised shapes.
    nominal = {c.platform: c for c in report.scorecards
               if c.governor == "nominal"}
    governed = {c.platform: c for c in report.scorecards
                if c.governor != "nominal"}
    for platform, card in governed.items():
        rival = nominal.get(platform)
        if rival is not None:
            spent = sum(p.joules for p in card.points)
            rival_spent = sum(p.joules for p in rival.points)
            check(spent < rival_spent,
                  f"{platform}: the governed ladder burns fewer joules "
                  f"({spent:.1f} J vs {rival_spent:.1f} J nominal)")

    smokelib.write_artifact(args.out_dir, "dvfs_report.json",
                            report.to_dict())
    render_governed_dashboard(plan, args.out_dir)
    return smokelib.finish()


if __name__ == "__main__":
    sys.exit(main())
