"""Record the kernel-scale perf baseline into BENCH_kernel_scale.json.

Drives the web tier at 35/70/140/280 total nodes plus a Terasort
scaling ladder (see ``repro.perf``) and records wall-clock, events/sec,
heap peak and a bit-exact fidelity digest per cell.

Run once before a performance change and once after::

    PYTHONPATH=src python scripts/run_perf_baseline.py --phase pre
    ... optimise ...
    PYTHONPATH=src python scripts/run_perf_baseline.py --phase post

The ``post`` phase refuses to finish cleanly (exit 1) if any fidelity
digest differs from the recorded ``pre`` digest — optimisations must
not change results, bit for bit.  Both phases land in the same JSON
file, together with a ``speedup`` section, so the improvement and its
evidence travel with the repo.

``--compare FILE`` instead runs the sweep and prints a report-only
comparison against the committed baseline's ``post`` phase (used by the
CI smoke job; never fails the build — CI hardware varies).
``--quick`` runs the one-cell-per-workload subset with parameters
identical to the full suite.
"""

import argparse
import json
import os
import sys

from repro import perf


def load(path):
    if os.path.exists(path):
        with open(path) as handle:
            return json.load(handle)
    return {}


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="measure kernel-scale perf and fidelity digests")
    parser.add_argument("--phase", choices=("pre", "post"), default="post",
                        help="record under this phase (default: post)")
    parser.add_argument("--out", default="BENCH_kernel_scale.json",
                        help="baseline file (default: %(default)s)")
    parser.add_argument("--quick", action="store_true",
                        help="one cell per workload (CI smoke)")
    parser.add_argument("--compare", metavar="FILE",
                        help="report-only comparison against FILE's "
                             "post phase; does not write --out")
    args = parser.parse_args(argv)

    bundle = perf.run_suite(quick=args.quick, emit=print)

    if args.compare:
        recorded = load(args.compare)
        phase = "post" if "post" in recorded else "pre"
        baseline = recorded.get(phase)
        if not baseline:
            print(f"no recorded phases in {args.compare}; nothing to compare")
            return 0
        print(f"\nreport-only comparison vs {args.compare} ({phase}):")
        for cell, ratios in perf.speedup_report(baseline, bundle).items():
            parts = ", ".join(f"{k} {v:.2f}x" for k, v in ratios.items())
            print(f"  {cell}: {parts}")
        mismatches = perf.digest_mismatches(baseline, bundle)
        if mismatches:
            print("  fidelity digests differ (expected across "
                  "hosts/versions): " + ", ".join(mismatches))
        else:
            print("  fidelity digests identical to baseline")
        return 0

    data = load(args.out)
    data["host"] = perf.host_info()
    data["config"] = {"seed": perf.SEED, "web_duration_s": perf.WEB_DURATION,
                      "web_warmup_s": perf.WEB_WARMUP, "quick": args.quick}
    data[args.phase] = bundle

    status = 0
    if "pre" in data and "post" in data:
        mismatches = perf.digest_mismatches(data["pre"], data["post"])
        data["fidelity"] = {"bit_identical": not mismatches,
                            "mismatches": mismatches}
        data["speedup"] = perf.speedup_report(data["pre"], data["post"])
        print("\nspeedup vs pre:")
        for cell, ratios in data["speedup"].items():
            parts = ", ".join(f"{k} {v:.2f}x" for k, v in ratios.items())
            print(f"  {cell}: {parts}")
        if mismatches:
            print("FIDELITY FAILURE — digests changed: "
                  + ", ".join(mismatches))
            status = 1
        else:
            print("fidelity: post digests bit-identical to pre")

    with open(args.out, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out} ({args.phase} phase)")
    return status


if __name__ == "__main__":
    sys.exit(main())
