#!/usr/bin/env python
"""Resilience smoke: off-path bit-identity plus the gray-failure bar.

Two contracts, checked in order:

1. **Off-path fidelity** — with resilience *off* (either ``None`` or an
   all-disabled config) a web level and a MapReduce job must match the
   committed digests in ``experiments/resilience_baseline.json``
   float-for-float, and the ``None`` and ``disabled()`` variants must
   match *each other*.  The resilience package must be invisible until
   armed.

2. **Gray-failure acceptance** — under the committed seeded plan in
   ``experiments/gray_failures.json`` the mitigated web arm keeps both
   its latency and availability SLOs where the unmitigated arm misses,
   and the mitigated job completes faster than the unmitigated one,
   which also fails task attempts.  Both tax reports land in
   ``--out-dir`` as JSON artifacts.

Run:  PYTHONPATH=src python scripts/run_resilience_smoke.py
      PYTHONPATH=src python scripts/run_resilience_smoke.py --update
"""

import json
import os
import sys
from dataclasses import asdict

import smokelib
from smokelib import check

smokelib.bootstrap()

BASELINE = os.path.join(smokelib.EXPERIMENTS, "resilience_baseline.json")
PLANS = os.path.join(smokelib.EXPERIMENTS, "gray_failures.json")


def off_path_digests(resilience):
    """The fidelity digests of one web level and one job, faults off."""
    from repro.mapreduce import JOB_FACTORIES, JobRunner
    from repro.resilience.report import GRAY_SEED
    from repro.web import WebServiceDeployment

    deployment = WebServiceDeployment("edison", "1/4", seed=GRAY_SEED,
                                      resilience=resilience)
    level = deployment.run_level(24, duration=3.0, warmup=1.0)
    spec, config = JOB_FACTORIES["wordcount2"]("edison", 8)
    runner = JobRunner("edison", 8, config=config, seed=GRAY_SEED,
                       resilience=resilience)
    report = runner.run(spec)
    return {"web": asdict(level),
            "job": {"seconds": report.seconds, "joules": report.joules,
                    "locality_fraction": report.locality_fraction}}


def main() -> int:
    args = smokelib.make_parser(__doc__).parse_args()

    from repro.faults import FaultPlan
    from repro.resilience import (ResilienceConfig, job_resilience_experiment,
                                  web_resilience_experiment)

    print("off-path fidelity (resilience package must be invisible):")
    plain = off_path_digests(None)
    disabled = off_path_digests(ResilienceConfig.disabled())
    check(plain == disabled,
          "resilience=None and ResilienceConfig.disabled() are "
          "bit-identical")
    smokelib.compare_or_update(
        BASELINE, plain, args.update,
        "off-path digests match the committed baseline")

    print("gray-failure acceptance (committed plan, committed seed):")
    with open(PLANS, encoding="utf-8") as handle:
        plans = json.load(handle)
    web = web_resilience_experiment(plan=FaultPlan.from_dict(plans["web"]))
    job = job_resilience_experiment(plan=FaultPlan.from_dict(plans["job"]))

    check(not (web.unmitigated.availability_met
               and web.unmitigated.latency_met),
          "unmitigated web arm misses an SLO "
          f"(availability {web.unmitigated.availability * 100:.2f}%, "
          f"p95 {web.unmitigated.p95_s * 1000:.0f} ms)")
    check(bool(web.mitigated.availability_met),
          "mitigated web arm meets the availability SLO "
          f"({web.mitigated.availability * 100:.4f}%)")
    check(bool(web.mitigated.latency_met),
          "mitigated web arm keeps p95 under the 3 s bound "
          f"({web.mitigated.p95_s * 1000:.0f} ms)")
    check(job.unmitigated.task_failures > 0,
          f"unmitigated job arm fails task attempts "
          f"({job.unmitigated.task_failures})")
    check(job.mitigated.completed and job.unmitigated.completed,
          "both job arms complete")
    check(job.mitigated.seconds < job.unmitigated.seconds,
          f"speculation beats the straggler "
          f"({job.mitigated.seconds:.0f} s vs "
          f"{job.unmitigated.seconds:.0f} s unmitigated)")
    check(job.mitigated.total_waste_joules > 0,
          f"the job report prices the speculation tax "
          f"({job.mitigated.total_waste_joules:.1f} J)")
    check(web.mitigated.total_waste_joules > 0,
          f"the web report prices the hedge/shed tax "
          f"({web.mitigated.total_waste_joules:.1f} J)")

    smokelib.write_artifact(args.out_dir, "resilience_web_report.json",
                            web.to_dict())
    smokelib.write_artifact(args.out_dir, "resilience_job_report.json",
                            job.to_dict())
    return smokelib.finish()


if __name__ == "__main__":
    sys.exit(main())
