"""Shared plumbing for the ``scripts/run_*_smoke.py`` harnesses.

Every smoke script follows the same contract: run the committed seeded
experiments, print one ``ok``/``FAIL`` line per check, compare fidelity
digests float-for-float against a committed baseline JSON (rewritable
with ``--update``), drop the report artifacts into ``--out-dir`` and
exit non-zero when any check failed.  This module holds that shared
shape so each script only states its experiment and its checks.
"""

import argparse
import json
import os
import sys

REPO = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
SRC = os.path.join(REPO, "src")
EXPERIMENTS = os.path.join(REPO, "experiments")

_failures = []


def bootstrap() -> None:
    """Put ``src/`` on ``sys.path`` so ``import repro`` works anywhere."""
    if SRC not in sys.path:
        sys.path.insert(0, SRC)


def check(ok: bool, what: str) -> None:
    """Print one check line; remember failures for :func:`finish`."""
    print(("  ok  " if ok else "  FAIL") + f"  {what}")
    if not ok:
        _failures.append(what)


def finish() -> int:
    """Summarise and return the process exit code."""
    if _failures:
        print(f"{len(_failures)} check(s) failed")
        return 1
    print("all checks passed")
    return 0


def make_parser(doc: str) -> argparse.ArgumentParser:
    """The standard ``--update`` / ``--out-dir`` smoke argument parser."""
    parser = argparse.ArgumentParser(description=doc)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed off-path baseline "
                             "instead of checking against it")
    parser.add_argument("--out-dir", default=REPO, metavar="DIR",
                        help="where the report JSON artifacts go")
    return parser


def write_json(path: str, payload) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")


def compare_or_update(baseline_path: str, digests, update: bool,
                      what: str) -> None:
    """Check ``digests`` against the committed baseline, or rewrite it."""
    if update:
        write_json(baseline_path, digests)
        print(f"  baseline rewritten -> {baseline_path}")
        return
    with open(baseline_path, encoding="utf-8") as handle:
        committed = json.load(handle)
    check(digests == committed, what)


def artifact_path(out_dir: str, name: str) -> str:
    """Resolve an artifact path, creating ``out_dir`` on first use."""
    os.makedirs(out_dir, exist_ok=True)
    return os.path.join(out_dir, name)


def write_artifact(out_dir: str, name: str, payload) -> str:
    """Drop one report JSON into ``out_dir`` and announce it."""
    path = artifact_path(out_dir, name)
    write_json(path, payload)
    print(f"  artifact -> {path}")
    return path
