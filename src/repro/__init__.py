"""repro — a simulation-based reproduction of Zhao et al., VLDB 2016.

"An Experimental Evaluation of Datacenter Workloads on Low-Power
Embedded Micro Servers" measured a 35-node Intel Edison cluster against
Dell PowerEdge R620 servers.  This package rebuilds that study as a
calibrated discrete-event simulation: the hardware models consume the
paper's measured component capacities, and every table and figure of
the evaluation has a corresponding runner here.

Quick start::

    from repro import WebServiceDeployment
    deployment = WebServiceDeployment("edison")
    result = deployment.run_level(concurrency=512, duration=3.0)
    print(result.requests_per_second, result.mean_power_w)

See README.md for the architecture tour and benchmarks/ for the
table/figure reproductions.
"""

from .cluster import Cluster, dell_cluster, edison_cluster, hadoop_cluster, \
    web_cluster
from .core import paperdata
from .energy import EnergyReport, PowerMeter, work_done_per_joule
from .faults import FaultInjector, FaultPlan, job_kill_experiment, \
    single_node_kill, web_kill_experiment
from .hardware import DELL_R620, EDISON, EDISON_INTEGRATED_NIC, Server, \
    ServerSpec, make_server
from .mapreduce import JOB_FACTORIES, TABLE8_JOBS, JobReport, JobRunner, \
    JobSpec, run_job
from .sim import Simulation
from .tco import cluster_tco, table10
from .telemetry import DetectionReport, SloReport, SloSpec, Telemetry, \
    TimeSeriesDB, default_rules
from .trace import TraceLog, Tracer, delay_decomposition_from_trace, \
    to_chrome_trace, write_chrome_trace
from .web import WebServiceDeployment, WebWorkload, delay_distribution, \
    measure_delay_decomposition, sweep_concurrency

__version__ = "1.0.0"

__all__ = [
    "Cluster", "DELL_R620", "DetectionReport", "EDISON",
    "EDISON_INTEGRATED_NIC",
    "EnergyReport", "FaultInjector", "FaultPlan", "JOB_FACTORIES",
    "JobReport", "JobRunner", "JobSpec",
    "PowerMeter", "Server", "ServerSpec", "Simulation", "SloReport",
    "SloSpec", "TABLE8_JOBS", "Telemetry", "TimeSeriesDB",
    "TraceLog", "Tracer", "WebServiceDeployment", "WebWorkload",
    "cluster_tco", "default_rules", "delay_decomposition_from_trace",
    "dell_cluster",
    "delay_distribution", "edison_cluster", "hadoop_cluster",
    "job_kill_experiment", "make_server",
    "measure_delay_decomposition", "paperdata", "run_job",
    "single_node_kill", "sweep_concurrency", "table10", "to_chrome_trace",
    "web_cluster", "web_kill_experiment",
    "work_done_per_joule", "write_chrome_trace", "__version__",
]
