"""Autoscaling: closing the loop from telemetry to fleet capacity.

The paper provisions statically — pick a platform, pick a Table 6
rung, measure the day.  This package adds the missing control plane:
a simulated-time controller that scrapes the telemetry TSDB on a
fixed interval, decides a desired capacity (reactive thresholds with
hysteresis and cooldown, or predictive lookahead over the diurnal
history), and actuates it realistically — boot delays at idle draw,
connection draining before suspend, LB deregistration first — against
a heterogeneous Edison/R620 pool behind capacity-weighted routing.
Every joule elasticity costs (boot energy, drained-but-idle watts) is
itemised by a ledger and charged against the SLO error budget.

Everything is strictly opt-in.  With autoscaling disabled (the
default) no controller, ledger or extra process exists and every run
is bit-identical to a build without this package — the same hard
guarantee `repro.trace`, `repro.telemetry`, `repro.faults` and
`repro.resilience` make.
"""

from .actuator import FleetActuator
from .config import (DEFAULT_BOOT_S, ActuationConfig, AutoscaleConfig,
                     PolicyConfig)
from .controller import AutoscaleController
from .deployment import HybridWebDeployment
from .ledger import AutoscaleLedger, ScalingAction
from .policy import PredictivePolicy, ReactivePolicy, make_policy
from .pool import ACTIVE, BOOTING, DRAINING, OFF, FleetPool, PoolNode

__all__ = [
    "ACTIVE", "ActuationConfig", "AutoscaleArm", "AutoscaleConfig",
    "AutoscaleController", "AutoscaleLedger", "AutoscaleReport",
    "BOOTING", "DAY_SEED", "DEFAULT_BOOT_S", "DRAINING", "DayPlan",
    "FleetActuator", "FleetPool", "HybridWebDeployment", "OFF",
    "PolicyConfig", "PoolNode", "PredictivePolicy", "ReactivePolicy",
    "ScalingAction", "autoscale_experiment", "make_policy",
]

_REPORT_NAMES = ("AutoscaleArm", "AutoscaleReport", "DAY_SEED", "DayPlan",
                 "autoscale_experiment")


def __getattr__(name):
    # Deferred: report builds on repro.telemetry and repro.web's
    # deployment surface — keep the heavy imports off the config path.
    if name in _REPORT_NAMES:
        from . import report
        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
