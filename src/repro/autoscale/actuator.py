"""Actuation: how a planned capacity change becomes physical.

Power-off is a three-step goodbye, in the only safe order:

1. **deregister** — the node leaves the LB rotation immediately, so no
   new connection lands on it;
2. **drain** — in-flight connections finish naturally, polled until
   the count hits zero or the drain timeout gives up (a draining node
   burns idle-ish watts the whole time — the ledger itemises them);
3. **suspend** — the fault plane's admin power-off: 0 W, bound
   processes interrupted with the same machinery a power fault uses,
   scrapers stop sampling it.

Power-on is the mirror: admin boot (idle draw, not serving) for the
platform's boot delay, then power-on and *re*-registration — capacity
is only advertised once it can actually answer.
"""

from __future__ import annotations

from .config import ActuationConfig
from .ledger import AutoscaleLedger
from .pool import ACTIVE, BOOTING, DRAINING, OFF, PoolNode


class FleetActuator:
    """Executes boot and drain sequences for one pool."""

    def __init__(self, sim, injector, rotation, cfg: ActuationConfig,
                 ledger: AutoscaleLedger):
        self.sim = sim
        self.injector = injector
        self.rotation = rotation
        self.cfg = cfg
        self.ledger = ledger

    def boot_seconds(self, node: PoolNode) -> float:
        return self.cfg.boot_s.get(node.platform, 0.0)

    # -- power on ---------------------------------------------------------

    def power_on(self, node: PoolNode) -> None:
        """Begin waking ``node``; it serves after its boot delay."""
        if node.state != OFF:
            raise RuntimeError(f"cannot boot {node.name} from {node.state}")
        node.state = BOOTING
        self.ledger.count("boots")
        self.ledger.log(self.sim.now, "boot", node.name)
        self.sim.process(self._boot(node), name=f"boot-{node.name}")

    def _boot(self, node: PoolNode):
        self.injector.admin_begin_boot(node.name)
        boot_s = self.boot_seconds(node)
        if boot_s > 0:
            yield self.sim.timeout(boot_s)
        self.injector.admin_power_on(node.name)
        node.state = ACTIVE
        self.rotation.set_in_rotation(node.name, True)
        self.ledger.charge_boot(node.name, boot_s, node.idle_watts)
        self.ledger.log(self.sim.now, "serve", node.name)

    # -- power off --------------------------------------------------------

    def power_off(self, node: PoolNode) -> None:
        """Begin retiring ``node``: deregister now, suspend after drain."""
        if node.state != ACTIVE:
            raise RuntimeError(f"cannot drain {node.name} from {node.state}")
        node.state = DRAINING
        self.rotation.set_in_rotation(node.name, False)
        self.ledger.count("drains")
        self.ledger.log(self.sim.now, "drain", node.name)
        self.sim.process(self._drain(node), name=f"drain-{node.name}")

    def _drain(self, node: PoolNode):
        start = self.sim.now
        deadline = start + self.cfg.drain_timeout_s
        while node.web.established > 0 and self.sim.now < deadline:
            yield self.sim.timeout(self.cfg.drain_poll_s)
        if node.web.established > 0:
            # Stragglers are cut off; their calls die with the same 503
            # a crashed server would give.  Real drains do exactly this.
            self.ledger.count("drain_timeouts")
        self.injector.admin_power_off(node.name)
        node.state = OFF
        self.ledger.charge_drain(node.name, self.sim.now - start,
                                 node.idle_watts)
        self.ledger.log(self.sim.now, "off", node.name)
