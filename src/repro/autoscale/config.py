"""Knobs for the autoscaling control plane.

Frozen dataclasses with validation, mirroring
:mod:`repro.resilience.config`: a config can be hashed into an
experiment manifest, serialised into the committed day plan, and an
``enabled=False`` :class:`AutoscaleConfig` (the default) is the
explicit "static fleet" marker — with it, constructing a hybrid
deployment wires no controller, spawns no processes and draws no
random numbers, keeping runs bit-identical to a build without this
package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

#: Paper-grounded boot times, in simulated seconds.  The Edison runs
#: Yocto off flash and is up in single-digit seconds; an R620 POSTs
#: its way through iDRAC, RAID and PXE for tens of seconds.  Scaled to
#: the compressed day the same way the port-pool constants are.
DEFAULT_BOOT_S: Mapping[str, float] = {"edison": 8.0, "dell": 15.0}


@dataclass(frozen=True)
class PolicyConfig:
    """Shared policy knobs plus the predictive extension.

    The reactive rule targets ``target_utilization`` of the active
    fleet's aggregate capacity, with a hysteresis band
    (``low_utilization``..``high_utilization``) inside which it holds,
    and a ``cooldown_s`` gate on consecutive actions so one noisy
    sample cannot flap the fleet.  The predictive rule adds a
    least-squares extrapolation of the offered rate ``lookahead_s``
    ahead (defaulting to the slowest boot in the pool — capacity must
    be *ready* when the load arrives, not ordered then).
    """

    kind: str = "reactive"            # "reactive" | "predictive"
    target_utilization: float = 0.60
    high_utilization: float = 0.80
    low_utilization: float = 0.40
    eval_interval_s: float = 2.0
    metric_window_s: float = 6.0
    cooldown_s: float = 12.0
    history_s: float = 30.0           # predictive regression window
    lookahead_s: float = 0.0          # 0: derived from the pool's boots
    headroom: float = 1.0             # margin on the predicted rate

    def __post_init__(self):
        if self.kind not in ("reactive", "predictive"):
            raise ValueError(f"unknown policy kind {self.kind!r}")
        if not 0.0 < self.target_utilization < 1.0:
            raise ValueError("target_utilization must be in (0, 1)")
        if not (0.0 <= self.low_utilization < self.high_utilization <= 1.0):
            raise ValueError("need 0 <= low < high <= 1 utilization band")
        if not (self.low_utilization < self.target_utilization
                < self.high_utilization):
            raise ValueError("target_utilization must sit inside the band")
        if self.eval_interval_s <= 0 or self.metric_window_s <= 0:
            raise ValueError("eval/metric intervals must be > 0")
        if self.cooldown_s < 0 or self.history_s <= 0:
            raise ValueError("cooldown_s >= 0 and history_s > 0 required")
        if self.lookahead_s < 0 or self.headroom < 1.0:
            raise ValueError("lookahead_s >= 0 and headroom >= 1 required")


@dataclass(frozen=True)
class ActuationConfig:
    """How capacity changes become real: boots, drains, floors."""

    boot_s: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_BOOT_S))
    drain_poll_s: float = 0.5
    drain_timeout_s: float = 10.0
    #: Nodes that may never be powered off (a fleet must keep serving).
    min_active: int = 1

    def __post_init__(self):
        for platform, boot in self.boot_s.items():
            if boot < 0:
                raise ValueError(f"boot_s[{platform!r}] must be >= 0")
        if self.drain_poll_s <= 0 or self.drain_timeout_s < 0:
            raise ValueError("drain_poll_s > 0, drain_timeout_s >= 0")
        if self.min_active < 1:
            raise ValueError("min_active must be >= 1")


@dataclass(frozen=True)
class AutoscaleConfig:
    """Top-level switch; off by default (static fleet, bit-identical)."""

    enabled: bool = False
    policy: PolicyConfig = field(default_factory=PolicyConfig)
    actuation: ActuationConfig = field(default_factory=ActuationConfig)

    @classmethod
    def disabled(cls) -> "AutoscaleConfig":
        """The explicit static-fleet marker."""
        return cls(enabled=False)

    @classmethod
    def reactive(cls, **overrides) -> "AutoscaleConfig":
        return cls(enabled=True,
                   policy=PolicyConfig(kind="reactive", **overrides))

    @classmethod
    def predictive(cls, **overrides) -> "AutoscaleConfig":
        return cls(enabled=True,
                   policy=PolicyConfig(kind="predictive", **overrides))

    # -- (de)serialisation, for the committed day plan -------------------

    def to_dict(self) -> Dict:
        return {
            "enabled": self.enabled,
            "policy": {
                "kind": self.policy.kind,
                "target_utilization": self.policy.target_utilization,
                "high_utilization": self.policy.high_utilization,
                "low_utilization": self.policy.low_utilization,
                "eval_interval_s": self.policy.eval_interval_s,
                "metric_window_s": self.policy.metric_window_s,
                "cooldown_s": self.policy.cooldown_s,
                "history_s": self.policy.history_s,
                "lookahead_s": self.policy.lookahead_s,
                "headroom": self.policy.headroom,
            },
            "actuation": {
                "boot_s": dict(self.actuation.boot_s),
                "drain_poll_s": self.actuation.drain_poll_s,
                "drain_timeout_s": self.actuation.drain_timeout_s,
                "min_active": self.actuation.min_active,
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "AutoscaleConfig":
        return cls(enabled=data["enabled"],
                   policy=PolicyConfig(**data.get("policy", {})),
                   actuation=ActuationConfig(**data.get("actuation", {})))
