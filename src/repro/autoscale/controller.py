"""The controller loop: telemetry in, actuation out.

Every ``eval_interval_s`` the controller measures the fleet's offered
rate *the way a real control plane must* — from the TSDB, as the sum
of per-node ``rate(web_requests_total)`` over the metric window,
anchored at the current clock.  Suspended nodes stopped being scraped
the moment they went down, so their stale series contribute nothing
(no ghost capacity, no ghost load).  The policy turns that into a
desired capacity; the pool turns desired capacity into a wanted node
set; the actuator makes reality match.

The controller also writes its own working series back into the TSDB
(``autoscale_offered_rps``, ``autoscale_capacity_rps``,
``autoscale_desired_rps``) so a day's control decisions can be
dashboarded next to the signals that caused them.
"""

from __future__ import annotations

from typing import Optional

from .actuator import FleetActuator
from .config import AutoscaleConfig
from .ledger import AutoscaleLedger
from .policy import make_policy
from .pool import ACTIVE, OFF, FleetPool


class AutoscaleController:
    """Closes the loop between the TSDB and the fleet pool."""

    def __init__(self, sim, telemetry, pool: FleetPool,
                 actuator: FleetActuator, config: AutoscaleConfig,
                 ledger: AutoscaleLedger):
        if not config.enabled:
            raise ValueError("refusing to build a disabled controller")
        if telemetry is None:
            raise ValueError("the controller needs an attached Telemetry "
                             "(it scrapes the TSDB, not the nodes)")
        self.sim = sim
        self.telemetry = telemetry
        self.pool = pool
        self.actuator = actuator
        self.config = config
        self.ledger = ledger
        slowest_boot = max((actuator.boot_seconds(n) for n in pool.nodes),
                           default=0.0)
        self.policy = make_policy(
            config.policy,
            default_lookahead_s=slowest_boot + config.policy.eval_interval_s)

    def start(self, until: Optional[float] = None) -> None:
        self.sim.process(self._run(until), name="autoscale-controller")

    def _run(self, until: Optional[float]):
        interval = self.config.policy.eval_interval_s
        while until is None or self.sim.now + interval <= until:
            yield self.sim.timeout(interval)
            self.evaluate()

    # -- one control decision ---------------------------------------------

    def offered_rps(self) -> float:
        """The fleet's measured request rate, straight from the TSDB."""
        db = self.telemetry.db
        window = self.config.policy.metric_window_s
        now = self.sim.now
        return sum(
            db.rate("web_requests_total", window_s=window, now=now,
                    node=node.name)
            for node in self.pool.nodes)

    def evaluate(self) -> None:
        now = self.sim.now
        db = self.telemetry.db
        offered = self.offered_rps()
        capacity = self.pool.committed_capacity_rps()
        self.ledger.count("evals")
        db.record(now, "autoscale_offered_rps", offered)
        db.record(now, "autoscale_capacity_rps", capacity)
        desired = self.policy.decide(now, offered, capacity)
        if desired is None:
            self.ledger.count("holds")
            return
        db.record(now, "autoscale_desired_rps", desired)
        wanted = {node.name for node in self.pool.plan_active_set(
            desired, self.config.actuation.min_active)}
        if self.sim.trace is not None:
            self.sim.trace.instant("autoscale.decision",
                                   category="autoscale",
                                   offered=round(offered, 3),
                                   desired=round(desired, 3),
                                   wanted=len(wanted))
        for node in self.pool.plan_order:
            if node.name in wanted and node.state == OFF:
                self.actuator.power_on(node)
            elif node.name not in wanted and node.state == ACTIVE:
                self.actuator.power_off(node)
