"""The mixed Edison/R620 web testbed under autoscaler management.

A :class:`HybridWebDeployment` is the autoscaled analogue of
:class:`repro.web.WebServiceDeployment`: one fresh simulation holding
a :func:`~repro.cluster.hybrid_web_cluster`, per-platform service
costs and connection limits on each web node, a capacity-weighted LB
rotation, and — when an enabled :class:`AutoscaleConfig` is passed —
the full control plane (pool, actuator, controller, ledger).

With autoscaling disabled (the default) nothing control-plane-shaped
is constructed: the deployment is just a static heterogeneous fleet
behind weighted routing, and two runs with the same seed are
bit-identical whether or not this module ever existed.
"""

from __future__ import annotations

from typing import List, Optional

from ..cluster import hybrid_web_cluster
from ..hardware import ServerSpec
from ..sim import RngStreams, Simulation
from ..web import params as P
from ..web.deployment import run_shaped
from ..web.httperf import HttperfDriver, LevelResult
from ..web.nodes import CacheNode, DatabaseNode, WebServerNode
from ..web.rotation import WeightedRotation
from .actuator import FleetActuator
from .config import AutoscaleConfig
from .controller import AutoscaleController
from .ledger import AutoscaleLedger
from .pool import ACTIVE, OFF, FleetPool, PoolNode


class HybridWebDeployment:
    """Edisons and R620s in one rotation, optionally autoscaled."""

    def __init__(self, edison_web: int = 6, dell_web: int = 1,
                 cache: int = 3,
                 workload: Optional[P.WebWorkload] = None,
                 seed: int = 20160901,
                 autoscale: Optional[AutoscaleConfig] = None,
                 edison_spec: Optional[ServerSpec] = None,
                 trace=None):
        self.platform = "hybrid"
        self.scale = f"{edison_web}e+{dell_web}d"
        self.workload = workload if workload is not None else P.WebWorkload()
        self.sim = Simulation(trace=trace)
        self.rng = RngStreams(seed)
        kwargs = {}
        if edison_spec is not None:
            kwargs["edison_spec"] = edison_spec
        self.cluster = hybrid_web_cluster(self.sim, edison_web, dell_web,
                                          cache, **kwargs)
        topo = self.cluster.topology
        self.db_nodes: List[DatabaseNode] = [
            DatabaseNode(self.cluster.servers[f"db-{i}"],
                         self.rng.stream(f"db-{i}"))
            for i in range(2)
        ]
        cache_servers = [s for n, s in self.cluster.servers.items()
                         if n.startswith("cache-")]
        self.cache_nodes: List[CacheNode] = [CacheNode(s)
                                             for s in cache_servers]
        web_servers = [s for n, s in self.cluster.servers.items()
                       if n.startswith("web-")]
        self.web_nodes: List[WebServerNode] = [
            WebServerNode(self.sim, s, topo, P.COSTS[s.platform],
                          P.LIMITS[s.platform], self.workload,
                          self.rng.stream(f"web-{i}"),
                          self.cache_nodes, self.db_nodes)
            for i, s in enumerate(web_servers)
        ]
        self.client_names = [f"client-{i}" for i in range(8)]
        self.telemetry = None
        self.last_driver: Optional[HttperfDriver] = None
        # The weighted rotation: every backend registered at its
        # platform's tuned capacity, so the Dell takes ~12x an
        # Edison's share instead of an equal one.
        self.rotation = WeightedRotation(self.sim)
        for web in self.web_nodes:
            self.rotation.add(web,
                              P.PER_SERVER_CAPACITY_RPS[web.server.platform])
        self.pool = FleetPool([
            PoolNode(web, P.PER_SERVER_CAPACITY_RPS[web.server.platform])
            for web in self.web_nodes])
        self._reserve_memory()
        self.meter = self.cluster.attach_meter(interval=0.25)
        # Strictly opt-in, like resilience: a disabled config leaves
        # no controller, no ledger, no extra processes, no RNG draws.
        self.autoscale = (autoscale if autoscale is not None
                          and autoscale.enabled else None)
        self.ledger: Optional[AutoscaleLedger] = None
        self.controller: Optional[AutoscaleController] = None
        self.actuator: Optional[FleetActuator] = None
        if self.autoscale is not None:
            self.ledger = AutoscaleLedger()

    def _reserve_memory(self) -> None:
        for node in self.web_nodes:
            frac = P.MEMORY_RESERVATION[(node.server.platform, "web")]
            node.server.memory.reserve(
                frac * node.server.memory.capacity_bytes)
        for node in self.cache_nodes:
            frac = P.MEMORY_RESERVATION[(node.server.platform, "cache")]
            node.server.memory.reserve(
                frac * node.server.memory.capacity_bytes)

    # -- fault plumbing (same contract as WebServiceDeployment) -----------

    def _on_fault_event(self, event: str, node: str, kind: str) -> None:
        if event != "up" or kind not in ("crash", "power", "admin"):
            return
        for web in self.web_nodes:
            if web.server.name == node:
                web.reset()
                return

    def _ensure_injector(self):
        """The actuator needs ``sim.faults``; attach an empty one."""
        if self.sim.faults is None:
            from ..faults import FaultInjector, FaultPlan
            FaultInjector(self.cluster, FaultPlan.empty())
        self.sim.faults.add_listener(self._on_fault_event)
        return self.sim.faults

    # -- capacity ---------------------------------------------------------

    def target_rps(self) -> float:
        """Peak offered rate the full fleet is tuned for."""
        factor = P.workload_factor(self.workload.image_fraction,
                                   self.workload.cache_hit_ratio)
        return self.pool.total_capacity_rps() * factor

    # -- running one day --------------------------------------------------

    def prepare_autoscaler(self, initial_rps: float,
                           until: Optional[float] = None
                           ) -> AutoscaleController:
        """Size the fleet for ``initial_rps`` and start the controller.

        Nodes outside the initial plan are suspended *before* the run
        begins — the day starts with the fleet the policy would have
        chosen had it been watching all along, not with everything on.
        """
        if self.autoscale is None:
            raise RuntimeError("this deployment has no enabled "
                               "AutoscaleConfig")
        if self.controller is not None:
            raise RuntimeError("the autoscaler is already prepared")
        injector = self._ensure_injector()
        self.actuator = FleetActuator(self.sim, injector, self.rotation,
                                      self.autoscale.actuation, self.ledger)
        policy = self.autoscale.policy
        wanted = {node.name for node in self.pool.plan_active_set(
            initial_rps / policy.target_utilization,
            self.autoscale.actuation.min_active)}
        for node in self.pool.nodes:
            if node.name not in wanted:
                node.state = OFF
                self.rotation.set_in_rotation(node.name, False)
                injector.admin_power_off(node.name)
            else:
                node.state = ACTIVE
        self.controller = AutoscaleController(
            self.sim, self.telemetry, self.pool, self.actuator,
            self.autoscale, self.ledger)
        self.controller.start(until=until)
        return self.controller

    def run_day(self, shape, duration: float, warmup: float = 0.0,
                calls: int = 5,
                collect_delays: bool = False) -> LevelResult:
        """Drive one shaped day through the weighted rotation.

        With an enabled config the autoscaler is prepared first (sized
        to the shape's opening rate) unless :meth:`prepare_autoscaler`
        was already called explicitly.  Requires attached telemetry
        when autoscaling — the controller reads the TSDB, nothing else.
        """
        if self.autoscale is not None and self.controller is None:
            self.prepare_autoscaler(shape.rate(0.0), until=duration)
        return run_shaped(self, shape, duration, warmup=warmup,
                          calls=calls, rotation=self.rotation,
                          collect_delays=collect_delays)
