"""The autoscale ledger: what elasticity itself cost.

Same philosophy as :class:`repro.resilience.ResilienceLedger`: the
power meter's joule total is ground truth (a booting node's idle draw
and a draining node's lingering watts are all really sampled), and the
ledger *itemises* the slice of that total spent changing capacity
rather than serving with it — plus an action log so tests can assert
actuation ordering (deregister, drain, power off; boot, register).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..energy.account import ScalingCosts


@dataclass(frozen=True)
class ScalingAction:
    """One actuation step, timestamped on the simulation clock."""

    time: float
    action: str      # "boot" | "serve" | "drain" | "off"
    node: str

    def to_dict(self) -> Dict:
        return {"time": self.time, "action": self.action, "node": self.node}


class AutoscaleLedger:
    """Counters, itemised joules and the ordered action log."""

    def __init__(self):
        self.counters: Dict[str, int] = {
            "evals": 0,
            "holds": 0,
            "boots": 0,
            "drains": 0,
            "drain_timeouts": 0,
        }
        self.boot_joules = 0.0
        self.drain_joules = 0.0
        self.node_joules: Dict[str, float] = {}
        self.actions: List[ScalingAction] = []

    def count(self, counter: str, n: int = 1) -> None:
        self.counters[counter] += n

    def log(self, time: float, action: str, node: str) -> None:
        self.actions.append(ScalingAction(time, action, node))

    def charge_boot(self, node: str, seconds: float, watts: float) -> None:
        """Idle-draw energy between power-on and entering service."""
        self._charge(node, seconds, watts, "boot")

    def charge_drain(self, node: str, seconds: float, watts: float) -> None:
        """Drained-but-on energy between deregistration and power-off."""
        self._charge(node, seconds, watts, "drain")

    def _charge(self, node: str, seconds: float, watts: float,
                category: str) -> None:
        if seconds < 0 or watts < 0:
            raise ValueError("seconds and watts must be >= 0")
        joules = seconds * watts
        if category == "boot":
            self.boot_joules += joules
        else:
            self.drain_joules += joules
        self.node_joules[node] = self.node_joules.get(node, 0.0) + joules

    def to_scaling_costs(self) -> ScalingCosts:
        return ScalingCosts(boot_j=self.boot_joules,
                            drain_j=self.drain_joules)

    def summary(self) -> Dict[str, object]:
        return {
            "counters": dict(self.counters),
            "boot_joules": round(self.boot_joules, 6),
            "drain_joules": round(self.drain_joules, 6),
            "node_joules": {k: round(v, 6)
                            for k, v in sorted(self.node_joules.items())},
            "actions": [a.to_dict() for a in self.actions],
        }
