"""Scaling policies: pure decision functions, no simulation inside.

A policy sees three numbers each evaluation — the clock, the measured
offered rate and the fleet's committed capacity — and answers with a
desired aggregate capacity in requests/s, or ``None`` to hold.  All
the control-theory hygiene lives here so it can be unit-tested without
a simulation:

* **hysteresis** — act only outside the ``low..high`` utilisation
  band; inside it, hold, so capacity quantisation (a whole Edison at a
  time) cannot oscillate around the target;
* **cooldown** — consecutive *scale-downs* must be ``cooldown_s``
  apart, and any action (up or down) re-arms the gate, so the fleet
  never sheds a node it grew seconds ago.  Scale-*up* is never gated:
  delaying growth is how SLOs die;
* **prediction** — the predictive policy regresses the offered rate
  over a trailing window and extrapolates one boot-time ahead, buying
  capacity *before* a ramp needs it instead of after utilisation
  crosses the line.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from .config import PolicyConfig


class ReactivePolicy:
    """Threshold scaling around a target utilisation, with hysteresis."""

    def __init__(self, cfg: PolicyConfig):
        self.cfg = cfg
        self.last_action_at = -math.inf

    def demand_rps(self, now: float, offered_rps: float) -> float:
        """The rate this policy provisions for (hook for prediction)."""
        return offered_rps

    def decide(self, now: float, offered_rps: float,
               capacity_rps: float) -> Optional[float]:
        """Desired aggregate capacity in req/s, or None to hold."""
        cfg = self.cfg
        demand = self.demand_rps(now, offered_rps)
        desired = demand / cfg.target_utilization
        if capacity_rps <= 0:
            # No committed capacity at all: bring the fleet up now.
            self.last_action_at = now
            return desired
        utilization = demand / capacity_rps
        if utilization > cfg.high_utilization:
            self.last_action_at = now
            return desired
        if utilization < cfg.low_utilization:
            if now - self.last_action_at < cfg.cooldown_s:
                return None
            self.last_action_at = now
            return desired
        return None


class PredictivePolicy(ReactivePolicy):
    """Reactive rules on a lookahead-extrapolated demand signal."""

    def __init__(self, cfg: PolicyConfig, default_lookahead_s: float = 0.0):
        super().__init__(cfg)
        self.lookahead_s = (cfg.lookahead_s if cfg.lookahead_s > 0
                            else default_lookahead_s)
        self.history: List[Tuple[float, float]] = []

    def demand_rps(self, now: float, offered_rps: float) -> float:
        self.history.append((now, offered_rps))
        cutoff = now - self.cfg.history_s
        while self.history and self.history[0][0] < cutoff:
            self.history.pop(0)
        predicted = offered_rps + self._slope() * self.lookahead_s
        # Prediction only ever *adds* demand: scaling down on a
        # forecasted decline risks shedding capacity a mis-fit trend
        # line invented, so declines wait for the measured rate.
        return max(offered_rps, max(0.0, predicted) * self.cfg.headroom)

    def _slope(self) -> float:
        """Least-squares slope (req/s per s) of the trailing history."""
        n = len(self.history)
        if n < 2:
            return 0.0
        mean_t = sum(t for t, _ in self.history) / n
        mean_v = sum(v for _, v in self.history) / n
        denom = sum((t - mean_t) ** 2 for t, _ in self.history)
        if denom <= 0:
            return 0.0
        numer = sum((t - mean_t) * (v - mean_v) for t, v in self.history)
        return numer / denom


def make_policy(cfg: PolicyConfig,
                default_lookahead_s: float = 0.0) -> ReactivePolicy:
    """Build the configured policy; lookahead defaults to boot time."""
    if cfg.kind == "predictive":
        return PredictivePolicy(cfg, default_lookahead_s)
    return ReactivePolicy(cfg)
