"""The heterogeneous fleet pool and its capacity planning.

A :class:`FleetPool` tracks every web backend's lifecycle state
(ACTIVE/DRAINING/OFF/BOOTING) and answers the controller's one
question: *given this much demanded capacity, which nodes should be
on?*  The answer is a deterministic greedy cover in energy-efficiency
order — requests-per-second per watt at full tilt, which is exactly
the paper's argument quantified: an Edison delivers ~295 rps on a
~1.7 W envelope (~175 rps/W) while an R620 delivers ~3550 rps on
~110 W (~32 rps/W).  So the pool wakes Edisons first and reaches for
the Dell only when the wimpy tier alone cannot cover demand — and
because the order is a fixed total order, the wanted set is always a
prefix of it: scale-up extends the prefix, scale-down shrinks it, and
no churn swaps same-cost nodes back and forth.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

# Lifecycle states.
ACTIVE = "active"
BOOTING = "booting"
DRAINING = "draining"
OFF = "off"


class PoolNode:
    """One web backend under autoscaler management."""

    __slots__ = ("web", "capacity_rps", "state")

    def __init__(self, web, capacity_rps: float, state: str = ACTIVE):
        if capacity_rps <= 0:
            raise ValueError("capacity_rps must be > 0")
        self.web = web
        self.capacity_rps = capacity_rps
        self.state = state

    @property
    def name(self) -> str:
        return self.web.server.name

    @property
    def platform(self) -> str:
        return self.web.server.platform

    @property
    def max_watts(self) -> float:
        return self.web.server.spec.power.max_w

    @property
    def idle_watts(self) -> float:
        return self.web.server.spec.power.min_w

    @property
    def efficiency(self) -> float:
        """Requests per second per watt, saturated — the wake order."""
        return self.capacity_rps / self.max_watts


class FleetPool:
    """Every managed backend, in a fixed efficiency-ordered plan."""

    def __init__(self, nodes: Sequence[PoolNode]):
        if not nodes:
            raise ValueError("the pool needs at least one node")
        self.nodes: List[PoolNode] = list(nodes)
        self.by_name: Dict[str, PoolNode] = {n.name: n for n in self.nodes}
        if len(self.by_name) != len(self.nodes):
            raise ValueError("pool node names must be unique")
        #: The fixed wake order: most efficient first, name-stable ties.
        self.plan_order: List[PoolNode] = sorted(
            self.nodes, key=lambda n: (-n.efficiency, n.name))

    # -- capacity views ---------------------------------------------------

    def committed_capacity_rps(self) -> float:
        """Capacity serving now or already paid for (ACTIVE + BOOTING).

        Counting BOOTING stops the controller from re-ordering capacity
        it has already ordered, every evaluation until the boot lands.
        """
        return sum(n.capacity_rps for n in self.nodes
                   if n.state in (ACTIVE, BOOTING))

    def total_capacity_rps(self) -> float:
        return sum(n.capacity_rps for n in self.nodes)

    def count(self, state: str) -> int:
        return sum(1 for n in self.nodes if n.state == state)

    def states(self) -> Dict[str, str]:
        return {n.name: n.state for n in self.nodes}

    # -- planning ---------------------------------------------------------

    def plan_active_set(self, desired_rps: float,
                        min_active: int = 1) -> List[PoolNode]:
        """The greedy prefix of the wake order covering ``desired_rps``.

        At least ``min_active`` nodes are always kept (a web service
        with zero backends is an outage, not a saving); beyond that,
        nodes accumulate until their summed capacity covers the
        demand.  Deterministic: same demand, same pool, same answer.
        """
        wanted: List[PoolNode] = []
        covered = 0.0
        for node in self.plan_order:
            if len(wanted) < min_active or covered < desired_rps:
                wanted.append(node)
                covered += node.capacity_rps
            else:
                break
        return wanted
