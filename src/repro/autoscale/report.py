"""The three-arm headline experiment: Table 10 made dynamic.

One committed seeded day — a diurnal swing with a flash crowd — is
served three ways:

* **static-dell** — the brawny fleet that covers the peak, idling
  through the valley at an R620's 52 W floor;
* **static-edison** — the wimpy fleet sized like a Table 6 ladder
  rung, efficient all day but capped at its aggregate capacity;
* **autoscaled-hybrid** — both platforms in one weighted rotation,
  with the control plane waking and parking nodes as the day moves.

Every arm reports the paper's currencies — joules, availability, p95
— plus dollars through the Section 6 TCO model (amortised hardware +
metered electricity), and the hybrid arm itemises what elasticity
itself cost (boot energy, drained-but-idle energy, the action log).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..tco.model import amortized_hardware_usd, energy_cost_usd
from ..web.loadshape import ShapedLoad
from .config import AutoscaleConfig
from .deployment import HybridWebDeployment

#: Seed of the committed day (CI smoke + docs), same spirit as
#: repro.resilience's GRAY_SEED.
DAY_SEED = 77


def _p95(delays: List[float]) -> Optional[float]:
    if not delays:
        return None
    ordered = sorted(delays)
    index = max(0, math.ceil(0.95 * len(ordered)) - 1)
    return ordered[index]


@dataclass(frozen=True)
class DayPlan:
    """One committed, seeded diurnal + flash-crowd experiment."""

    name: str
    shape: ShapedLoad
    duration_s: float
    seed: int = DAY_SEED
    calls: int = 5
    edison_scale: str = "6x3"       # static-Edison web x cache layout
    dell_scale: str = "1x1"         # static-Dell web x cache layout
    hybrid_edison_web: int = 6
    hybrid_dell_web: int = 1
    hybrid_cache: int = 3
    autoscale: AutoscaleConfig = field(
        default_factory=lambda: AutoscaleConfig.predictive())

    def __post_init__(self):
        if self.duration_s <= 0:
            raise ValueError("duration_s must be > 0")
        if self.calls < 1:
            raise ValueError("calls must be >= 1")
        if not self.autoscale.enabled:
            raise ValueError("the hybrid arm needs an enabled autoscaler")

    def to_dict(self) -> Dict:
        return {"name": self.name, "shape": self.shape.to_dict(),
                "duration_s": self.duration_s, "seed": self.seed,
                "calls": self.calls, "edison_scale": self.edison_scale,
                "dell_scale": self.dell_scale,
                "hybrid_edison_web": self.hybrid_edison_web,
                "hybrid_dell_web": self.hybrid_dell_web,
                "hybrid_cache": self.hybrid_cache,
                "autoscale": self.autoscale.to_dict()}

    @classmethod
    def from_dict(cls, data: Mapping) -> "DayPlan":
        return cls(name=data["name"],
                   shape=ShapedLoad.from_dict(data["shape"]),
                   duration_s=data["duration_s"], seed=data["seed"],
                   calls=data["calls"],
                   edison_scale=data["edison_scale"],
                   dell_scale=data["dell_scale"],
                   hybrid_edison_web=data["hybrid_edison_web"],
                   hybrid_dell_web=data["hybrid_dell_web"],
                   hybrid_cache=data["hybrid_cache"],
                   autoscale=AutoscaleConfig.from_dict(data["autoscale"]))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "DayPlan":
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


@dataclass(frozen=True)
class AutoscaleArm:
    """One provisioning strategy's day, fully accounted."""

    label: str
    platform: str
    #: Metered (web + cache) nodes provisioned, by platform.
    nodes: Mapping[str, int]
    seconds: float
    joules: float
    ok_calls: int
    errors: int
    client_failures: int
    availability: Optional[float]
    availability_met: Optional[bool]
    p95_s: Optional[float]
    mean_power_w: float
    hardware_usd: float
    energy_usd: float
    #: Scaling itemisation (autoscaled arm only; zero when static).
    boot_j: float = 0.0
    drain_j: float = 0.0
    counters: Mapping[str, int] = field(default_factory=dict)
    actions: Tuple[Dict, ...] = field(default_factory=tuple)

    @property
    def work_per_joule(self) -> float:
        if self.joules <= 0:
            return 0.0
        return self.ok_calls / self.joules

    @property
    def total_usd(self) -> float:
        return self.hardware_usd + self.energy_usd

    def to_dict(self) -> Dict:
        return {"label": self.label, "platform": self.platform,
                "nodes": dict(self.nodes), "seconds": self.seconds,
                "joules": self.joules, "ok_calls": self.ok_calls,
                "errors": self.errors,
                "client_failures": self.client_failures,
                "availability": self.availability,
                "availability_met": self.availability_met,
                "p95_s": self.p95_s, "mean_power_w": self.mean_power_w,
                "hardware_usd": self.hardware_usd,
                "energy_usd": self.energy_usd,
                "total_usd": self.total_usd,
                "work_per_joule": self.work_per_joule,
                "boot_j": self.boot_j, "drain_j": self.drain_j,
                "counters": dict(self.counters),
                "actions": list(self.actions)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "AutoscaleArm":
        return cls(label=data["label"], platform=data["platform"],
                   nodes=dict(data["nodes"]), seconds=data["seconds"],
                   joules=data["joules"], ok_calls=data["ok_calls"],
                   errors=data["errors"],
                   client_failures=data["client_failures"],
                   availability=data["availability"],
                   availability_met=data["availability_met"],
                   p95_s=data["p95_s"],
                   mean_power_w=data["mean_power_w"],
                   hardware_usd=data["hardware_usd"],
                   energy_usd=data["energy_usd"],
                   boot_j=data.get("boot_j", 0.0),
                   drain_j=data.get("drain_j", 0.0),
                   counters=dict(data.get("counters", {})),
                   actions=tuple(data.get("actions", ())))


@dataclass(frozen=True)
class AutoscaleReport:
    """The three arms side by side, with the dominance verdict."""

    plan_name: str
    detail: str
    arms: Tuple[AutoscaleArm, ...]

    def arm(self, label: str) -> AutoscaleArm:
        for arm in self.arms:
            if arm.label == label:
                return arm
        raise KeyError(f"no arm labelled {label!r}")

    @property
    def hybrid(self) -> AutoscaleArm:
        return self.arm("autoscaled-hybrid")

    def dominated_arms(self) -> List[str]:
        """Static arms the hybrid strictly beats on joules at
        equal-or-better availability."""
        hybrid = self.hybrid
        out = []
        for arm in self.arms:
            if arm.label == hybrid.label:
                continue
            if hybrid.joules >= arm.joules:
                continue
            if (hybrid.availability is None
                    or arm.availability is None):
                continue
            if hybrid.availability >= arm.availability:
                out.append(arm.label)
        return out

    def to_dict(self) -> Dict:
        return {"plan_name": self.plan_name, "detail": self.detail,
                "arms": [arm.to_dict() for arm in self.arms],
                "dominated_arms": self.dominated_arms()}

    @classmethod
    def from_dict(cls, data: Mapping) -> "AutoscaleReport":
        return cls(plan_name=data["plan_name"], detail=data["detail"],
                   arms=tuple(AutoscaleArm.from_dict(a)
                              for a in data["arms"]))

    def lines(self) -> List[str]:
        """The three-arm table, CLI/docs-ready."""
        out = [f"Autoscaling day — {self.plan_name} ({self.detail})"]
        labels = [arm.label for arm in self.arms]
        out.append("  " + f"{'':22s}"
                   + "".join(f"{label:>20s}" for label in labels))

        def row(name: str, fmt) -> None:
            out.append("  " + f"{name:22s}"
                       + "".join(f"{fmt(arm):>20s}" for arm in self.arms))

        def nodes(arm: AutoscaleArm) -> str:
            return "+".join(f"{count} {platform}"
                            for platform, count in sorted(arm.nodes.items()))

        row("fleet (web+cache)", nodes)
        row("energy", lambda a: f"{a.joules:.0f} J")
        row("mean power", lambda a: f"{a.mean_power_w:.1f} W")
        row("ok calls", lambda a: f"{a.ok_calls}")
        row("errors+failures",
            lambda a: f"{a.errors + a.client_failures}")
        row("availability",
            lambda a: ("n/a" if a.availability is None else
                       f"{a.availability:.4%}"
                       + (" met" if a.availability_met else " MISS")))
        row("p95 delay",
            lambda a: ("n/a" if a.p95_s is None
                       else f"{a.p95_s * 1000:.0f} ms"))
        row("calls per kJ", lambda a: f"{a.work_per_joule * 1000:.0f}")
        row("hardware $ (amort.)", lambda a: f"${a.hardware_usd:.4f}")
        row("electricity $", lambda a: f"${a.energy_usd:.4f}")
        row("total $", lambda a: f"${a.total_usd:.4f}")
        hybrid = self.hybrid
        out.append(f"  scaling overhead: boot {hybrid.boot_j:.1f} J, "
                   f"drain {hybrid.drain_j:.1f} J "
                   f"({hybrid.counters.get('boots', 0)} boots, "
                   f"{hybrid.counters.get('drains', 0)} drains, "
                   f"{hybrid.counters.get('drain_timeouts', 0)} drain "
                   f"timeouts)")
        dominated = self.dominated_arms()
        if dominated:
            out.append("  verdict: hybrid dominates "
                       + ", ".join(dominated)
                       + " (fewer joules, >= availability)")
        else:
            out.append("  verdict: hybrid dominates no static arm")
        return out


# -- running the experiment ----------------------------------------------


def _fleet_counts(cluster) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for server in cluster.metered_servers:
        counts[server.platform] = counts.get(server.platform, 0) + 1
    return counts


def _fleet_cost_usd(cluster) -> float:
    return sum(s.spec.node_cost_usd for s in cluster.metered_servers)


def _build_arm(label: str, deployment, telemetry, level,
               duration: float, ledger=None) -> AutoscaleArm:
    slo = telemetry.slo_report()
    joules = deployment.meter.energy_joules()
    delays = (deployment.last_driver.delays
              if deployment.last_driver is not None else [])
    return AutoscaleArm(
        label=label, platform=deployment.platform,
        nodes=_fleet_counts(deployment.cluster),
        seconds=duration, joules=joules,
        ok_calls=level.ok_calls,
        errors=level.error_calls + level.timeout_calls
        + level.failed_connections,
        client_failures=slo.client_failures,
        availability=slo.availability,
        availability_met=slo.availability_met,
        p95_s=_p95(delays),
        mean_power_w=level.mean_power_w,
        hardware_usd=amortized_hardware_usd(
            _fleet_cost_usd(deployment.cluster), duration),
        energy_usd=energy_cost_usd(joules),
        boot_j=ledger.boot_joules if ledger is not None else 0.0,
        drain_j=ledger.drain_joules if ledger is not None else 0.0,
        counters=dict(ledger.counters) if ledger is not None else {},
        actions=tuple(a.to_dict() for a in ledger.actions)
        if ledger is not None else ())


def autoscale_experiment(plan: DayPlan, trace=None) -> AutoscaleReport:
    """Run the committed day three ways and report all arms."""
    from ..telemetry import Telemetry    # deferred: import cycle
    from ..web import WebServiceDeployment

    def static_arm(label: str, platform: str, scale: str) -> AutoscaleArm:
        deployment = WebServiceDeployment(platform, scale, seed=plan.seed,
                                          trace=trace)
        telemetry = Telemetry()
        telemetry.attach_web(deployment, until=plan.duration_s)
        level = deployment.run_shaped(plan.shape, plan.duration_s,
                                      calls=plan.calls,
                                      collect_delays=True)
        return _build_arm(label, deployment, telemetry, level,
                          plan.duration_s)

    def hybrid_arm() -> AutoscaleArm:
        deployment = HybridWebDeployment(
            edison_web=plan.hybrid_edison_web,
            dell_web=plan.hybrid_dell_web,
            cache=plan.hybrid_cache, seed=plan.seed,
            autoscale=plan.autoscale, trace=trace)
        telemetry = Telemetry()
        telemetry.attach_web(deployment, until=plan.duration_s)
        level = deployment.run_day(plan.shape, plan.duration_s,
                                   calls=plan.calls, collect_delays=True)
        return _build_arm("autoscaled-hybrid", deployment, telemetry,
                          level, plan.duration_s,
                          ledger=deployment.ledger)

    arms = (
        static_arm("static-edison", "edison", plan.edison_scale),
        static_arm("static-dell", "dell", plan.dell_scale),
        hybrid_arm(),
    )
    peak = plan.shape.peak_bound()
    return AutoscaleReport(
        plan_name=plan.name,
        detail=f"{plan.duration_s:.0f} s day, "
               f"{plan.shape.diurnal.base_rps:.0f}-"
               f"{plan.shape.diurnal.peak_rps:.0f} rps diurnal, "
               f"{peak:.0f} rps flash peak, seed {plan.seed}",
        arms=arms)
