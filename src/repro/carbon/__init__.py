"""Carbon- and price-aware scheduling of deferrable work.

The paper priced its clusters with the PDU as the only meter; this
package adds the grid's clock.  Carbon-intensity (gCO2/kWh) and
time-of-use tariff ($/kWh) signals become simulated-time traces; batch
MapReduce jobs gain release times and deadlines; and four policies —
no-wait, EDD, threshold-waiting, suspend-resume (parking the whole
fleet in the PR 6 admin power states mid-run) — are priced against
each other in grams of CO2, dollars, wait hours and deadline misses,
on both the Edison and R620 clusters.

Everything is strictly opt-in.  The scheduler is a *front end*: jobs
submitted outside it never see a deferral queue, a governor or an
extra process, and the no-wait arm's runs are float-for-float
identical to plain ``run_job`` — the same hard off-path guarantee
`repro.trace`, `repro.telemetry`, `repro.faults`, `repro.resilience`
and `repro.autoscale` make.
"""

from .governor import CarbonGovernor
from .jobspec import CARBON_JOB_KINDS, CarbonJobSpec
from .ledger import CarbonLedger, GovernorAction, JobRecord, grid_impact
from .policy import (POLICY_KINDS, EddPolicy, NoWaitPolicy, PolicySpec,
                     SchedulingPolicy, SuspendResumePolicy,
                     ThresholdWaitPolicy, make_policy)
from .scheduler import CarbonScheduler, run_policy_day
from .trace import (SignalTrace, evening_peak_price, solar_dip_intensity)

__all__ = [
    "CARBON_JOB_KINDS", "CarbonArm", "CarbonDayPlan", "CarbonGovernor",
    "CarbonJobSpec", "CarbonLedger", "CarbonReport", "CarbonScheduler",
    "DAY_SEED", "EddPolicy", "GovernorAction", "JobRecord",
    "NoWaitPolicy", "POLICY_KINDS", "PLATFORMS", "PolicySpec",
    "SchedulingPolicy", "SignalTrace", "SuspendResumePolicy",
    "ThresholdWaitPolicy", "carbon_experiment", "evening_peak_price",
    "grid_impact", "make_policy", "run_policy_day", "solar_dip_intensity",
]

_REPORT_NAMES = ("CarbonArm", "CarbonDayPlan", "CarbonReport", "DAY_SEED",
                 "PLATFORMS", "carbon_experiment")


def __getattr__(name):
    # Deferred: the report pulls in the whole MapReduce surface — keep
    # it off the path of anyone who only wants traces and policies.
    if name in _REPORT_NAMES:
        from . import report
        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
