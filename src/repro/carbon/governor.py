"""The suspend-resume governor: parking a running cluster mid-job.

One in-simulation process per governed run.  Every
``check_interval_s`` it reads the day's intensity trace at the job's
*day* clock (run offset + local sim time) and flips the whole slave
fleet between service and the PR 6 admin power states through
:meth:`JobRunner.suspend_workers` / :meth:`JobRunner.resume_workers`.

Suspension time is budgeted, not optimistic: the job's deadline slack
beyond ``safety * estimate`` is the total the governor may spend
parked (boot time included), so a governed run can wait out a dirty
grid but cannot talk itself into a deadline miss.  Every flip is
timestamped into the :class:`~repro.carbon.ledger.CarbonLedger`'s
action log.
"""

from __future__ import annotations

from .jobspec import CarbonJobSpec
from .policy import SuspendResumePolicy
from .trace import SignalTrace


class CarbonGovernor:
    """Intensity-driven suspend/resume for one MapReduce run."""

    def __init__(self, runner, job: CarbonJobSpec, policy:
                 SuspendResumePolicy, intensity: SignalTrace,
                 start_day_s: float, ledger=None):
        self.runner = runner
        self.job = job
        self.policy = policy
        self.intensity = intensity
        self.start_day_s = start_day_s
        self.ledger = ledger
        self.boot_s = policy.boot_s(runner.platform)
        spec = policy.spec
        self.check_interval_s = spec.check_interval_s
        #: Total seconds the governor may keep the fleet parked.
        self.budget_s = max(0.0, (job.deadline_s - start_day_s)
                            - spec.safety * job.estimate(runner.platform))
        self.suspensions = 0
        self.suspended_s = 0.0
        self._suspended = False

    def _day_now(self) -> float:
        return self.start_day_s + self.runner.sim.now

    def _dirty(self) -> bool:
        return self.intensity.at(self._day_now()) > self.policy.threshold

    def _log(self, action: str) -> None:
        if self.ledger is not None:
            self.ledger.log_action(self._day_now(), self.job.name, action)

    def run(self):
        """Process generator: tick, compare, flip."""
        # A suspend must be worth its boot: require budget for the
        # reboot plus at least one parked interval before committing.
        min_park = self.boot_s + 2 * self.check_interval_s
        while True:
            yield self.check_interval_s
            if not self._suspended:
                if self._dirty() and self.budget_s >= min_park:
                    self.runner.suspend_workers()
                    self._suspended = True
                    self.suspensions += 1
                    self._log("suspend")
                continue
            # Parked: the tick itself consumes budget.
            self.budget_s -= self.check_interval_s
            self.suspended_s += self.check_interval_s
            if not self._dirty() or self.budget_s <= min_park:
                self.budget_s -= self.boot_s
                self.suspended_s += self.boot_s
                yield from self.runner.resume_workers(self.boot_s)
                self._suspended = False
                self._log("resume")

    def attach(self) -> None:
        """Spawn the governor process inside the runner's simulation."""
        self.runner.sim.process(self.run(),
                                name=f"carbon-governor-{self.job.name}")
