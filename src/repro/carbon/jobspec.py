"""Deferrable work: MapReduce jobs with release times and deadlines.

A :class:`CarbonJobSpec` wraps one of the repo's MapReduce jobs in the
three numbers a deferral policy needs: when the job *may* start
(release), when it *must* finish (deadline), and how long it is
expected to run on each platform (the estimate the policies budget
waiting and suspension time against — measured once at plan-build time
and committed with the plan, like any other calibration constant).

``CARBON_JOB_KINDS`` maps a kind name to a factory producing the
concrete ``(JobSpec, HadoopConfig)`` at the compressed-day scale the
committed experiment uses: a mini TeraSort (the paper's most
shuffle-bound job) and a scan over a WikiDB-shaped sample (the paper's
web-serving dataset put through batch analytics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Tuple

from ..mapreduce.config import HadoopConfig, default_config
from ..mapreduce.costs import JobCosts
from ..mapreduce.jobs.terasort import MAP_MEM, REDUCE_MEM, TERASORT_COSTS
from ..mapreduce.runtime import JobSpec
from ..workloads import terasort_dataset
from ..workloads.datasets import Dataset, split_evenly
from ..workloads.wikidb import MEAN_TEXT_ROW_BYTES


def _terasort_mini(platform: str) -> Tuple[JobSpec, HadoopConfig]:
    """TeraSort at 1/160th scale: 64 MB over 16 maps, 4 reducers."""
    dataset = terasort_dataset(total_bytes=64_000_000, files=16)
    spec = JobSpec(
        name="terasort-mini", costs=TERASORT_COSTS,
        map_tasks=dataset.file_count, reduce_tasks=4,
        map_mem_mb=MAP_MEM[platform], reduce_mem_mb=REDUCE_MEM[platform],
        dataset=dataset, combiner=False, output_ratio=1.0)
    return spec, default_config(platform)


#: Scan/aggregate cost surface: map-dominant, cheap reduce, and the
#: same per-platform JVM factor TeraSort calibrated.
WIKIDB_SCAN_COSTS = JobCosts(
    map_mi_per_mb=420.0, sort_mi_per_mb=60.0, reduce_mi_per_mb=150.0,
    java_factor=dict(TERASORT_COSTS.java_factor))


def _wikidb_scan(platform: str) -> Tuple[JobSpec, HadoopConfig]:
    """Aggregate scan over a WikiDB-shaped text sample.

    The web tier's database, run through batch analytics: 48 MB of
    wiki-row-sized records, tiny aggregate output (a combiner-friendly
    group-by), one reducer per two maps' worth of keys.
    """
    dataset = Dataset(
        name="wikidb-sample",
        files=split_evenly(48_000_000, 12, "wikidb",
                           bytes_per_record=MEAN_TEXT_ROW_BYTES),
        map_output_record_bytes=64.0,
        map_output_ratio=0.20,
        combine_survival=0.30)
    spec = JobSpec(
        name="wikidb-scan", costs=WIKIDB_SCAN_COSTS,
        map_tasks=dataset.file_count, reduce_tasks=3,
        map_mem_mb=MAP_MEM[platform], reduce_mem_mb=REDUCE_MEM[platform],
        dataset=dataset, combiner=True, output_ratio=0.05)
    return spec, default_config(platform)


CARBON_JOB_KINDS: Dict[str, Callable[[str], Tuple[JobSpec, HadoopConfig]]] \
    = {
        "terasort-mini": _terasort_mini,
        "wikidb-scan": _wikidb_scan,
    }


@dataclass(frozen=True)
class CarbonJobSpec:
    """One deferrable job in the day's workload."""

    name: str
    kind: str                       # key into CARBON_JOB_KINDS
    release_s: float                # earliest allowed start (day clock)
    deadline_s: float               # must finish by (day clock)
    #: Expected runtime per platform, simulated seconds — the committed
    #: calibration the policies budget against.
    est_s: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in CARBON_JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r} "
                             f"(have {sorted(CARBON_JOB_KINDS)})")
        if self.release_s < 0:
            raise ValueError("release_s must be >= 0")
        if self.deadline_s <= self.release_s:
            raise ValueError("deadline_s must be > release_s")
        for platform, est in self.est_s.items():
            if est <= 0:
                raise ValueError(f"est_s[{platform!r}] must be > 0")

    def build(self, platform: str) -> Tuple[JobSpec, HadoopConfig]:
        """Materialise the underlying MapReduce job for ``platform``."""
        return CARBON_JOB_KINDS[self.kind](platform)

    def estimate(self, platform: str) -> float:
        """The committed runtime estimate for ``platform``."""
        if platform not in self.est_s:
            raise KeyError(f"no runtime estimate for {platform!r} on "
                           f"job {self.name!r}")
        return self.est_s[platform]

    def slack_s(self, platform: str) -> float:
        """Deadline slack beyond the estimated runtime."""
        return (self.deadline_s - self.release_s) - self.estimate(platform)

    def to_dict(self) -> Dict:
        return {"name": self.name, "kind": self.kind,
                "release_s": self.release_s, "deadline_s": self.deadline_s,
                "est_s": dict(self.est_s)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "CarbonJobSpec":
        return cls(name=data["name"], kind=data["kind"],
                   release_s=data["release_s"],
                   deadline_s=data["deadline_s"],
                   est_s=dict(data.get("est_s", {})))
