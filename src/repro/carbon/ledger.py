"""Charging metered joules against the grid's clock.

The power meter is ground truth, as everywhere else in the repo: each
run's sampled watts integrate to its joules.  The carbon ledger adds
the *when*: the same trapezoids, shifted onto the day clock and
weighted by the intensity and tariff traces through
:func:`repro.tco.weighted_energy_rate`, become grams of CO2 and
dollars.  Two runs with identical joules can differ 3x in grams purely
by where the day they landed — that difference is the whole subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from ..energy.account import GridImpact
from ..tco.model import weighted_energy_rate
from .trace import SignalTrace


def grid_impact(power_pairs, start_day_s: float, intensity: SignalTrace,
                price: SignalTrace) -> GridImpact:
    """Score one run's power trace against the day's grid signals.

    ``power_pairs`` is the run-local ``(t, watts)`` trace (a
    :class:`~repro.sim.TimeSeries` or plain pairs); ``start_day_s``
    shifts it onto the day clock the traces are indexed by.
    """
    pairs = list(power_pairs.pairs() if hasattr(power_pairs, "pairs")
                 else power_pairs)
    if not pairs:
        return GridImpact()
    shifted = [(start_day_s + t, w) for t, w in pairs]
    start, end = shifted[0][0], shifted[-1][0]
    grams = weighted_energy_rate(shifted, intensity.steps(start, end))
    usd = weighted_energy_rate(shifted, price.steps(start, end))
    return GridImpact(grams_co2=grams, energy_usd=usd)


@dataclass(frozen=True)
class JobRecord:
    """One deferrable job's day, fully accounted."""

    name: str
    kind: str
    release_s: float
    deadline_s: float
    start_s: float                  # day clock
    end_s: float                    # day clock
    #: Exact run duration as the simulation reported it — ``end_s -
    #: start_s`` loses low bits to the day-clock addition, and the
    #: off-path smoke compares durations float-for-float.
    seconds: float
    joules: float
    grams_co2: float
    energy_usd: float
    suspensions: int = 0
    suspended_s: float = 0.0

    @property
    def wait_s(self) -> float:
        """Queue + policy delay before the job began."""
        return self.start_s - self.release_s

    @property
    def deadline_met(self) -> bool:
        return self.end_s <= self.deadline_s

    def to_dict(self) -> Dict:
        return {"name": self.name, "kind": self.kind,
                "release_s": self.release_s,
                "deadline_s": self.deadline_s,
                "start_s": self.start_s, "end_s": self.end_s,
                "seconds": self.seconds,
                "joules": self.joules, "grams_co2": self.grams_co2,
                "energy_usd": self.energy_usd,
                "wait_s": self.wait_s,
                "deadline_met": self.deadline_met,
                "suspensions": self.suspensions,
                "suspended_s": self.suspended_s}

    @classmethod
    def from_dict(cls, data: Mapping) -> "JobRecord":
        return cls(name=data["name"], kind=data["kind"],
                   release_s=data["release_s"],
                   deadline_s=data["deadline_s"],
                   start_s=data["start_s"], end_s=data["end_s"],
                   seconds=data["seconds"],
                   joules=data["joules"], grams_co2=data["grams_co2"],
                   energy_usd=data["energy_usd"],
                   suspensions=data.get("suspensions", 0),
                   suspended_s=data.get("suspended_s", 0.0))


@dataclass(frozen=True)
class GovernorAction:
    """One suspend/resume flip, on the day clock."""

    time: float
    job: str
    action: str                     # "suspend" | "resume"

    def to_dict(self) -> Dict:
        return {"time": self.time, "job": self.job, "action": self.action}


class CarbonLedger:
    """Per-job records plus the day's totals for one policy arm."""

    def __init__(self):
        self.records: List[JobRecord] = []
        self.actions: List[GovernorAction] = []

    def add(self, record: JobRecord) -> None:
        self.records.append(record)

    def log_action(self, time: float, job: str, action: str) -> None:
        self.actions.append(GovernorAction(time, job, action))

    # -- totals -----------------------------------------------------------

    @property
    def joules(self) -> float:
        return sum(r.joules for r in self.records)

    @property
    def grams_co2(self) -> float:
        return sum(r.grams_co2 for r in self.records)

    @property
    def energy_usd(self) -> float:
        return sum(r.energy_usd for r in self.records)

    @property
    def wait_hours(self) -> float:
        return sum(r.wait_s for r in self.records) / 3600.0

    @property
    def deadline_misses(self) -> int:
        return sum(1 for r in self.records if not r.deadline_met)

    @property
    def suspensions(self) -> int:
        return sum(r.suspensions for r in self.records)

    @property
    def suspended_s(self) -> float:
        return sum(r.suspended_s for r in self.records)

    def to_grid_impact(self) -> GridImpact:
        return GridImpact(grams_co2=self.grams_co2,
                          energy_usd=self.energy_usd)

    def summary(self) -> Dict[str, object]:
        return {
            "jobs": len(self.records),
            "joules": round(self.joules, 6),
            "grams_co2": round(self.grams_co2, 6),
            "energy_usd": round(self.energy_usd, 8),
            "wait_hours": round(self.wait_hours, 6),
            "deadline_misses": self.deadline_misses,
            "suspensions": self.suspensions,
            "suspended_s": round(self.suspended_s, 3),
            "records": [r.to_dict() for r in self.records],
            "actions": [a.to_dict() for a in self.actions],
        }
