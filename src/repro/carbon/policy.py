"""The four carbon policies, compared head-to-head.

All four see the same released-job queue on a cluster that runs one
MapReduce job at a time (the paper's clusters are batch-exclusive);
a policy decides *which* released job goes next and *when* it may
start:

* **no-wait** — FIFO at release, start immediately.  The paper's
  behaviour, and the bit-identity baseline: its runs are
  float-for-float the plain ``run_job`` runs.
* **edd** — earliest-deadline-first packing.  Same grams, but the
  deadline-safe ordering the waiting policies build on.
* **threshold** — EDD order, but hold a job until grid intensity dips
  to the day's ``threshold_pct`` percentile, never waiting past
  ``deadline - safety * estimate``.
* **suspend-resume** — start at release, but let a
  :class:`~repro.carbon.governor.CarbonGovernor` park the whole fleet
  (YARN blacklist + admin power-off) while intensity spikes, within
  the job's deadline slack.

A :class:`PolicySpec` is the serialisable knob set (one per arm in the
committed plan); :func:`make_policy` instantiates the behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..autoscale.config import DEFAULT_BOOT_S
from .jobspec import CarbonJobSpec
from .trace import SignalTrace

POLICY_KINDS = ("no-wait", "edd", "threshold", "suspend-resume")


@dataclass(frozen=True)
class PolicySpec:
    """Serialisable configuration of one scheduling arm."""

    kind: str = "no-wait"
    #: Intensity percentile above which work is deferred / suspended.
    threshold_pct: float = 60.0
    #: Deadline guard: never defer past ``deadline - safety * est``.
    safety: float = 1.2
    #: Governor tick (suspend-resume only).
    check_interval_s: float = 20.0
    #: Reboot wall-time per platform after an admin power-off.
    boot_s: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_BOOT_S))

    def __post_init__(self):
        if self.kind not in POLICY_KINDS:
            raise ValueError(f"unknown policy kind {self.kind!r} "
                             f"(have {POLICY_KINDS})")
        if not 0 <= self.threshold_pct <= 100:
            raise ValueError("threshold_pct must be in [0, 100]")
        if self.safety < 1.0:
            raise ValueError("safety must be >= 1 (estimates are not "
                             "promises)")
        if self.check_interval_s <= 0:
            raise ValueError("check_interval_s must be > 0")
        for platform, boot in self.boot_s.items():
            if boot < 0:
                raise ValueError(f"boot_s[{platform!r}] must be >= 0")

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "threshold_pct": self.threshold_pct,
                "safety": self.safety,
                "check_interval_s": self.check_interval_s,
                "boot_s": dict(self.boot_s)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "PolicySpec":
        return cls(kind=data["kind"],
                   threshold_pct=data.get("threshold_pct", 60.0),
                   safety=data.get("safety", 1.2),
                   check_interval_s=data.get("check_interval_s", 20.0),
                   boot_s=dict(data.get("boot_s", DEFAULT_BOOT_S)))


class SchedulingPolicy:
    """Pick-next and earliest-start for the deferral queue."""

    def __init__(self, spec: PolicySpec, intensity: SignalTrace):
        self.spec = spec
        self.intensity = intensity
        #: The day's intensity value at the configured percentile —
        #: computed once so every decision uses the same bar.
        self.threshold = intensity.percentile(spec.threshold_pct)

    def pick(self, released: List[CarbonJobSpec]) -> CarbonJobSpec:
        """Which released job runs next.  Default: FIFO."""
        return min(released, key=lambda j: (j.release_s, j.name))

    def earliest_start(self, job: CarbonJobSpec, now: float,
                       platform: str) -> float:
        """Earliest day-clock start for ``job``.  Default: now."""
        return now

    @property
    def governed(self) -> bool:
        """Whether runs get a suspend-resume governor attached."""
        return False


class NoWaitPolicy(SchedulingPolicy):
    """Run at release, in release order — the paper's behaviour."""


class EddPolicy(SchedulingPolicy):
    """Earliest-deadline-first packing, still starting immediately."""

    def pick(self, released: List[CarbonJobSpec]) -> CarbonJobSpec:
        return min(released,
                   key=lambda j: (j.deadline_s, j.release_s, j.name))


class ThresholdWaitPolicy(EddPolicy):
    """Defer while the grid is dirty, bounded by the deadline guard."""

    def earliest_start(self, job: CarbonJobSpec, now: float,
                       platform: str) -> float:
        latest = job.deadline_s - self.spec.safety * job.estimate(platform)
        if now >= latest or self.intensity.at(now) <= self.threshold:
            return now
        dip = self.intensity.next_at_or_below(
            self.threshold, now, horizon_s=latest - now)
        # No dip inside the deadline guard: waiting buys nothing.
        return min(latest, dip) if dip is not None else now


class SuspendResumePolicy(EddPolicy):
    """Start immediately; the in-run governor does the deferring."""

    @property
    def governed(self) -> bool:
        return True

    def boot_s(self, platform: str) -> float:
        return self.spec.boot_s.get(platform, 0.0)


_POLICIES = {
    "no-wait": NoWaitPolicy,
    "edd": EddPolicy,
    "threshold": ThresholdWaitPolicy,
    "suspend-resume": SuspendResumePolicy,
}


def make_policy(spec: PolicySpec, intensity: SignalTrace,
                kind: Optional[str] = None) -> SchedulingPolicy:
    """Instantiate the behaviour for ``spec`` (or an explicit kind)."""
    return _POLICIES[kind if kind is not None else spec.kind](
        spec, intensity)
