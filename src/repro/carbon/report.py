"""The eight-arm headline experiment: four policies x two platforms.

One committed, seeded day of deferrable TeraSort/WikiDB jobs under a
committed duck-curve intensity trace and a time-of-use tariff, served
by every policy on both clusters.  Each arm reports the same
currencies — joules, grams CO2, dollars, wait hours, deadline misses —
so the report can answer the two questions the paper could not ask:

* does deferring work to cleaner grid-seconds beat running at release
  (policy vs no-wait, per platform), and
* does the Edison's efficiency edge grow or shrink when the *grid*
  sets the price (Edison vs R620, per policy)?
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from .jobspec import CarbonJobSpec
from .ledger import CarbonLedger
from .policy import POLICY_KINDS, PolicySpec
from .scheduler import CarbonScheduler
from .trace import SignalTrace

#: Seed of the committed day (CI smoke + docs), same spirit as
#: repro.autoscale's DAY_SEED and repro.resilience's GRAY_SEED.
DAY_SEED = 20260809

#: The platforms every committed day compares.
PLATFORMS = ("edison", "dell")


@dataclass(frozen=True)
class CarbonDayPlan:
    """One committed, seeded carbon day: jobs, signals, arms."""

    name: str
    day_s: float
    intensity: SignalTrace
    price: SignalTrace
    jobs: Tuple[CarbonJobSpec, ...]
    slaves: Mapping[str, int] = field(
        default_factory=lambda: {"edison": 4, "dell": 2})
    policies: Tuple[PolicySpec, ...] = field(
        default_factory=lambda: tuple(PolicySpec(kind=k)
                                      for k in POLICY_KINDS))
    seed: int = DAY_SEED

    def __post_init__(self):
        if self.day_s <= 0:
            raise ValueError("day_s must be > 0")
        if not self.jobs:
            raise ValueError("a day needs at least one job")
        if not self.policies:
            raise ValueError("a day needs at least one policy arm")
        kinds = [p.kind for p in self.policies]
        if len(set(kinds)) != len(kinds):
            raise ValueError("duplicate policy kinds in one plan")
        for platform in PLATFORMS:
            if self.slaves.get(platform, 0) < 1:
                raise ValueError(f"need slaves[{platform!r}] >= 1")
        for job in self.jobs:
            if job.deadline_s > self.day_s:
                raise ValueError(f"job {job.name!r} deadline exceeds "
                                 "the day")

    def to_dict(self) -> Dict:
        return {"name": self.name, "day_s": self.day_s,
                "seed": self.seed,
                "intensity": self.intensity.to_dict(),
                "price": self.price.to_dict(),
                "slaves": dict(self.slaves),
                "policies": [p.to_dict() for p in self.policies],
                "jobs": [j.to_dict() for j in self.jobs]}

    @classmethod
    def from_dict(cls, data: Mapping) -> "CarbonDayPlan":
        return cls(name=data["name"], day_s=data["day_s"],
                   seed=data["seed"],
                   intensity=SignalTrace.from_dict(data["intensity"]),
                   price=SignalTrace.from_dict(data["price"]),
                   slaves=dict(data["slaves"]),
                   policies=tuple(PolicySpec.from_dict(p)
                                  for p in data["policies"]),
                   jobs=tuple(CarbonJobSpec.from_dict(j)
                              for j in data["jobs"]))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "CarbonDayPlan":
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


@dataclass(frozen=True)
class CarbonArm:
    """One (policy, platform) day, fully accounted."""

    policy: str
    platform: str
    joules: float
    grams_co2: float
    energy_usd: float
    wait_hours: float
    deadline_misses: int
    suspensions: int = 0
    suspended_s: float = 0.0
    records: Tuple[Dict, ...] = field(default_factory=tuple)
    actions: Tuple[Dict, ...] = field(default_factory=tuple)

    @property
    def label(self) -> str:
        return f"{self.policy}/{self.platform}"

    def to_dict(self) -> Dict:
        return {"policy": self.policy, "platform": self.platform,
                "joules": self.joules, "grams_co2": self.grams_co2,
                "energy_usd": self.energy_usd,
                "wait_hours": self.wait_hours,
                "deadline_misses": self.deadline_misses,
                "suspensions": self.suspensions,
                "suspended_s": self.suspended_s,
                "records": list(self.records),
                "actions": list(self.actions)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "CarbonArm":
        return cls(policy=data["policy"], platform=data["platform"],
                   joules=data["joules"], grams_co2=data["grams_co2"],
                   energy_usd=data["energy_usd"],
                   wait_hours=data["wait_hours"],
                   deadline_misses=data["deadline_misses"],
                   suspensions=data.get("suspensions", 0),
                   suspended_s=data.get("suspended_s", 0.0),
                   records=tuple(data.get("records", ())),
                   actions=tuple(data.get("actions", ())))

    @classmethod
    def from_ledger(cls, policy: str, platform: str,
                    ledger: CarbonLedger) -> "CarbonArm":
        return cls(policy=policy, platform=platform,
                   joules=ledger.joules, grams_co2=ledger.grams_co2,
                   energy_usd=ledger.energy_usd,
                   wait_hours=ledger.wait_hours,
                   deadline_misses=ledger.deadline_misses,
                   suspensions=ledger.suspensions,
                   suspended_s=ledger.suspended_s,
                   records=tuple(r.to_dict() for r in ledger.records),
                   actions=tuple(a.to_dict() for a in ledger.actions))


@dataclass(frozen=True)
class CarbonReport:
    """All arms side by side, with the dominance and platform verdicts."""

    plan_name: str
    detail: str
    arms: Tuple[CarbonArm, ...]

    def arm(self, policy: str, platform: str) -> CarbonArm:
        for arm in self.arms:
            if arm.policy == policy and arm.platform == platform:
                return arm
        raise KeyError(f"no arm for policy {policy!r} on {platform!r}")

    def platforms(self) -> List[str]:
        seen: List[str] = []
        for arm in self.arms:
            if arm.platform not in seen:
                seen.append(arm.platform)
        return seen

    def policies(self) -> List[str]:
        seen: List[str] = []
        for arm in self.arms:
            if arm.policy not in seen:
                seen.append(arm.policy)
        return seen

    def dominating_policies(self, platform: str) -> List[str]:
        """Policies that beat no-wait on grams at zero deadline misses."""
        base = self.arm("no-wait", platform)
        return [arm.policy for arm in self.arms
                if arm.platform == platform
                and arm.policy != "no-wait"
                and arm.deadline_misses == 0
                and arm.grams_co2 < base.grams_co2]

    def best_arm(self, platform: str) -> CarbonArm:
        """Lowest-gram arm with zero misses (no-wait included)."""
        eligible = [arm for arm in self.arms
                    if arm.platform == platform
                    and arm.deadline_misses == 0]
        if not eligible:
            raise ValueError(f"every {platform!r} arm missed a deadline")
        return min(eligible, key=lambda a: (a.grams_co2, a.policy))

    def grams_saved(self, platform: str) -> float:
        """Best policy's grams saved vs no-wait on ``platform``."""
        base = self.arm("no-wait", platform)
        return base.grams_co2 - self.best_arm(platform).grams_co2

    def platform_delta(self) -> Optional[Dict[str, float]]:
        """Edison-vs-R620: the grams ratio at release and at best.

        ``no_wait_ratio`` is how many times more CO2 the Dell day emits
        when both run at release; ``best_ratio`` re-asks with each
        platform on its own best zero-miss policy.  The gap between the
        two is whether carbon-aware scheduling widens or narrows the
        micro-server edge.
        """
        if not ("edison" in self.platforms()
                and "dell" in self.platforms()):
            return None
        edison_base = self.arm("no-wait", "edison").grams_co2
        dell_base = self.arm("no-wait", "dell").grams_co2
        edison_best = self.best_arm("edison").grams_co2
        dell_best = self.best_arm("dell").grams_co2
        if min(edison_base, edison_best) <= 0:
            return None
        return {"no_wait_ratio": dell_base / edison_base,
                "best_ratio": dell_best / edison_best,
                "edison_grams_saved": self.grams_saved("edison"),
                "dell_grams_saved": self.grams_saved("dell")}

    def to_dict(self) -> Dict:
        return {"plan_name": self.plan_name, "detail": self.detail,
                "arms": [arm.to_dict() for arm in self.arms],
                "dominating_policies": {
                    platform: self.dominating_policies(platform)
                    for platform in self.platforms()},
                "platform_delta": self.platform_delta()}

    @classmethod
    def from_dict(cls, data: Mapping) -> "CarbonReport":
        return cls(plan_name=data["plan_name"], detail=data["detail"],
                   arms=tuple(CarbonArm.from_dict(a)
                              for a in data["arms"]))

    def lines(self) -> List[str]:
        """The four-policy table per platform, CLI/docs-ready."""
        out = [f"Carbon day — {self.plan_name} ({self.detail})"]
        for platform in self.platforms():
            arms = [arm for arm in self.arms if arm.platform == platform]
            out.append(f"  {platform}:")
            out.append("    " + f"{'':16s}"
                       + "".join(f"{arm.policy:>16s}" for arm in arms))

            def row(name: str, fmt) -> None:
                out.append("    " + f"{name:16s}"
                           + "".join(f"{fmt(a):>16s}" for a in arms))

            row("energy", lambda a: f"{a.joules:.0f} J")
            row("grams CO2", lambda a: f"{a.grams_co2:.3f} g")
            row("electricity", lambda a: f"${a.energy_usd:.6f}")
            row("wait", lambda a: f"{a.wait_hours * 60:.1f} min")
            row("deadline misses", lambda a: f"{a.deadline_misses}")
            row("suspensions", lambda a: f"{a.suspensions}")
            dominating = self.dominating_policies(platform)
            best = self.best_arm(platform)
            saved = self.grams_saved(platform)
            base = self.arm("no-wait", platform)
            pct = (100.0 * saved / base.grams_co2
                   if base.grams_co2 > 0 else 0.0)
            if dominating:
                out.append(f"    verdict: {', '.join(dominating)} beat "
                           f"no-wait; best is {best.policy} "
                           f"(-{saved:.3f} g, -{pct:.1f}%, 0 misses)")
            else:
                out.append("    verdict: no policy beat no-wait")
        delta = self.platform_delta()
        if delta is not None:
            out.append(
                f"  Edison vs R620: the Dell day emits "
                f"{delta['no_wait_ratio']:.2f}x Edison's CO2 at release, "
                f"{delta['best_ratio']:.2f}x with each fleet on its best "
                f"policy")
        return out


# -- running the experiment ----------------------------------------------


def carbon_experiment(plan: CarbonDayPlan) -> CarbonReport:
    """Run the committed day every way and report all arms."""
    arms: List[CarbonArm] = []
    for platform in PLATFORMS:
        if platform not in plan.slaves:
            continue
        for policy in plan.policies:
            scheduler = CarbonScheduler(
                platform, plan.slaves[platform], policy,
                plan.intensity, plan.price, seed=plan.seed)
            ledger = scheduler.run_day(list(plan.jobs))
            arms.append(CarbonArm.from_ledger(policy.kind, platform,
                                              ledger))
    mean_i = plan.intensity.mean()
    return CarbonReport(
        plan_name=plan.name,
        detail=f"{plan.day_s:.0f} s day, {len(plan.jobs)} deferrable "
               f"jobs, mean grid {mean_i:.0f} {plan.intensity.unit}, "
               f"seed {plan.seed}",
        arms=tuple(arms))
