"""The deferral queue in front of YARN submission.

The paper's clusters run one MapReduce job at a time; the carbon
scheduler keeps that contract and moves the *queue* instead: released
jobs wait in front of the cluster, the policy picks which goes next
and how long it may hold out for cleaner grid-seconds, and each job
then runs in its own fresh :class:`~repro.mapreduce.JobRunner` seeded
identically across arms.  Identical seeds mean a job's duration and
joules are bit-identical whichever policy launches it — only its
*place in the day* moves, which is exactly the variable under test
(the suspend-resume arm is the one exception: parking mid-run
legitimately changes the run itself).

The day clock is plain bookkeeping: job N's run starts at day time
``start``, its local sim seconds map to ``start + t``.  Nothing here
touches a run that the no-wait policy wouldn't also do, which is what
makes the no-wait arm the off-path fidelity baseline.
"""

from __future__ import annotations

from typing import List, Optional

from ..faults import FaultInjector
from ..mapreduce.runtime import JobRunner
from .governor import CarbonGovernor
from .jobspec import CarbonJobSpec
from .ledger import CarbonLedger, JobRecord, grid_impact
from .policy import PolicySpec, SchedulingPolicy, make_policy
from .trace import SignalTrace


class CarbonScheduler:
    """Run one day of deferrable jobs under one policy on one platform."""

    def __init__(self, platform: str, slaves: int, policy: PolicySpec,
                 intensity: SignalTrace, price: SignalTrace,
                 seed: int = 20160901):
        if slaves < 1:
            raise ValueError("slaves must be >= 1")
        self.platform = platform
        self.slaves = slaves
        self.policy: SchedulingPolicy = make_policy(policy, intensity)
        self.intensity = intensity
        self.price = price
        self.seed = seed

    # -- one job ----------------------------------------------------------

    def _run_one(self, job: CarbonJobSpec, start_day_s: float,
                 ledger: CarbonLedger) -> JobRecord:
        spec, config = job.build(self.platform)
        runner = JobRunner(self.platform, self.slaves, config=config,
                           seed=self.seed)
        governor: Optional[CarbonGovernor] = None
        if self.policy.governed:
            # The governor needs the admin power states, which need an
            # injector; an empty-plan one is invisible to the run.
            FaultInjector(runner.cluster)
            governor = CarbonGovernor(runner, job, self.policy,
                                      self.intensity, start_day_s,
                                      ledger=ledger)
            governor.attach()
        report = runner.run(spec)
        impact = grid_impact(report.timeline.power_w, start_day_s,
                             self.intensity, self.price)
        return JobRecord(
            name=job.name, kind=job.kind,
            release_s=job.release_s, deadline_s=job.deadline_s,
            start_s=start_day_s, end_s=start_day_s + report.seconds,
            seconds=report.seconds, joules=report.joules,
            grams_co2=impact.grams_co2, energy_usd=impact.energy_usd,
            suspensions=governor.suspensions if governor else 0,
            suspended_s=governor.suspended_s if governor else 0.0)

    # -- the day ----------------------------------------------------------

    def run_day(self, jobs: List[CarbonJobSpec]) -> CarbonLedger:
        """Serve every job once, in policy order, on the day clock."""
        ledger = CarbonLedger()
        pending = list(jobs)
        now = 0.0
        while pending:
            released = [j for j in pending if j.release_s <= now]
            if not released:
                now = min(j.release_s for j in pending)
                continue
            job = self.policy.pick(released)
            start = max(now, self.policy.earliest_start(job, now,
                                                        self.platform))
            record = self._run_one(job, start, ledger)
            ledger.add(record)
            pending.remove(job)
            now = record.end_s
        return ledger


def run_policy_day(platform: str, slaves: int, policy: PolicySpec,
                   jobs: List[CarbonJobSpec], intensity: SignalTrace,
                   price: SignalTrace, seed: int = 20160901,
                   kind: Optional[str] = None) -> CarbonLedger:
    """Convenience wrapper: one (platform, policy) arm, one ledger."""
    if kind is not None:
        policy = PolicySpec(kind=kind, threshold_pct=policy.threshold_pct,
                            safety=policy.safety,
                            check_interval_s=policy.check_interval_s,
                            boot_s=dict(policy.boot_s))
    scheduler = CarbonScheduler(platform, slaves, policy, intensity,
                                price, seed=seed)
    return scheduler.run_day(jobs)
