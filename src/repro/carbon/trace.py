"""Grid signals on the simulation clock.

A :class:`SignalTrace` is a time-indexed scalar — carbon intensity in
gCO2/kWh or an electricity tariff in $/kWh — queryable at any simulated
second.  Two interpolation modes cover the two data sources the carbon
plane replays:

* ``step`` — the value holds from each point until the next, which is
  how published day-ahead tariffs and most grid-intensity APIs quote
  (one value per settlement block);
* ``linear`` — straight lines between points, for smooth synthetic
  shapes.

Traces serialise to/from JSON so a committed experiment carries its
grid day verbatim, and :meth:`SignalTrace.steps` renders any trace as
the piecewise-constant ``(start_s, rate)`` sequence
:func:`repro.tco.weighted_energy_rate` integrates against.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

#: Grid resolution used when a non-step trace must be rendered as
#: steps, and when scanning for threshold crossings.
DEFAULT_STEP_S = 30.0


@dataclass(frozen=True)
class SignalTrace:
    """One grid signal: sorted ``(time_s, value)`` points plus a unit."""

    name: str
    unit: str                                    # "gCO2/kWh" | "usd/kWh"
    points: Tuple[Tuple[float, float], ...]
    interpolation: str = "step"                  # "step" | "linear"
    #: When set, the trace repeats with this period (a one-day shape
    #: can score a multi-day run); when ``None`` the edge values hold.
    period_s: Optional[float] = None

    def __post_init__(self):
        if self.interpolation not in ("step", "linear"):
            raise ValueError(
                f"unknown interpolation {self.interpolation!r}")
        if not self.points:
            raise ValueError("a trace needs at least one point")
        times = [t for t, _ in self.points]
        if any(t1 <= t0 for t0, t1 in zip(times, times[1:])):
            raise ValueError("points must be strictly sorted by time")
        if any(v < 0 for _, v in self.points):
            raise ValueError("signal values must be >= 0")
        if self.period_s is not None and self.period_s <= times[-1]:
            raise ValueError("period_s must exceed the last point time")

    # -- queries ----------------------------------------------------------

    def _fold(self, time_s: float) -> float:
        if self.period_s is None:
            return time_s
        return time_s % self.period_s

    def at(self, time_s: float) -> float:
        """The signal value at simulated ``time_s``."""
        t = self._fold(time_s)
        points = self.points
        if t <= points[0][0]:
            if self.interpolation == "linear" and self.period_s is not None:
                # Wrap: interpolate from the last point across midnight.
                t0, v0 = points[-1]
                t1, v1 = points[0][0] + self.period_s, points[0][1]
                tt = t + self.period_s
                return v0 + (v1 - v0) * (tt - t0) / (t1 - t0)
            return points[0][1]
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            if t < t1:
                if self.interpolation == "step":
                    return v0
                return v0 + (v1 - v0) * (t - t0) / (t1 - t0)
        t0, v0 = points[-1]
        if self.interpolation == "linear" and self.period_s is not None:
            t1, v1 = points[0][0] + self.period_s, points[0][1]
            return v0 + (v1 - v0) * (t - t0) / (t1 - t0)
        return v0

    def span(self) -> Tuple[float, float]:
        """The native domain: one period, or first..last point."""
        if self.period_s is not None:
            return 0.0, self.period_s
        return self.points[0][0], self.points[-1][0]

    def percentile(self, pct: float, step_s: float = DEFAULT_STEP_S
                   ) -> float:
        """Time-weighted percentile of the signal over its span.

        Sampled on a uniform grid so a short price spike counts by its
        duration, not by how many points describe it — which is what a
        "defer while above the 60th percentile" policy means.
        """
        if not 0 <= pct <= 100:
            raise ValueError("pct must be in [0, 100]")
        start, end = self.span()
        if end <= start:
            return self.points[0][1]
        n = max(2, int(math.ceil((end - start) / step_s)))
        values = sorted(self.at(start + (end - start) * i / n)
                        for i in range(n))
        index = min(len(values) - 1,
                    max(0, math.ceil(pct / 100.0 * len(values)) - 1))
        return values[index]

    def next_at_or_below(self, threshold: float, time_s: float,
                         horizon_s: float,
                         step_s: float = DEFAULT_STEP_S) -> Optional[float]:
        """Earliest ``t >= time_s`` (within the horizon) with
        ``at(t) <= threshold``, or ``None`` if the signal never dips."""
        if horizon_s < 0:
            raise ValueError("horizon_s must be >= 0")
        t = time_s
        end = time_s + horizon_s
        while t <= end:
            if self.at(t) <= threshold:
                return t
            t += step_s
        return None

    def steps(self, start_s: float, end_s: float,
              step_s: float = DEFAULT_STEP_S) -> List[Tuple[float, float]]:
        """Piecewise-constant rendering of ``[start_s, end_s]``.

        For a non-periodic step trace this is exact (the trace's own
        points, clipped); anything smoother or periodic is resampled on
        a ``step_s`` grid.  The first step always starts at ``start_s``
        so :func:`repro.tco.weighted_energy_rate` covers the whole
        window.
        """
        if end_s < start_s:
            raise ValueError("end_s must be >= start_s")
        exact = self.period_s is None or (start_s >= 0
                                          and end_s <= self.period_s)
        if self.interpolation == "step" and exact:
            out = [(start_s, self.at(start_s))]
            for t, v in self.points:
                if start_s < t < end_s:
                    out.append((t, v))
            return out
        out = []
        t = start_s
        while t < end_s:
            out.append((t, self.at(t)))
            t += step_s
        return out or [(start_s, self.at(start_s))]

    def mean(self, step_s: float = DEFAULT_STEP_S) -> float:
        """Time-weighted mean over the trace's span."""
        start, end = self.span()
        if end <= start:
            return self.points[0][1]
        n = max(2, int(math.ceil((end - start) / step_s)))
        return sum(self.at(start + (end - start) * i / n)
                   for i in range(n)) / n

    # -- (de)serialisation ------------------------------------------------

    def to_dict(self) -> Dict:
        return {"name": self.name, "unit": self.unit,
                "points": [[t, v] for t, v in self.points],
                "interpolation": self.interpolation,
                "period_s": self.period_s}

    @classmethod
    def from_dict(cls, data: Mapping) -> "SignalTrace":
        return cls(name=data["name"], unit=data["unit"],
                   points=tuple((float(t), float(v))
                                for t, v in data["points"]),
                   interpolation=data.get("interpolation", "step"),
                   period_s=data.get("period_s"))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "SignalTrace":
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


# -- synthetic shapes -----------------------------------------------------


def solar_dip_intensity(day_s: float, high: float = 520.0,
                        dip: float = 160.0, peak: float = 560.0
                        ) -> SignalTrace:
    """A classic duck-curve day in gCO2/kWh.

    Carbon-heavy morning, a deep midday solar dip, then the evening
    ramp when the sun sets into peak demand — the shape that makes
    *when* a deferrable job runs worth grams.
    """
    if day_s <= 0:
        raise ValueError("day_s must be > 0")
    frac = [(0.00, high * 0.92), (0.15, high), (0.30, (high + dip) / 2),
            (0.40, dip), (0.60, dip * 1.25), (0.72, (high + peak) / 2),
            (0.82, peak), (0.95, high * 0.9)]
    return SignalTrace(
        name="solar-dip", unit="gCO2/kWh",
        points=tuple((f * day_s, v) for f, v in frac),
        interpolation="step", period_s=day_s)


def evening_peak_price(day_s: float, off_peak: float = 0.08,
                       shoulder: float = 0.12, peak: float = 0.26
                       ) -> SignalTrace:
    """A three-band time-of-use tariff in $/kWh with an evening peak."""
    if day_s <= 0:
        raise ValueError("day_s must be > 0")
    if not 0 <= off_peak <= shoulder <= peak:
        raise ValueError("need 0 <= off_peak <= shoulder <= peak")
    points = ((0.0, off_peak), (0.30 * day_s, shoulder),
              (0.70 * day_s, peak), (0.90 * day_s, shoulder))
    return SignalTrace(name="evening-peak", unit="usd/kWh",
                       points=points, interpolation="step",
                       period_s=day_s)
