"""Causal request tracing: trees, critical paths, energy, exemplars.

The tracer (``repro.trace``) emits flat span streams; this package
folds them back into the causal trees they came from and answers the
questions the paper's tables ask per *request* rather than per tier:

* :func:`build_forest` — group identified spans into per-connection /
  per-job trees (:class:`SpanForest` of :class:`SpanNode`).
* :func:`critical_path` — partition a tree root's wall time into
  working ("self") and waiting ("blocked") segments;
  :func:`decomposition_from_critical_paths` re-derives the Table 7
  delay decomposition from tree structure alone.
* :func:`attribute_energy` — integrate the power meter's per-node
  trace over each span, splitting marginal watts across resident
  spans so joules conserve per node.
* :class:`ExemplarStore` — deterministic worst-per-bucket trace links
  for telemetry latency histograms.
* :mod:`~repro.causality.flame` — collapsed stacks and self-contained
  HTML flame graphs, in wall time or attributed energy.

Everything here is pure post-processing over a
:class:`~repro.trace.TraceLog` (live or re-read from JSONL/CSV): it
runs zero code inside the simulation and cannot perturb it.
"""

from ..trace.context import SpanContext
from .critical import (CriticalPath, Segment, critical_path,
                       decomposition_from_critical_paths, self_times)
from .energy import (EnergyAttribution, NodeEnergy, attribute_energy,
                     node_power_samples, pstate_transitions)
from .exemplars import Exemplar, ExemplarStore
from .flame import (collapse, energy_stacks, latency_stacks, render_html,
                    write_collapsed, write_flame_html)
from .forest import SpanForest, SpanNode, build_forest

__all__ = [
    "SpanContext",
    "SpanForest",
    "SpanNode",
    "build_forest",
    "CriticalPath",
    "Segment",
    "critical_path",
    "self_times",
    "decomposition_from_critical_paths",
    "EnergyAttribution",
    "NodeEnergy",
    "attribute_energy",
    "node_power_samples",
    "pstate_transitions",
    "Exemplar",
    "ExemplarStore",
    "collapse",
    "latency_stacks",
    "energy_stacks",
    "render_html",
    "write_collapsed",
    "write_flame_html",
]
