"""Critical-path extraction over causal span trees.

Given one tree (a request, a connection, a job), the critical path is
the single chain of spans that accounts for every instant of the root's
wall time: at each instant, the deepest span covering it.  The walk
clips children to their parent's window, attributes gaps between
children to the parent, and recurses — so the resulting segments
partition ``[root.start, root.end)`` exactly.

Segment kinds:

* ``"self"`` — a leaf span was running: actual work at the finest
  traced grain (CPU burst, disk read, network transfer inside a leg).
* ``"blocked"`` — a non-leaf span's own time between/around its
  children: coordination, queueing and network gaps where the parent
  was waiting rather than working.

Re-deriving Table 7 from the trees alone
(:func:`decomposition_from_critical_paths`) is the correctness oracle:
it must agree with the call-log computation and with the flat-span
:func:`~repro.trace.delay_decomposition_from_trace` — except it never
looks at the ``req`` correlation attrs, only at parent/child edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..trace.analysis import TraceDecomposition
from ..trace.events import TraceLog
from .forest import SpanForest, SpanNode, build_forest


@dataclass(frozen=True)
class Segment:
    """One interval of a critical path, owned by one span."""

    kind: str          # "self" (leaf working) or "blocked" (parent waiting)
    name: str
    node: str
    start: float
    end: float
    span_id: int

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CriticalPath:
    """The exact partition of one tree root's wall time."""

    root: SpanNode
    segments: List[Segment]

    @property
    def total_s(self) -> float:
        return self.root.dur

    def by_name(self) -> Dict[str, float]:
        """Seconds attributed to each span name along the path."""
        totals: Dict[str, float] = {}
        for seg in self.segments:
            totals[seg.name] = totals.get(seg.name, 0.0) + seg.duration
        return totals

    def by_kind(self) -> Dict[str, float]:
        """Seconds split into working ("self") vs waiting ("blocked")."""
        totals: Dict[str, float] = {}
        for seg in self.segments:
            totals[seg.kind] = totals.get(seg.kind, 0.0) + seg.duration
        return totals

    def longest(self, n: int = 5) -> List[Segment]:
        """The ``n`` longest segments, longest first (ties by start)."""
        return sorted(self.segments,
                      key=lambda s: (-s.duration, s.start))[:n]


def critical_path(root: SpanNode) -> CriticalPath:
    """Walk ``root``'s tree into contiguous critical-path segments."""
    segments: List[Segment] = []
    _descend(root, root.start, root.end, segments)
    return CriticalPath(root=root, segments=segments)


def _descend(node: SpanNode, lo: float, hi: float,
             out: List[Segment]) -> None:
    """Attribute ``[lo, hi)`` to ``node`` and its children."""
    kind = "blocked" if node.children else "self"
    cursor = lo
    for child in node.children:
        start = max(child.start, cursor)
        end = min(child.end, hi)
        if end <= start:
            continue     # outside the window or covered by a sibling
        if start > cursor:
            out.append(Segment(kind, node.name, node.node, cursor, start,
                               node.span_id))
        _descend(child, start, end, out)
        cursor = end
        if cursor >= hi:
            break
    if cursor < hi:
        out.append(Segment(kind, node.name, node.node, cursor, hi,
                           node.span_id))


def self_times(root: SpanNode) -> Dict[int, float]:
    """Per-span self time: duration not covered by own children.

    The flame-graph weight — summed over a tree it equals the root's
    duration (children clip to the parent's window).
    """
    totals: Dict[int, float] = {}
    for node in root.walk():
        covered = 0.0
        cursor = node.start
        for child in node.children:
            start = max(child.start, cursor)
            end = min(child.end, node.end)
            if end > start:
                covered += end - start
                cursor = end
        totals[node.span_id] = max(0.0, node.dur - covered)
    return totals


def decomposition_from_critical_paths(
        log: TraceLog, after: float = 0.0,
        forest: Optional[SpanForest] = None) -> TraceDecomposition:
    """Re-derive the Table 7 decomposition from causal trees alone.

    Unlike :func:`~repro.trace.delay_decomposition_from_trace`, no
    correlation attributes are consulted: requests are identified as
    ``request`` spans, their cache/db legs as the *children* of those
    spans, and connects as ``connect`` spans — pure structure.
    """
    if forest is None:
        forest = build_forest(log, categories=("web", "net"))
    requests: List[SpanNode] = []
    connects: List[float] = []
    for node in forest.walk():
        if node.name == "connect":
            if node.start >= after:
                connects.append(node.dur)
        elif (node.name == "request" and node.start >= after
                and node.event.attrs.get("status") == 200):
            requests.append(node)
    if not requests:
        raise ValueError("forest holds no completed request spans "
                         "in the window")
    cache_total = 0.0
    db_times: List[float] = []
    total = 0.0
    for req in requests:
        total += req.dur
        for child in req.children:
            if child.name == "cache":
                cache_total += child.dur
            elif child.name == "db":
                db_times.append(child.dur)
    n = len(requests)
    return TraceDecomposition(
        requests=n,
        db_delay_s=sum(db_times) / len(db_times) if db_times else 0.0,
        cache_delay_s=cache_total / n,
        total_delay_s=total / n,
        connect_delay_s=sum(connects) / len(connects) if connects else 0.0,
    )
