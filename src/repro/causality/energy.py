"""Per-span energy attribution from the power meter's trace.

The :class:`~repro.energy.PowerMeter` samples each server's watts and
emits them as per-node ``*.node_power_w`` counters when tracing is on.
This module integrates that power trace over each causal span's
``[start, end)`` on its node, splitting the *marginal* watts (above the
node's idle baseline) evenly across the spans resident at each instant
— so every request and every task attempt gets a joules figure, and
the figures conserve: per node,

    baseline_j + unattributed_j + sum(by_span) == metered_j

holds by construction (the elementary intervals partition the metering
window and every interval's energy lands in exactly one bucket), which
the causality smoke checks to 0.1 % on committed seeded runs.

"Resident" means the *deepest* active span of the node's causal trees:
while a request span's db leg runs on the db node, the web node's
request span itself is resident on the web node; a parent and its
same-node child never double-count.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..trace.events import TraceLog
from .forest import SpanForest, build_forest

#: Per-node power counters end with this suffix (see PowerMeter.sample).
NODE_POWER_SUFFIX = ".node_power_w"

#: DVFS transition instants (see repro.dvfs.DvfsPlane): the governor
#: stamps one per P-state change *and* forces a meter sample at the
#: same instant, so the sampled power trace integrated below carries an
#: edge exactly at the transition — attribution prices the active
#: P-state without smearing the step across a sampling interval.
PSTATE_EVENT = "dvfs.pstate"


def pstate_transitions(log: Iterable) -> Dict[str, List[Tuple[float, int]]]:
    """Per-node ``(t, pstate_index)`` transition marks from the trace.

    Empty for runs without a DVFS governor; used by the DVFS report and
    tests to check that per-span attribution brackets every transition
    with a metered power edge.
    """
    marks: Dict[str, List[Tuple[float, int]]] = {}
    for event in log:
        if event.name == PSTATE_EVENT and event.node:
            marks.setdefault(event.node, []).append(
                (event.ts, int(event.attrs.get("index", 0))))
    for series in marks.values():
        series.sort(key=lambda ti: ti[0])
    return marks


@dataclass
class NodeEnergy:
    """Energy account of one metered node over the trace window."""

    node: str
    metered_j: float = 0.0        # trapezoidal integral of the samples
    baseline_j: float = 0.0       # idle-floor watts (shared overhead)
    unattributed_j: float = 0.0   # marginal watts with no resident span
    by_span: Dict[int, float] = field(default_factory=dict)

    @property
    def attributed_j(self) -> float:
        return sum(self.by_span.values())

    @property
    def conservation_error_j(self) -> float:
        """Metered minus accounted — ~0 up to float summation dust."""
        return self.metered_j - (self.baseline_j + self.unattributed_j
                                 + self.attributed_j)

    @property
    def conservation_error_rel(self) -> float:
        if self.metered_j == 0.0:
            return 0.0
        return abs(self.conservation_error_j) / self.metered_j


@dataclass
class EnergyAttribution:
    """Per-node accounts plus span-level joules across the cluster."""

    nodes: Dict[str, NodeEnergy]

    def joules_of(self, span_id: int) -> float:
        """Joules attributed to one span (0.0 when it never resided)."""
        return sum(acct.by_span.get(span_id, 0.0)
                   for acct in self.nodes.values())

    def by_trace(self, forest: SpanForest) -> Dict[int, float]:
        """Total joules per causal tree (request / connection / job)."""
        totals: Dict[int, float] = {}
        owner: Dict[int, int] = {}
        for root in forest.roots:
            for node in root.walk():
                owner[node.span_id] = root.trace_id
        for acct in self.nodes.values():
            for span_id, joules in acct.by_span.items():
                trace_id = owner.get(span_id)
                if trace_id is not None:
                    totals[trace_id] = totals.get(trace_id, 0.0) + joules
        return totals

    def total_metered_j(self) -> float:
        return sum(acct.metered_j for acct in self.nodes.values())


def node_power_samples(log: Iterable) -> Dict[str, List[Tuple[float, float]]]:
    """Per-node (t, watts) samples from the meter's trace counters."""
    samples: Dict[str, List[Tuple[float, float]]] = {}
    for event in log:
        if (event.phase == "C" and event.node
                and event.name.endswith(NODE_POWER_SUFFIX)):
            samples.setdefault(event.node, []).append(
                (event.ts, float(event.attrs.get("value", 0.0))))
    for series in samples.values():
        series.sort(key=lambda tw: tw[0])
    return samples


def attribute_energy(log: TraceLog,
                     idle_w: Optional[Dict[str, float]] = None,
                     forest: Optional[SpanForest] = None,
                     ) -> EnergyAttribution:
    """Attribute every metered node's joules across its resident spans.

    ``idle_w`` maps node name to baseline watts (typically
    ``server.spec.power.min_w``); omitted, each node's baseline is
    estimated as its minimum observed sample — exact on runs with any
    idle moment, conservative otherwise.  ``forest`` may be passed to
    reuse an already-built one; by default the forest spans every
    category so same-node parent/child de-duplication sees all spans.
    """
    if forest is None:
        forest = build_forest(log)
    samples = node_power_samples(log)
    # parent chains for the deepest-resident test, restricted per node.
    parent_of = {node.span_id: node.parent_id for node in forest.walk()}
    nodes: Dict[str, NodeEnergy] = {}
    for name, series in samples.items():
        acct = NodeEnergy(node=name)
        nodes[name] = acct
        if len(series) < 2:
            continue
        t0, t1 = series[0][0], series[-1][0]
        acct.metered_j = _trapezoid(series)
        baseline_w = (idle_w.get(name) if idle_w is not None else None)
        if baseline_w is None:
            baseline_w = min(w for _, w in series)
        spans = [
            (max(n.start, t0), min(n.end, t1), n.span_id)
            for n in forest.walk()
            if n.node == name and n.span_id
            and n.end > t0 and n.start < t1
        ]
        _attribute_node(acct, series, spans, baseline_w, parent_of)
    return EnergyAttribution(nodes=nodes)


def _trapezoid(series: List[Tuple[float, float]]) -> float:
    total = 0.0
    for (ta, wa), (tb, wb) in zip(series, series[1:]):
        total += 0.5 * (wa + wb) * (tb - ta)
    return total


def _attribute_node(acct: NodeEnergy, series: List[Tuple[float, float]],
                    spans: List[Tuple[float, float, int]],
                    baseline_w: float,
                    parent_of: Dict[int, int]) -> None:
    """Sweep the node's elementary intervals, splitting each one's energy."""
    times = [t for t, _ in series]
    t0, t1 = times[0], times[-1]
    boundaries = sorted({t0, t1}
                        | {s for s, _, _ in spans}
                        | {e for _, e, _ in spans}
                        | set(times))
    starts = sorted(spans)                      # by clipped start
    ends_heap: List[Tuple[float, int]] = []     # (end, span_id) of active
    active: Dict[int, float] = {}               # span_id -> clipped end
    next_start = 0
    sample_i = 0
    for a, b in zip(boundaries, boundaries[1:]):
        # activate spans starting at a; retire spans ending at or before a
        while next_start < len(starts) and starts[next_start][0] <= a:
            s, e, sid = starts[next_start]
            next_start += 1
            if e > a:
                active[sid] = e
                insort(ends_heap, (e, sid))
        while ends_heap and ends_heap[0][0] <= a:
            _, sid = ends_heap.pop(0)
            if active.get(sid, 0.0) <= a:
                active.pop(sid, None)
        # power endpoints by linear interpolation between samples
        while sample_i + 1 < len(times) and times[sample_i + 1] <= a:
            sample_i += 1
        energy = 0.5 * (_interp(series, sample_i, a)
                        + _interp(series, sample_i, b)) * (b - a)
        base = min(energy, baseline_w * (b - a))
        acct.baseline_j += base
        marginal = energy - base
        if marginal <= 0.0:
            continue
        residents = _deepest(active, parent_of)
        if not residents:
            acct.unattributed_j += marginal
            continue
        share = marginal / len(residents)
        for sid in residents:
            acct.by_span[sid] = acct.by_span.get(sid, 0.0) + share


def _interp(series: List[Tuple[float, float]], i: int, t: float) -> float:
    """Linear interpolation of watts at ``t``, with ``series[i].t <= t``."""
    ta, wa = series[i]
    if i + 1 >= len(series) or t <= ta:
        return wa
    tb, wb = series[i + 1]
    if t >= tb:
        return wb
    return wa + (wb - wa) * (t - ta) / (tb - ta)


def _deepest(active: Dict[int, float],
             parent_of: Dict[int, int]) -> List[int]:
    """Active spans with no active descendant (same node) — the residents."""
    if len(active) <= 1:
        return list(active)
    has_active_descendant = set()
    for sid in active:
        parent = parent_of.get(sid, 0)
        while parent:
            if parent in active:
                has_active_descendant.add(parent)
            parent = parent_of.get(parent, 0)
    return [sid for sid in active if sid not in has_active_descendant]
