"""Exemplar-linked histograms: from a latency bucket to a trace.

OpenMetrics-style exemplars attach a representative trace id to each
histogram bucket, so an SLO report's "p95 regressed" line links to an
actual causal tree that exhibits the regression.  The store is fully
deterministic and touches no RNG: each log-spaced bucket keeps the
*worst* (largest-value) observation it has seen, first-seen winning
ties — so same seed always yields byte-identical exemplars, and
enabling the store can never perturb the simulation's random streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..trace.metrics import Histogram


@dataclass(frozen=True)
class Exemplar:
    """One bucket's representative observation."""

    value: float
    trace_id: int
    bucket: int

    def to_dict(self) -> Dict[str, object]:
        return {"value": self.value, "trace_id": self.trace_id,
                "bucket": self.bucket}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Exemplar":
        return cls(value=float(data["value"]),
                   trace_id=int(data["trace_id"]),
                   bucket=int(data["bucket"]))


class ExemplarStore:
    """Keeps the worst trace-linked observation per histogram bucket.

    Bucketing matches :class:`~repro.trace.metrics.Histogram` (same
    growth/floor defaults), so exemplars line up one-to-one with the
    telemetry latency histogram's buckets.
    """

    def __init__(self, growth: float = 1.08, floor: float = 1e-9):
        # Reuse Histogram purely for its bucket arithmetic.
        self._buckets = Histogram("exemplars", growth=growth, floor=floor)
        self._by_bucket: Dict[int, Exemplar] = {}

    def observe(self, value: float, trace_id: int) -> None:
        """Consider one observation; kept only if it beats its bucket."""
        if trace_id <= 0:
            return
        index = self._buckets._bucket(value)
        cur = self._by_bucket.get(index)
        if cur is None or value > cur.value:
            self._by_bucket[index] = Exemplar(value=value,
                                              trace_id=trace_id,
                                              bucket=index)

    def __len__(self) -> int:
        return len(self._by_bucket)

    def exemplars(self) -> List[Exemplar]:
        """All kept exemplars, ordered by bucket (ascending value)."""
        return [self._by_bucket[i] for i in sorted(self._by_bucket)]

    def worst(self) -> Optional[Exemplar]:
        """The largest-value exemplar overall (the trace to look at)."""
        if not self._by_bucket:
            return None
        return max(self._by_bucket.values(),
                   key=lambda ex: (ex.value, -ex.bucket))

    def to_dict(self) -> List[Dict[str, object]]:
        return [ex.to_dict() for ex in self.exemplars()]

    @classmethod
    def from_dict(cls, data: List[Dict[str, object]],
                  growth: float = 1.08,
                  floor: float = 1e-9) -> "ExemplarStore":
        store = cls(growth=growth, floor=floor)
        for item in data:
            ex = Exemplar.from_dict(item)
            store._by_bucket[ex.bucket] = ex
        return store
