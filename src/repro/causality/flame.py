"""Flame graphs over causal trees: latency and energy.

Two outputs, both deterministic and dependency-free:

* collapsed-stack text (``stack;frames count`` per line) — the
  interchange format every flame-graph tool reads, so the traces can be
  fed to Brendan Gregg's ``flamegraph.pl`` or speedscope unchanged;
* a self-contained HTML file embedding an SVG flame graph — no
  JavaScript, no external assets; hover tooltips via ``<title>``.

Frame weights come from :func:`~repro.causality.critical.self_times`
(microseconds of wall time the span did not cede to children) or, for
energy flames, from :func:`~repro.causality.energy.attribute_energy`'s
per-span joules (rendered in millijoules).  Frame colors hash the
frame name (CRC-32), so the same span name is always the same color.
"""

from __future__ import annotations

import html
import zlib
from typing import Dict, List, Optional, Tuple

from .critical import self_times
from .forest import SpanForest, SpanNode

#: Weight units: collapsed-stack counts must be integers, so weights
#: are scaled before rounding.  Time uses microseconds, energy uses
#: microjoules — both fine-grained enough that rounding loses < 1e-6
#: of any span that matters.
TIME_SCALE = 1e6      # seconds -> microseconds
ENERGY_SCALE = 1e6    # joules  -> microjoules


def frame_label(node: SpanNode) -> str:
    """The flame-graph frame for one span: ``name@node`` (or name)."""
    return f"{node.name}@{node.node}" if node.node else node.name


def collapse(forest: SpanForest,
             weights: Optional[Dict[int, float]] = None,
             scale: float = TIME_SCALE) -> Dict[str, int]:
    """Fold the forest into collapsed stacks with integer weights.

    With ``weights`` omitted, each span weighs its critical-path self
    time (seconds, scaled to µs); pass ``attribution.by_span``-style
    joules (and ``scale=ENERGY_SCALE``) for an energy flame.  Identical
    stacks across trees merge by summation, which is what makes the
    graph a profile rather than a timeline.
    """
    stacks: Dict[str, int] = {}
    for root in forest.roots:
        per_span = weights if weights is not None else self_times(root)
        _fold(root, [], per_span, scale, stacks)
    return {stack: value for stack, value in stacks.items() if value > 0}


def _fold(node: SpanNode, prefix: List[str],
          per_span: Dict[int, float], scale: float,
          out: Dict[str, int]) -> None:
    frames = prefix + [frame_label(node)]
    weight = int(round(per_span.get(node.span_id, 0.0) * scale))
    if weight > 0:
        stack = ";".join(frames)
        out[stack] = out.get(stack, 0) + weight
    for child in node.children:
        _fold(child, frames, per_span, scale, out)


def write_collapsed(path: str, stacks: Dict[str, int]) -> None:
    """Write ``stack count`` lines, sorted for stable diffs."""
    with open(path, "w", encoding="utf-8") as fh:
        for stack in sorted(stacks):
            fh.write(f"{stack} {stacks[stack]}\n")


# --------------------------------------------------------------------
# Self-contained SVG/HTML rendering
# --------------------------------------------------------------------

_WIDTH = 1000
_ROW_H = 18
_MIN_W = 0.5          # rects narrower than this many px are dropped


class _Frame:
    __slots__ = ("name", "self_value", "children")

    def __init__(self, name: str):
        self.name = name
        self.self_value = 0
        self.children: Dict[str, "_Frame"] = {}

    @property
    def total(self) -> int:
        return self.self_value + sum(c.total for c in self.children.values())


def _merge(stacks: Dict[str, int]) -> _Frame:
    root = _Frame("all")
    for stack, value in stacks.items():
        frame = root
        for name in stack.split(";"):
            frame = frame.children.setdefault(name, _Frame(name))
        frame.self_value += value
    return root


def _color(name: str) -> str:
    """Deterministic warm color per frame name (no RNG)."""
    h = zlib.crc32(name.encode("utf-8"))
    r = 205 + (h & 0x1F)              # 205..236
    g = 90 + ((h >> 5) & 0x7F)        # 90..217
    b = (h >> 12) & 0x37              # 0..55
    return f"rgb({r},{g},{b})"


def _depth(frame: _Frame) -> int:
    if not frame.children:
        return 1
    return 1 + max(_depth(c) for c in frame.children.values())


def render_html(stacks: Dict[str, int], title: str = "Flame graph",
                unit: str = "µs") -> str:
    """Render collapsed stacks into one standalone HTML document."""
    root = _merge(stacks)
    total = root.total
    if total <= 0:
        body = "<p>No samples.</p>"
        height = _ROW_H
    else:
        rows = _depth(root)
        height = rows * _ROW_H
        rects: List[str] = []
        _layout(root, 0.0, float(_WIDTH), 0, height, total, unit, rects)
        body = (f'<svg width="{_WIDTH}" height="{height}" '
                f'xmlns="http://www.w3.org/2000/svg" '
                f'font-family="monospace" font-size="11">'
                + "".join(rects) + "</svg>")
    safe_title = html.escape(title)
    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>{safe_title}</title>"
        "<style>body{font-family:monospace;background:#fff}"
        "svg rect{stroke:#fff;stroke-width:0.5}"
        "svg text{pointer-events:none}</style></head>\n"
        f"<body><h3>{safe_title}</h3>\n{body}\n"
        f"<p>total: {total} {html.escape(unit)}</p></body></html>\n"
    )


def _layout(frame: _Frame, x: float, width: float, depth: int,
            height: int, total: int, unit: str,
            out: List[str]) -> None:
    y = height - (depth + 1) * _ROW_H
    if width >= _MIN_W:
        pct = 100.0 * frame.total / total
        label = html.escape(frame.name)
        tip = (f"{label}: {frame.total} {html.escape(unit)} "
               f"({pct:.2f}%)")
        out.append(
            f'<g><title>{tip}</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{width:.2f}" '
            f'height="{_ROW_H - 1}" fill="{_color(frame.name)}"/>')
        if width > 35:
            chars = max(1, int(width / 7) - 1)
            out.append(f'<text x="{x + 3:.2f}" y="{y + 13}">'
                       f'{html.escape(frame.name[:chars])}</text>')
        out.append("</g>")
    cursor = x
    for name in sorted(frame.children):
        child = frame.children[name]
        child_w = width * child.total / frame.total
        _layout(child, cursor, child_w, depth + 1, height, total, unit, out)
        cursor += child_w


def write_flame_html(path: str, stacks: Dict[str, int],
                     title: str = "Flame graph",
                     unit: str = "µs") -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_html(stacks, title=title, unit=unit))


def latency_stacks(forest: SpanForest) -> Dict[str, int]:
    """Collapsed stacks weighted by critical-path self time (µs)."""
    return collapse(forest, weights=None, scale=TIME_SCALE)


def energy_stacks(forest: SpanForest,
                  by_span: Dict[int, float]) -> Dict[str, int]:
    """Collapsed stacks weighted by attributed joules (µJ)."""
    return collapse(forest, weights=by_span, scale=ENERGY_SCALE)


def flame_tuple(forest: SpanForest,
                by_span: Optional[Dict[int, float]] = None
                ) -> Tuple[Dict[str, int], str]:
    """(stacks, unit) for either flavor — convenience for the CLI."""
    if by_span is None:
        return latency_stacks(forest), "µs"
    return energy_stacks(forest, by_span), "µJ"
