"""Folding a flat span stream back into causal trees.

The tracer emits spans append-only; with span identity
(:class:`~repro.trace.SpanContext`) each span carries its
trace/span/parent ids, so an exported log — or a live one — can be
folded back into the forest of causal trees it came from: one tree per
client connection, one per MapReduce job.  Spans without identity
(``span_id == 0``, e.g. legacy kernel spans) are ignored; spans whose
parent never made it into the log (ring-buffer eviction, category
filters) are kept as extra roots and counted in
:attr:`SpanForest.orphans`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from ..trace.events import TraceEvent, TraceLog


@dataclass
class SpanNode:
    """One span in a causal tree, with its resolved children."""

    event: TraceEvent
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def trace_id(self) -> int:
        return self.event.trace_id

    @property
    def span_id(self) -> int:
        return self.event.span_id

    @property
    def parent_id(self) -> int:
        return self.event.parent_id

    @property
    def name(self) -> str:
        return self.event.name

    @property
    def node(self) -> str:
        return self.event.node

    @property
    def start(self) -> float:
        return self.event.ts

    @property
    def end(self) -> float:
        return self.event.end

    @property
    def dur(self) -> float:
        return self.event.dur

    @property
    def aborted(self) -> Optional[str]:
        """The fault kind that cut this span short, or None."""
        return self.event.attrs.get("aborted")

    def walk(self) -> Iterator["SpanNode"]:
        """Pre-order traversal of this subtree (self first)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanNode({self.name!r}, span={self.span_id}, "
                f"children={len(self.children)})")


@dataclass
class SpanForest:
    """Every causal tree recovered from one trace log."""

    roots: List[SpanNode]
    by_id: Dict[int, SpanNode]
    #: Nodes whose parent span is missing from the log; they are also
    #: present in :attr:`roots` so walks still cover them.
    orphans: List[SpanNode]

    def walk(self) -> Iterator[SpanNode]:
        for root in self.roots:
            yield from root.walk()

    def tree(self, trace_id: int) -> Optional[SpanNode]:
        """The true root (parent_id 0) of one trace, if present."""
        for root in self.roots:
            if root.trace_id == trace_id and root.parent_id == 0:
                return root
        return None

    def trees(self) -> Dict[int, List[SpanNode]]:
        """Roots grouped by trace_id (orphaned subtrees included)."""
        grouped: Dict[int, List[SpanNode]] = {}
        for root in self.roots:
            grouped.setdefault(root.trace_id, []).append(root)
        return grouped

    def ancestors(self, span_id: int) -> List[SpanNode]:
        """Path from ``span_id``'s parent up to its reachable root."""
        path = []
        node = self.by_id.get(span_id)
        while node is not None and node.parent_id:
            node = self.by_id.get(node.parent_id)
            if node is None:
                break
            path.append(node)
        return path

    def spans(self, name: Optional[str] = None) -> List[SpanNode]:
        """All nodes in the forest, optionally filtered by span name."""
        return [n for n in self.walk() if name is None or n.name == name]


def build_forest(log: Iterable[TraceEvent],
                 categories: Optional[Iterable[str]] = None) -> SpanForest:
    """Fold identified spans of ``log`` into a :class:`SpanForest`.

    ``log`` is any iterable of events (a :class:`TraceLog` included);
    only phase-``X`` spans with a nonzero span_id participate.
    ``categories`` optionally narrows which span categories join the
    forest (power counters etc. never do).
    """
    wanted = frozenset(categories) if categories is not None else None
    by_id: Dict[int, SpanNode] = {}
    ordered: List[SpanNode] = []
    for event in log:
        if event.phase != "X" or not event.span_id:
            continue
        if wanted is not None and event.category not in wanted:
            continue
        node = SpanNode(event)
        # Last write wins on duplicate ids (should not happen; a
        # truncated ring buffer can at worst re-import one overlap).
        by_id[event.span_id] = node
        ordered.append(node)
    roots: List[SpanNode] = []
    orphans: List[SpanNode] = []
    for node in ordered:
        if by_id.get(node.span_id) is not node:
            continue                      # superseded duplicate
        if node.parent_id and node.parent_id in by_id:
            by_id[node.parent_id].children.append(node)
        else:
            roots.append(node)
            if node.parent_id:
                orphans.append(node)
    key = (lambda n: (n.start, n.span_id))
    roots.sort(key=key)
    for node in by_id.values():
        node.children.sort(key=key)
    return SpanForest(roots=roots, by_id=by_id, orphans=orphans)
