"""Command-line interface: run any of the paper's experiments directly.

Examples
--------
::

    python -m repro web --platform edison --concurrency 512
    python -m repro job wordcount --platform dell --slaves 2
    python -m repro table8 --jobs wordcount pi
    python -m repro table10
    python -m repro microbench
    python -m repro histogram --platform dell
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .cluster import Cluster
from .core import paperdata as paper
from .core.capacity import replacement_estimate
from .core.report import format_table, paper_vs_measured
from .hardware import DELL_R620, EDISON, make_server
from .mapreduce import JOB_FACTORIES, TABLE8_JOBS, JobRunner, run_job
from .microbench import run_dd, run_dhrystone, run_ioping, run_iperf, \
    run_ping, run_sysbench_cpu, run_sysbench_memory
from .sim import Simulation
from .tco import savings_fraction, table10
from .trace import Tracer, write_chrome_trace, write_csv, write_jsonl
from .web import WebServiceDeployment, WebWorkload, delay_distribution, \
    measure_delay_decomposition


def _load_fault_plan(args):
    """The FaultPlan named by ``--fault-plan``, or None."""
    path = getattr(args, "fault_plan", None)
    if not path:
        return None
    from .faults import FaultPlan
    try:
        return FaultPlan.load(path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro: error: --fault-plan: {exc}")


def _print_fault_report(injector) -> None:
    from .faults import AvailabilityReport
    for line in AvailabilityReport.from_injector(injector).lines():
        print(line)


def _check_parent_dir(flag: str, path: str) -> None:
    parent = os.path.dirname(path) or "."
    if not os.path.isdir(parent):
        # fail before the simulation runs, not after minutes of work
        raise SystemExit(f"repro: error: {flag} directory does not exist: "
                         f"{parent}")


def _make_tracer(args):
    """A Tracer when ``--trace``/``--metrics``/``--flame`` was given.

    ``--metrics`` rides the trace event stream (the tracer's registry
    aggregates every emission) and ``--flame`` needs the causal spans,
    so any of the three flags forces a tracer.
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    flame_path = getattr(args, "flame", None)
    if not trace_path and not metrics_path and not flame_path:
        return None
    if trace_path:
        _check_parent_dir("--trace", trace_path)
    if metrics_path:
        _check_parent_dir("--metrics", metrics_path)
    if flame_path:
        _check_parent_dir("--flame", flame_path)
    return Tracer()


def _export_trace(tracer, args) -> None:
    if tracer is None:
        return
    path = getattr(args, "trace", None)
    if path:
        # Extension picks the format: .jsonl/.csv round-trip through
        # ``repro causality``; anything else is a Chrome/Perfetto trace.
        if path.endswith(".jsonl"):
            write_jsonl(tracer.log, path)
            print(f"trace: {len(tracer.log)} events -> {path} "
                  f"(analyse with: python -m repro causality {path})")
        elif path.endswith(".csv"):
            write_csv(tracer.log, path)
            print(f"trace: {len(tracer.log)} events -> {path}")
        else:
            write_chrome_trace(tracer.log, path)
            print(f"trace: {len(tracer.log)} events -> {path} "
                  f"(open in https://ui.perfetto.dev)")
    _export_metrics(tracer, args)
    _export_flame(tracer, args)


def _write_flame(path: str, stacks, title: str, unit: str) -> None:
    from .causality import write_collapsed, write_flame_html
    if path.endswith((".html", ".htm")):
        write_flame_html(path, stacks, title=title, unit=unit)
    else:
        write_collapsed(path, stacks)


def _export_flame(tracer, args) -> None:
    """Render ``--flame`` from the run's causal trees (latency flame)."""
    path = getattr(args, "flame", None)
    if tracer is None or not path:
        return
    from .causality import build_forest, latency_stacks
    forest = build_forest(tracer.log)
    stacks = latency_stacks(forest)
    command = getattr(args, "command", None) or "run"
    _write_flame(path, stacks, title=f"latency flame: {command} run",
                 unit="µs")
    print(f"flame: {len(forest.roots)} causal trees, "
          f"{len(stacks)} stacks -> {path}")


def _export_metrics(tracer, args) -> None:
    import json
    path = getattr(args, "metrics", None)
    if tracer is None or not path:
        return
    snapshot = tracer.metrics.snapshot()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=1)
    print(f"metrics: {len(snapshot)} instruments -> {path}")


def _make_resilience(args):
    """A stock ResilienceConfig when ``--resilience`` was given, else None.

    None (not a disabled config) keeps the run on the bit-identical
    historical path; the stock config enables every mitigation with
    its defaults.
    """
    if not getattr(args, "resilience", False):
        return None
    from .resilience import ResilienceConfig
    return ResilienceConfig()


def _print_resilience(thing) -> None:
    """One activity line when a run's resilience ledger saw any action."""
    ledger = getattr(thing, "resilience_ledger", None)
    if ledger is None:
        return
    active = {k: v for k, v in sorted(ledger.counters.items()) if v}
    if active:
        print("resilience: " + ", ".join(f"{k}={v}"
                                         for k, v in active.items()))


def _make_telemetry(args):
    """A Telemetry (with the stock rules) when ``--telemetry`` was given."""
    path = getattr(args, "telemetry", None)
    if not path:
        return None
    _check_parent_dir("--telemetry", path)
    from .telemetry import Telemetry, default_rules
    return Telemetry(rules=default_rules())


def _export_telemetry(telemetry, args) -> None:
    if telemetry is None:
        return
    telemetry.save(args.telemetry)
    for line in telemetry.alert_lines():
        print(line)
    for line in telemetry.slo_report().lines():
        print(line)
    if telemetry.sim is not None and telemetry.sim.faults is not None:
        for line in telemetry.detection_report().lines():
            print(line)
    print(f"telemetry: {len(telemetry.db)} series -> {args.telemetry} "
          f"(render with: python -m repro report {args.telemetry} "
          f"--html dash.html)")


def _cmd_web(args) -> int:
    workload = WebWorkload(image_fraction=args.images,
                           cache_hit_ratio=args.hit_ratio)
    tracer = _make_tracer(args)
    telemetry = _make_telemetry(args)
    plan = _load_fault_plan(args)
    deployment = WebServiceDeployment(args.platform, args.scale, workload,
                                      seed=args.seed, trace=tracer,
                                      resilience=_make_resilience(args))
    if telemetry is not None:
        telemetry.attach_web(deployment)
    injector = deployment.attach_faults(plan) if plan is not None else None
    level = deployment.run_level(args.concurrency, duration=args.duration,
                                 warmup=args.duration / 3)
    _export_trace(tracer, args)
    _export_telemetry(telemetry, args)
    if injector is not None:
        _print_fault_report(injector)
    _print_resilience(deployment)
    print(format_table(
        ("metric", "value"),
        [("requests/s", f"{level.requests_per_second:.0f}"),
         ("mean delay (ms)", f"{level.mean_delay_s * 1000:.1f}"),
         ("5xx errors", level.error_calls),
         ("client timeouts", level.timeout_calls),
         ("SYN retries", level.syn_retries),
         ("cluster power (W)", f"{level.mean_power_w:.1f}"),
         ("requests/joule", f"{level.requests_per_second / level.mean_power_w:.1f}")],
        title=f"{args.platform}/{args.scale} web tier at "
              f"{args.concurrency} conn/s"))
    return 0


def _cmd_job(args) -> int:
    spec, config = JOB_FACTORIES[args.name](args.platform, args.slaves)
    tracer = _make_tracer(args)
    telemetry = _make_telemetry(args)
    plan = _load_fault_plan(args)
    runner = JobRunner(args.platform, args.slaves, config=config,
                       seed=args.seed, trace=tracer,
                       resilience=_make_resilience(args))
    if telemetry is not None:
        telemetry.attach_job(runner)
    injector = None
    if plan is not None:
        from .faults import FaultInjector
        injector = FaultInjector(runner.cluster, plan)
    report = runner.run(spec)
    _export_trace(tracer, args)
    _export_telemetry(telemetry, args)
    if injector is not None:
        _print_fault_report(injector)
    _print_resilience(runner)
    print(format_table(
        ("metric", "value"),
        [("run time (s)", f"{report.seconds:.0f}"),
         ("energy (J)", f"{report.joules:.0f}"),
         ("mean power (W)", f"{report.mean_watts:.1f}"),
         ("data-local maps", f"{report.locality_fraction * 100:.0f}%")],
        title=f"{args.name} on {args.slaves} {args.platform} slaves"))
    published = paper.T8.get(args.name, {}).get(args.platform, {}) \
        .get(args.slaves)
    if published is not None:
        print(f"paper: {published.seconds:.0f}s / {published.joules:.0f}J")
    return 0


def _cmd_chaos_web(args) -> int:
    from .faults import web_kill_experiment
    plan = _load_fault_plan(args)
    tracer = _make_tracer(args)
    telemetry = _make_telemetry(args)
    result = web_kill_experiment(
        platform=args.platform, scale=args.scale, victim=args.victim,
        plan=plan, concurrency=args.concurrency, duration=args.duration,
        warmup=args.duration / 4, kill_at=args.kill_at,
        repair_s=args.repair_after, seed=args.seed, trace=tracer,
        telemetry=telemetry, resilience=_make_resilience(args))
    _export_trace(tracer, args)
    _export_telemetry(telemetry, args)
    base, fault = result.baseline, result.faulted
    print(format_table(
        ("metric", "baseline", "faulted"),
        [("requests/s", f"{base.requests_per_second:.0f}",
          f"{fault.requests_per_second:.0f}"),
         ("mean delay (ms)", f"{base.mean_delay_s * 1000:.1f}",
          f"{fault.mean_delay_s * 1000:.1f}"),
         ("5xx errors", base.error_calls, fault.error_calls),
         ("failed connections", base.failed_connections,
          fault.failed_connections),
         ("cluster power (W)", f"{base.mean_power_w:.1f}",
          f"{fault.mean_power_w:.1f}")],
        title=f"chaos: {', '.join(result.victims)} down on "
              f"{args.platform}/{args.scale} "
              f"({result.web_servers} web servers)"))
    print(f"goodput loss: {result.goodput_loss_fraction * 100:.1f}% "
          f"(capacity-share prediction: "
          f"{result.expected_loss_fraction * 100:.1f}%)")
    print(f"energy per completed call: "
          f"{result.energy_per_call_overhead * 100:+.1f}%")
    for line in result.availability.lines():
        print(line)
    return 0


def _cmd_chaos_job(args) -> int:
    from .faults import job_kill_experiment
    plan = _load_fault_plan(args)
    tracer = _make_tracer(args)
    telemetry = _make_telemetry(args)
    result = job_kill_experiment(
        job=args.name, platform=args.platform, slaves=args.slaves,
        victim=args.victim, plan=plan, kill_at=args.kill_at,
        repair_s=args.repair_after, seed=args.seed, trace=tracer,
        telemetry=telemetry, resilience=_make_resilience(args))
    _export_trace(tracer, args)
    _export_telemetry(telemetry, args)
    rows = [("baseline", f"{result.baseline.seconds:.0f}s / "
                         f"{result.baseline.joules:.0f}J")]
    if result.completed:
        rows.append(("faulted", f"{result.faulted.seconds:.0f}s / "
                                f"{result.faulted.joules:.0f}J"))
        rows.append(("overhead",
                     f"{result.time_overhead_fraction * 100:+.1f}% time, "
                     f"{result.energy_overhead_fraction * 100:+.1f}% energy"))
    else:
        rows.append(("faulted", "JOB FAILED (all replicas lost)"))
    rows.append(("maps re-executed", result.recovered_maps))
    print(format_table(
        ("run", "result"), rows,
        title=f"chaos: {args.name}, {', '.join(result.victims)} down on "
              f"{args.slaves} {args.platform} slaves"))
    for line in result.availability.lines():
        print(line)
    return 0 if result.completed else 1


def _cmd_resilience(args) -> int:
    """The paired gray-failure experiment: mitigated vs unmitigated."""
    import json
    from .resilience import (job_resilience_experiment,
                             web_resilience_experiment)
    if args.json:
        _check_parent_dir("--json", args.json)
    # Always the committed gray seed: the report's numbers are the
    # repo's pinned acceptance story, not a sampling experiment.
    if args.kind == "web":
        report = web_resilience_experiment(platform=args.platform)
    else:
        report = job_resilience_experiment(platform=args.platform)
    for line in report.lines():
        print(line)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=1)
        print(f"report -> {args.json}")
    return 0


def _cmd_autoscale(args) -> int:
    """The three-arm provisioning day: static fleets vs the autoscaler."""
    import json
    from .autoscale import DayPlan, autoscale_experiment
    if args.json:
        _check_parent_dir("--json", args.json)
    plan = DayPlan.load(args.plan)
    tracer = None
    if args.trace:
        _check_parent_dir("--trace", args.trace)
        tracer = Tracer()
    report = autoscale_experiment(plan, trace=tracer)
    for line in report.lines():
        print(line)
    if tracer is not None:
        write_chrome_trace(tracer.log, args.trace)
        print(f"trace: {len(tracer.log)} events -> {args.trace}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=1)
        print(f"report -> {args.json}")
    return 0


def _cmd_carbon(args) -> int:
    """The carbon day: four deferral policies x both platforms."""
    import json
    from .carbon import CarbonDayPlan, carbon_experiment
    if args.json:
        _check_parent_dir("--json", args.json)
    plan = CarbonDayPlan.load(args.plan)
    report = carbon_experiment(plan)
    for line in report.lines():
        print(line)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=1)
        print(f"report -> {args.json}")
    return 0


def _cmd_dvfs(args) -> int:
    """The governor sweep: governor x platform x load shape."""
    import json
    from .dvfs import DvfsPlan, dvfs_experiment
    if args.json:
        _check_parent_dir("--json", args.json)
    plan = DvfsPlan.load(args.plan)
    report = dvfs_experiment(plan, scorecards=not args.no_scorecards)
    for line in report.lines():
        print(line)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=1)
        print(f"report -> {args.json}")
    return 0


def _cmd_durability(args) -> int:
    """The durability day: placement x replication x platform."""
    import json
    from .durability import DurabilityPlan, durability_experiment
    if args.json:
        _check_parent_dir("--json", args.json)
    plan = DurabilityPlan.load(args.plan)
    platforms = tuple(args.platforms) if args.platforms else None
    kwargs = {} if platforms is None else {"platforms": platforms}
    report = durability_experiment(plan, controls=not args.no_controls,
                                   **kwargs)
    for line in report.lines():
        print(line)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=1)
        print(f"report -> {args.json}")
    return 0


def _cmd_causality(args) -> int:
    """Post-mortem a saved span trace: trees, critical paths, energy."""
    from . import causality
    from .trace import read_csv, read_jsonl
    try:
        if args.tracefile.endswith(".csv"):
            log = read_csv(args.tracefile)
        else:
            log = read_jsonl(args.tracefile)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"repro: error: {args.tracefile}: {exc}")
    forest = causality.build_forest(log)
    if not forest.roots:
        raise SystemExit("repro: error: no identified spans in "
                         f"{args.tracefile} (record it with --trace "
                         "out.jsonl on a web/job run)")
    print(f"{len(log)} events, {len(forest.by_id)} spans, "
          f"{len(forest.trees())} causal trees "
          f"({len(forest.orphans)} orphaned subtrees)")
    aborted = [n for n in forest.walk() if n.aborted is not None]
    if aborted:
        kinds = {}
        for n in aborted:
            kinds[n.aborted] = kinds.get(n.aborted, 0) + 1
        print("aborted spans: " + ", ".join(
            f"{k}={v}" for k, v in sorted(kinds.items())))
    roots = [r for r in forest.roots if r.parent_id == 0]
    if roots:
        slowest = max(roots, key=lambda r: r.dur)
        path = causality.critical_path(slowest)
        waits = path.by_kind()
        print(f"slowest tree: {slowest.name} trace={slowest.trace_id} "
              f"({slowest.dur * 1000:.2f} ms; "
              f"self {waits.get('self', 0.0) * 1000:.2f} ms, "
              f"blocked {waits.get('blocked', 0.0) * 1000:.2f} ms)")
        for seg in path.longest(args.top):
            print(f"  {seg.duration * 1000:8.3f} ms  {seg.kind:7s} "
                  f"{seg.name}" + (f" @ {seg.node}" if seg.node else ""))
    try:
        decomposition = causality.decomposition_from_critical_paths(
            log, after=args.after, forest=None)
    except ValueError:
        decomposition = None
    if decomposition is not None:
        print(f"decomposition ({decomposition.requests} requests): "
              f"db {decomposition.db_delay_s * 1000:.2f} ms, "
              f"cache {decomposition.cache_delay_s * 1000:.2f} ms, "
              f"total {decomposition.total_delay_s * 1000:.2f} ms, "
              f"connect {decomposition.connect_delay_s * 1000:.2f} ms")
    attribution = causality.attribute_energy(log, forest=forest)
    by_span = {}
    for name, acct in sorted(attribution.nodes.items()):
        print(f"energy {name}: {acct.metered_j:.1f} J metered = "
              f"{acct.baseline_j:.1f} idle + {acct.attributed_j:.1f} "
              f"attributed ({len(acct.by_span)} spans) + "
              f"{acct.unattributed_j:.1f} unattributed")
        for sid, joules in acct.by_span.items():
            by_span[sid] = by_span.get(sid, 0.0) + joules
    if args.flame:
        _check_parent_dir("--flame", args.flame)
        stacks = causality.latency_stacks(forest)
        _write_flame(args.flame, stacks,
                     title=f"latency flame: {args.tracefile}", unit="µs")
        print(f"latency flame -> {args.flame}")
    if args.energy_flame:
        _check_parent_dir("--energy-flame", args.energy_flame)
        if not by_span:
            raise SystemExit("repro: error: --energy-flame needs a trace "
                             "with power counters (run with a metered "
                             "cluster)")
        stacks = causality.energy_stacks(forest, by_span)
        _write_flame(args.energy_flame, stacks,
                     title=f"energy flame: {args.tracefile}", unit="µJ")
        print(f"energy flame -> {args.energy_flame}")
    return 0


def _cmd_report(args) -> int:
    from .telemetry import (load_bundle, summary_lines, write_dashboard,
                            write_prometheus)
    try:
        bundle = load_bundle(args.bundle)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro: error: {exc}")
    for line in summary_lines(bundle):
        print(line)
    if args.html:
        _check_parent_dir("--html", args.html)
        write_dashboard(bundle, args.html)
        print(f"dashboard -> {args.html}")
    if args.prom:
        _check_parent_dir("--prom", args.prom)
        write_prometheus(bundle, args.prom)
        print(f"prometheus exposition -> {args.prom}")
    return 0


def _cmd_table2(args) -> int:
    estimate = replacement_estimate(EDISON, DELL_R620)
    print(paper_vs_measured(
        [("by CPU", 12, estimate.by_cpu),
         ("by RAM", 16, estimate.by_memory),
         ("by NIC", 10, estimate.by_network),
         ("required", paper.T2_EDISONS_PER_DELL, estimate.required)],
        title="Table 2: Edison nodes per Dell R620"))
    return 0


def _cmd_table8(args) -> int:
    jobs = args.jobs or list(TABLE8_JOBS)
    rows = []
    for job in jobs:
        for platform, slaves in (("edison", 35), ("dell", 2)):
            spec, config = JOB_FACTORIES[job](platform, slaves)
            report = run_job(platform, slaves, spec, config=config,
                             seed=args.seed)
            published = paper.T8[job][platform][slaves]
            rows.append((job, f"{platform}-{slaves}",
                         f"{report.seconds:.0f}s/{report.joules:.0f}J",
                         f"{published.seconds:.0f}s/{published.joules:.0f}J"))
    print(format_table(("job", "cluster", "simulated", "paper"), rows,
                       title="Table 8 (full-scale cells)"))
    return 0


def _cmd_table7(args) -> int:
    rows = []
    for rate, db, cache, total in paper.T7_ROWS:
        e = measure_delay_decomposition("edison", rate,
                                        duration=args.duration)
        d = measure_delay_decomposition("dell", rate, duration=args.duration)
        rows.append((rate,
                     f"({e.db_delay_s * 1e3:.2f}, {d.db_delay_s * 1e3:.2f})",
                     f"({e.cache_delay_s * 1e3:.2f}, "
                     f"{d.cache_delay_s * 1e3:.2f})",
                     f"({e.total_delay_s * 1e3:.2f}, "
                     f"{d.total_delay_s * 1e3:.2f})",
                     f"({total[0]}, {total[1]})"))
    print(format_table(
        ("req/s", "db ms", "cache ms", "total ms", "paper total"),
        rows, title="Table 7: (Edison, Dell) delay decomposition"))
    return 0


def _cmd_table10(args) -> int:
    rows = []
    for key, values in table10().items():
        published = paper.T10[key]
        rows.append((f"{key[0]}/{key[1]}",
                     f"${values['dell']:.1f} (paper ${published['dell']})",
                     f"${values['edison']:.1f} "
                     f"(paper ${published['edison']})",
                     f"{savings_fraction(values) * 100:.0f}%"))
    print(format_table(("scenario", "Dell", "Edison", "savings"), rows,
                       title="Table 10: 3-year TCO"))
    return 0


def _cmd_histogram(args) -> int:
    log = delay_distribution(args.platform, total_rate_rps=args.rate,
                             duration=args.duration,
                             warmup=args.duration / 3)
    rows = [(f"{start:.1f}-{start + 0.5:.1f}", count, "#" * min(60, count))
            for start, count in log.histogram(0.5, 8.0) if count]
    print(format_table(("delay (s)", "samples", ""), rows,
                       title=f"{args.platform} response-delay distribution "
                             f"at {args.rate:.0f} req/s (Figures 10/11)"))
    return 0


def _cmd_microbench(args) -> int:
    rows = []
    for label, spec in (("edison", EDISON), ("dell", DELL_R620)):
        sim = Simulation()
        server = make_server(sim, spec, "s0")
        rows.append((f"{label} Dhrystone (DMIPS)",
                     f"{run_dhrystone(sim, server).dmips:.1f}"))
        sim = Simulation()
        server = make_server(sim, spec, "s0")
        rows.append((f"{label} sysbench 1-thread (s)",
                     f"{run_sysbench_cpu(sim, server, 1).total_time_s:.0f}"))
        sim = Simulation()
        server = make_server(sim, spec, "s0")
        rows.append((f"{label} mem BW (GB/s)",
                     f"{run_sysbench_memory(sim, server, 1 << 20, 16).rate_bps / 1e9:.2f}"))
        sim = Simulation()
        server = make_server(sim, spec, "s0")
        rows.append((f"{label} dd write (MB/s)",
                     f"{run_dd(sim, server, 'write', 50e6).rate_bps / 1e6:.1f}"))
        sim = Simulation()
        server = make_server(sim, spec, "s0")
        rows.append((f"{label} ioping read (ms)",
                     f"{run_ioping(sim, server, 'read').mean_latency_s * 1e3:.2f}"))
    sim = Simulation()
    cluster = Cluster(sim)
    cluster.add(EDISON, "a")
    cluster.add(EDISON, "b")
    rows.append(("edison-edison iperf TCP (Mb/s)",
                 f"{run_iperf(sim, cluster.topology, 'a', 'b', 100e6).goodput_bps / 1e6:.1f}"))
    sim = Simulation()
    cluster = Cluster(sim)
    cluster.add(EDISON, "a")
    cluster.add(EDISON, "b")
    rows.append(("edison-edison ping (ms)",
                 f"{run_ping(sim, cluster.topology, 'a', 'b').rtt_s * 1e3:.2f}"))
    print(format_table(("benchmark", "result"), rows,
                       title="Section 4 micro-benchmarks"))
    return 0


def _add_observability_flags(parser) -> None:
    """``--telemetry`` and ``--metrics``, shared by the run subcommands."""
    parser.add_argument("--telemetry", metavar="PATH",
                        help="attach monitoring scrapers + the stock alert "
                             "rules; write the telemetry bundle (JSON) to "
                             "PATH after the run")
    parser.add_argument("--metrics", metavar="PATH",
                        help="write the run's aggregated metrics "
                             "(counters/gauges/histograms) to PATH as JSON")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the VLDB'16 Edison micro-server study "
                    "in simulation.")
    parser.add_argument("--seed", type=int, default=20160901,
                        help="root RNG seed (default: %(default)s)")
    sub = parser.add_subparsers(dest="command", required=True)

    web = sub.add_parser("web", help="run one web-serving level")
    web.add_argument("--platform", choices=("edison", "dell"),
                     default="edison")
    web.add_argument("--scale", default="full",
                     choices=("full", "1/2", "1/4", "1/8"))
    web.add_argument("--concurrency", type=int, default=512)
    web.add_argument("--duration", type=float, default=3.0)
    web.add_argument("--images", type=float, default=0.0,
                     help="image-query fraction (0-1)")
    web.add_argument("--hit-ratio", type=float, default=0.93)
    web.add_argument("--trace", metavar="PATH",
                     help="write a trace of the run to PATH (.jsonl/.csv "
                          "round-trip through 'repro causality'; any "
                          "other extension is Chrome/Perfetto JSON)")
    web.add_argument("--flame", metavar="PATH",
                     help="write a latency flame graph of the run's "
                          "causal trees (.html for the self-contained "
                          "SVG page, anything else for collapsed stacks)")
    web.add_argument("--resilience", action="store_true",
                     help="enable the web-tier mitigations (circuit "
                          "breakers, retries, hedging, load shedding) "
                          "with their stock configuration")
    web.add_argument("--fault-plan", metavar="FILE",
                     help="inject the faults in this JSON plan "
                          "(see repro.faults.FaultPlan)")
    _add_observability_flags(web)
    web.set_defaults(func=_cmd_web)

    job = sub.add_parser("job", help="run one MapReduce job")
    job.add_argument("name", choices=sorted(JOB_FACTORIES))
    job.add_argument("--platform", choices=("edison", "dell"),
                     default="edison")
    job.add_argument("--slaves", type=int, default=35)
    job.add_argument("--trace", metavar="PATH",
                     help="write a trace of the run to PATH (.jsonl/.csv "
                          "round-trip through 'repro causality'; any "
                          "other extension is Chrome/Perfetto JSON)")
    job.add_argument("--flame", metavar="PATH",
                     help="write a latency flame graph of the job's "
                          "causal trees (.html for the self-contained "
                          "SVG page, anything else for collapsed stacks)")
    job.add_argument("--resilience", action="store_true",
                     help="enable LATE speculative execution and retry "
                          "backoff with their stock configuration")
    job.add_argument("--fault-plan", metavar="FILE",
                     help="inject the faults in this JSON plan "
                          "(see repro.faults.FaultPlan)")
    _add_observability_flags(job)
    job.set_defaults(func=_cmd_job)

    chaos = sub.add_parser(
        "chaos", help="fault-injection experiments (kill nodes mid-run)")
    chaos_sub = chaos.add_subparsers(dest="mode", required=True)
    cweb = chaos_sub.add_parser(
        "web", help="kill a web server mid-measurement vs a clean run")
    cweb.add_argument("--platform", choices=("edison", "dell"),
                      default="edison")
    cweb.add_argument("--scale", default="full",
                      choices=("full", "1/2", "1/4", "1/8"))
    cweb.add_argument("--concurrency", type=int, default=512)
    cweb.add_argument("--duration", type=float, default=6.0)
    cweb.add_argument("--victim", metavar="NODE",
                      help="server to kill (default: web-0)")
    cweb.add_argument("--kill-at", type=float, default=1.5,
                      help="crash onset time in seconds "
                           "(default: %(default)s)")
    cweb.add_argument("--repair-after", type=float, default=None,
                      help="repair delay in seconds (default: never)")
    cweb.add_argument("--resilience", action="store_true",
                      help="arm the faulted run with the stock web-tier "
                           "mitigations (the baseline stays clean)")
    cweb.add_argument("--fault-plan", metavar="FILE",
                      help="run this JSON plan instead of a single kill")
    cweb.add_argument("--trace", metavar="PATH",
                      help="write a Chrome/Perfetto trace of the faulted "
                           "run to PATH")
    _add_observability_flags(cweb)
    cweb.set_defaults(func=_cmd_chaos_web)
    cjob = chaos_sub.add_parser(
        "job", help="kill a Hadoop slave mid-job vs a clean run")
    cjob.add_argument("name", choices=sorted(JOB_FACTORIES))
    cjob.add_argument("--platform", choices=("edison", "dell"),
                      default="edison")
    cjob.add_argument("--slaves", type=int, default=35)
    cjob.add_argument("--victim", metavar="NODE",
                      help="slave to kill (default: the first slave)")
    cjob.add_argument("--kill-at", type=float, default=30.0,
                      help="crash onset time in seconds "
                           "(default: %(default)s)")
    cjob.add_argument("--repair-after", type=float, default=None,
                      help="repair delay in seconds (default: never)")
    cjob.add_argument("--resilience", action="store_true",
                      help="arm the faulted run with LATE speculation "
                           "(the baseline stays clean)")
    cjob.add_argument("--fault-plan", metavar="FILE",
                      help="run this JSON plan instead of a single kill")
    cjob.add_argument("--trace", metavar="PATH",
                      help="write a Chrome/Perfetto trace of the faulted "
                           "run to PATH")
    _add_observability_flags(cjob)
    cjob.set_defaults(func=_cmd_chaos_job)

    res = sub.add_parser(
        "resilience",
        help="gray-failure tax report: the same seeded fault plan run "
             "with and without mitigation, and the joule price of the "
             "difference")
    res.add_argument("kind", choices=("web", "job"))
    res.add_argument("--platform", choices=("edison", "dell"),
                     default="edison")
    res.add_argument("--json", metavar="PATH",
                     help="also write the report as JSON to PATH")
    res.set_defaults(func=_cmd_resilience)

    autoscale = sub.add_parser(
        "autoscale",
        help="three-arm provisioning day: static-Edison and static-Dell "
             "fleets vs the autoscaled hybrid, with joules, SLOs and "
             "dollars per arm")
    autoscale.add_argument(
        "--plan", default=os.path.join(os.path.dirname(__file__), "..", "..",
                                       "experiments", "autoscale_day.json"),
        metavar="FILE",
        help="DayPlan JSON (default: the committed experiments/"
             "autoscale_day.json)")
    autoscale.add_argument("--json", metavar="PATH",
                           help="also write the report as JSON to PATH")
    autoscale.add_argument("--trace", metavar="PATH",
                           help="write a Chrome/Perfetto trace of all "
                                "three arms to PATH")
    autoscale.set_defaults(func=_cmd_autoscale)

    carbon = sub.add_parser(
        "carbon",
        help="carbon day: four deferral policies (no-wait, EDD, "
             "threshold-waiting, suspend-resume) x both platforms, "
             "with grams CO2, dollars, wait and deadline misses per arm")
    carbon.add_argument(
        "--plan", default=os.path.join(os.path.dirname(__file__), "..", "..",
                                       "experiments", "carbon_day.json"),
        metavar="FILE",
        help="CarbonDayPlan JSON (default: the committed experiments/"
             "carbon_day.json)")
    carbon.add_argument("--json", metavar="PATH",
                        help="also write the report as JSON to PATH")
    carbon.set_defaults(func=_cmd_carbon)

    dvfs = sub.add_parser(
        "dvfs",
        help="governor sweep: performance, powersave and ondemand x "
             "both platforms x three day shapes, with joules, p95, "
             "P-state switches and energy-proportionality scorecards")
    dvfs.add_argument(
        "--plan", default=os.path.join(os.path.dirname(__file__), "..", "..",
                                       "experiments", "dvfs_day.json"),
        metavar="FILE",
        help="DvfsPlan JSON (default: the committed experiments/"
             "dvfs_day.json)")
    dvfs.add_argument("--json", metavar="PATH",
                      help="also write the report as JSON to PATH")
    dvfs.add_argument("--no-scorecards", action="store_true",
                      help="skip the 10..100%% load ladders (faster)")
    dvfs.set_defaults(func=_cmd_dvfs)

    durability = sub.add_parser(
        "durability",
        help="durability day: rack-aware vs oblivious placement x "
             "replication 1..3 x both platforms under a committed "
             "partition/disk-failure timeline, with blocks lost, "
             "block-seconds at risk, repair joules and the split-brain "
             "reconciliation bill")
    durability.add_argument(
        "--plan", default=os.path.join(os.path.dirname(__file__), "..", "..",
                                       "experiments", "durability_day.json"),
        metavar="FILE",
        help="DurabilityPlan JSON (default: the committed experiments/"
             "durability_day.json)")
    durability.add_argument("--platforms", nargs="*",
                            choices=("edison", "dell"), metavar="PLATFORM",
                            help="restrict the day to these platforms "
                                 "(default: both)")
    durability.add_argument("--no-controls", action="store_true",
                            help="skip the no-partition control arms "
                                 "(faster, but no downtime cross-check)")
    durability.add_argument("--json", metavar="PATH",
                            help="also write the report as JSON to PATH")
    durability.set_defaults(func=_cmd_durability)

    sub.add_parser("table2", help="capacity estimate") \
        .set_defaults(func=_cmd_table2)
    t7 = sub.add_parser("table7", help="delay decomposition")
    t7.add_argument("--duration", type=float, default=3.0)
    t7.set_defaults(func=_cmd_table7)
    t8 = sub.add_parser("table8", help="full-scale Table 8 cells")
    t8.add_argument("--jobs", nargs="*", choices=TABLE8_JOBS)
    t8.set_defaults(func=_cmd_table8)
    sub.add_parser("table10", help="TCO comparison") \
        .set_defaults(func=_cmd_table10)

    hist = sub.add_parser("histogram", help="Figure 10/11 delay histogram")
    hist.add_argument("--platform", choices=("edison", "dell"),
                      default="dell")
    hist.add_argument("--rate", type=float, default=6000.0)
    hist.add_argument("--duration", type=float, default=6.0)
    hist.set_defaults(func=_cmd_histogram)

    causality = sub.add_parser(
        "causality",
        help="post-mortem a saved span trace: causal trees, critical "
             "paths, per-span energy attribution and flame graphs")
    causality.add_argument("tracefile", metavar="TRACE",
                           help="span trace written by --trace out.jsonl "
                                "(or .csv) on a web/job run")
    causality.add_argument("--after", type=float, default=0.0,
                           help="ignore requests starting before this "
                                "time (warmup cut, default: %(default)s)")
    causality.add_argument("--top", type=int, default=5,
                           help="critical-path segments to print "
                                "(default: %(default)s)")
    causality.add_argument("--flame", metavar="PATH",
                           help="write the latency flame graph to PATH "
                                "(.html or collapsed stacks)")
    causality.add_argument("--energy-flame", metavar="PATH",
                           help="write the attributed-energy flame graph "
                                "to PATH (needs power counters in the "
                                "trace)")
    causality.set_defaults(func=_cmd_causality)

    report = sub.add_parser(
        "report", help="summarise a saved telemetry bundle")
    report.add_argument("bundle", metavar="BUNDLE",
                        help="telemetry JSON written by --telemetry")
    report.add_argument("--html", metavar="PATH",
                        help="render a self-contained HTML dashboard")
    report.add_argument("--prom", metavar="PATH",
                        help="write Prometheus text exposition")
    report.set_defaults(func=_cmd_report)

    sub.add_parser("microbench", help="Section 4 single-server tests") \
        .set_defaults(func=_cmd_microbench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
