"""Command-line interface: run any of the paper's experiments directly.

Examples
--------
::

    python -m repro web --platform edison --concurrency 512
    python -m repro job wordcount --platform dell --slaves 2
    python -m repro table8 --jobs wordcount pi
    python -m repro table10
    python -m repro microbench
    python -m repro histogram --platform dell
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .cluster import Cluster
from .core import paperdata as paper
from .core.capacity import replacement_estimate
from .core.report import format_table, paper_vs_measured
from .hardware import DELL_R620, EDISON, make_server
from .mapreduce import JOB_FACTORIES, TABLE8_JOBS, run_job
from .microbench import run_dd, run_dhrystone, run_ioping, run_iperf, \
    run_ping, run_sysbench_cpu, run_sysbench_memory
from .sim import Simulation
from .tco import savings_fraction, table10
from .trace import Tracer, write_chrome_trace
from .web import WebServiceDeployment, WebWorkload, delay_distribution, \
    measure_delay_decomposition


def _make_tracer(args):
    """A Tracer when ``--trace`` was given, else None."""
    if not getattr(args, "trace", None):
        return None
    parent = os.path.dirname(args.trace) or "."
    if not os.path.isdir(parent):
        # fail before the simulation runs, not after minutes of work
        raise SystemExit(f"repro: error: --trace directory does not exist: "
                         f"{parent}")
    return Tracer()


def _export_trace(tracer, args) -> None:
    if tracer is None:
        return
    write_chrome_trace(tracer.log, args.trace)
    print(f"trace: {len(tracer.log)} events -> {args.trace} "
          f"(open in https://ui.perfetto.dev)")


def _cmd_web(args) -> int:
    workload = WebWorkload(image_fraction=args.images,
                           cache_hit_ratio=args.hit_ratio)
    tracer = _make_tracer(args)
    deployment = WebServiceDeployment(args.platform, args.scale, workload,
                                      seed=args.seed, trace=tracer)
    level = deployment.run_level(args.concurrency, duration=args.duration,
                                 warmup=args.duration / 3)
    _export_trace(tracer, args)
    print(format_table(
        ("metric", "value"),
        [("requests/s", f"{level.requests_per_second:.0f}"),
         ("mean delay (ms)", f"{level.mean_delay_s * 1000:.1f}"),
         ("5xx errors", level.error_calls),
         ("client timeouts", level.timeout_calls),
         ("SYN retries", level.syn_retries),
         ("cluster power (W)", f"{level.mean_power_w:.1f}"),
         ("requests/joule", f"{level.requests_per_second / level.mean_power_w:.1f}")],
        title=f"{args.platform}/{args.scale} web tier at "
              f"{args.concurrency} conn/s"))
    return 0


def _cmd_job(args) -> int:
    spec, config = JOB_FACTORIES[args.name](args.platform, args.slaves)
    tracer = _make_tracer(args)
    report = run_job(args.platform, args.slaves, spec, config=config,
                     seed=args.seed, trace=tracer)
    _export_trace(tracer, args)
    print(format_table(
        ("metric", "value"),
        [("run time (s)", f"{report.seconds:.0f}"),
         ("energy (J)", f"{report.joules:.0f}"),
         ("mean power (W)", f"{report.mean_watts:.1f}"),
         ("data-local maps", f"{report.locality_fraction * 100:.0f}%")],
        title=f"{args.name} on {args.slaves} {args.platform} slaves"))
    published = paper.T8.get(args.name, {}).get(args.platform, {}) \
        .get(args.slaves)
    if published is not None:
        print(f"paper: {published.seconds:.0f}s / {published.joules:.0f}J")
    return 0


def _cmd_table2(args) -> int:
    estimate = replacement_estimate(EDISON, DELL_R620)
    print(paper_vs_measured(
        [("by CPU", 12, estimate.by_cpu),
         ("by RAM", 16, estimate.by_memory),
         ("by NIC", 10, estimate.by_network),
         ("required", paper.T2_EDISONS_PER_DELL, estimate.required)],
        title="Table 2: Edison nodes per Dell R620"))
    return 0


def _cmd_table8(args) -> int:
    jobs = args.jobs or list(TABLE8_JOBS)
    rows = []
    for job in jobs:
        for platform, slaves in (("edison", 35), ("dell", 2)):
            spec, config = JOB_FACTORIES[job](platform, slaves)
            report = run_job(platform, slaves, spec, config=config,
                             seed=args.seed)
            published = paper.T8[job][platform][slaves]
            rows.append((job, f"{platform}-{slaves}",
                         f"{report.seconds:.0f}s/{report.joules:.0f}J",
                         f"{published.seconds:.0f}s/{published.joules:.0f}J"))
    print(format_table(("job", "cluster", "simulated", "paper"), rows,
                       title="Table 8 (full-scale cells)"))
    return 0


def _cmd_table7(args) -> int:
    rows = []
    for rate, db, cache, total in paper.T7_ROWS:
        e = measure_delay_decomposition("edison", rate,
                                        duration=args.duration)
        d = measure_delay_decomposition("dell", rate, duration=args.duration)
        rows.append((rate,
                     f"({e.db_delay_s * 1e3:.2f}, {d.db_delay_s * 1e3:.2f})",
                     f"({e.cache_delay_s * 1e3:.2f}, "
                     f"{d.cache_delay_s * 1e3:.2f})",
                     f"({e.total_delay_s * 1e3:.2f}, "
                     f"{d.total_delay_s * 1e3:.2f})",
                     f"({total[0]}, {total[1]})"))
    print(format_table(
        ("req/s", "db ms", "cache ms", "total ms", "paper total"),
        rows, title="Table 7: (Edison, Dell) delay decomposition"))
    return 0


def _cmd_table10(args) -> int:
    rows = []
    for key, values in table10().items():
        published = paper.T10[key]
        rows.append((f"{key[0]}/{key[1]}",
                     f"${values['dell']:.1f} (paper ${published['dell']})",
                     f"${values['edison']:.1f} "
                     f"(paper ${published['edison']})",
                     f"{savings_fraction(values) * 100:.0f}%"))
    print(format_table(("scenario", "Dell", "Edison", "savings"), rows,
                       title="Table 10: 3-year TCO"))
    return 0


def _cmd_histogram(args) -> int:
    log = delay_distribution(args.platform, total_rate_rps=args.rate,
                             duration=args.duration,
                             warmup=args.duration / 3)
    rows = [(f"{start:.1f}-{start + 0.5:.1f}", count, "#" * min(60, count))
            for start, count in log.histogram(0.5, 8.0) if count]
    print(format_table(("delay (s)", "samples", ""), rows,
                       title=f"{args.platform} response-delay distribution "
                             f"at {args.rate:.0f} req/s (Figures 10/11)"))
    return 0


def _cmd_microbench(args) -> int:
    rows = []
    for label, spec in (("edison", EDISON), ("dell", DELL_R620)):
        sim = Simulation()
        server = make_server(sim, spec, "s0")
        rows.append((f"{label} Dhrystone (DMIPS)",
                     f"{run_dhrystone(sim, server).dmips:.1f}"))
        sim = Simulation()
        server = make_server(sim, spec, "s0")
        rows.append((f"{label} sysbench 1-thread (s)",
                     f"{run_sysbench_cpu(sim, server, 1).total_time_s:.0f}"))
        sim = Simulation()
        server = make_server(sim, spec, "s0")
        rows.append((f"{label} mem BW (GB/s)",
                     f"{run_sysbench_memory(sim, server, 1 << 20, 16).rate_bps / 1e9:.2f}"))
        sim = Simulation()
        server = make_server(sim, spec, "s0")
        rows.append((f"{label} dd write (MB/s)",
                     f"{run_dd(sim, server, 'write', 50e6).rate_bps / 1e6:.1f}"))
        sim = Simulation()
        server = make_server(sim, spec, "s0")
        rows.append((f"{label} ioping read (ms)",
                     f"{run_ioping(sim, server, 'read').mean_latency_s * 1e3:.2f}"))
    sim = Simulation()
    cluster = Cluster(sim)
    cluster.add(EDISON, "a")
    cluster.add(EDISON, "b")
    rows.append(("edison-edison iperf TCP (Mb/s)",
                 f"{run_iperf(sim, cluster.topology, 'a', 'b', 100e6).goodput_bps / 1e6:.1f}"))
    sim = Simulation()
    cluster = Cluster(sim)
    cluster.add(EDISON, "a")
    cluster.add(EDISON, "b")
    rows.append(("edison-edison ping (ms)",
                 f"{run_ping(sim, cluster.topology, 'a', 'b').rtt_s * 1e3:.2f}"))
    print(format_table(("benchmark", "result"), rows,
                       title="Section 4 micro-benchmarks"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the VLDB'16 Edison micro-server study "
                    "in simulation.")
    parser.add_argument("--seed", type=int, default=20160901,
                        help="root RNG seed (default: %(default)s)")
    sub = parser.add_subparsers(dest="command", required=True)

    web = sub.add_parser("web", help="run one web-serving level")
    web.add_argument("--platform", choices=("edison", "dell"),
                     default="edison")
    web.add_argument("--scale", default="full",
                     choices=("full", "1/2", "1/4", "1/8"))
    web.add_argument("--concurrency", type=int, default=512)
    web.add_argument("--duration", type=float, default=3.0)
    web.add_argument("--images", type=float, default=0.0,
                     help="image-query fraction (0-1)")
    web.add_argument("--hit-ratio", type=float, default=0.93)
    web.add_argument("--trace", metavar="PATH",
                     help="write a Chrome/Perfetto trace of the run "
                          "to PATH")
    web.set_defaults(func=_cmd_web)

    job = sub.add_parser("job", help="run one MapReduce job")
    job.add_argument("name", choices=sorted(JOB_FACTORIES))
    job.add_argument("--platform", choices=("edison", "dell"),
                     default="edison")
    job.add_argument("--slaves", type=int, default=35)
    job.add_argument("--trace", metavar="PATH",
                     help="write a Chrome/Perfetto trace of the run "
                          "to PATH")
    job.set_defaults(func=_cmd_job)

    sub.add_parser("table2", help="capacity estimate") \
        .set_defaults(func=_cmd_table2)
    t7 = sub.add_parser("table7", help="delay decomposition")
    t7.add_argument("--duration", type=float, default=3.0)
    t7.set_defaults(func=_cmd_table7)
    t8 = sub.add_parser("table8", help="full-scale Table 8 cells")
    t8.add_argument("--jobs", nargs="*", choices=TABLE8_JOBS)
    t8.set_defaults(func=_cmd_table8)
    sub.add_parser("table10", help="TCO comparison") \
        .set_defaults(func=_cmd_table10)

    hist = sub.add_parser("histogram", help="Figure 10/11 delay histogram")
    hist.add_argument("--platform", choices=("edison", "dell"),
                      default="dell")
    hist.add_argument("--rate", type=float, default=6000.0)
    hist.add_argument("--duration", type=float, default=6.0)
    hist.set_defaults(func=_cmd_histogram)

    sub.add_parser("microbench", help="Section 4 single-server tests") \
        .set_defaults(func=_cmd_microbench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
