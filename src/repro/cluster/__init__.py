"""Cluster composition: server groups, topologies and testbed layouts."""

from .builders import (dell_cluster, edison_cluster, hadoop_cluster,
                       hybrid_web_cluster, web_cluster)
from .cluster import Cluster

__all__ = ["Cluster", "dell_cluster", "edison_cluster", "hadoop_cluster",
           "hybrid_web_cluster", "web_cluster"]
