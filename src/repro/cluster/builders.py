"""Ready-made cluster layouts matching the paper's testbeds."""

from __future__ import annotations

from typing import Optional

from ..core import paperdata as paper
from ..hardware import DELL_R620, EDISON, ServerSpec
from ..sim import Simulation
from .cluster import Cluster


def edison_cluster(sim: Simulation, nodes: int = 35,
                   spec: ServerSpec = EDISON,
                   name: str = "edison") -> Cluster:
    """The paper's Edison testbed: ``nodes`` micro servers (default 35)."""
    cluster = Cluster(sim, name=name)
    cluster.add_many(spec, nodes, prefix="edison")
    return cluster


def dell_cluster(sim: Simulation, nodes: int = 3,
                 name: str = "dell") -> Cluster:
    """The Dell PowerEdge R620 comparison cluster (default 3 nodes)."""
    cluster = Cluster(sim, name=name)
    cluster.add_many(DELL_R620, nodes, prefix="dell")
    return cluster


def hadoop_cluster(sim: Simulation, platform: str, slaves: int,
                   name: Optional[str] = None,
                   edison_spec: ServerSpec = EDISON,
                   master_spec: ServerSpec = DELL_R620,
                   racks: int = 0) -> Cluster:
    """The Section 5.2 Hadoop layouts.

    Both platforms use one *unmetered* Dell master (namenode + resource
    manager); the paper found an Edison master becomes the bottleneck
    and excludes the master's steady draw from energy accounting on
    both sides.  Slaves run the datanode + node-manager.  Pass
    ``master_spec=EDISON`` to reproduce the failed all-Edison layout
    (the Edison-master ablation).

    ``racks`` splits the slaves into that many explicit rack domains
    (``<platform>-rack-0..``), each behind its own ToR uplink — the
    physical enclosure structure the durability experiments sever.
    The default 0 keeps the legacy everyone-in-one-room layout.
    """
    if platform not in ("edison", "dell"):
        raise ValueError(f"unknown platform {platform!r}")
    if slaves < 1:
        raise ValueError("need at least one slave")
    if racks < 0 or racks > slaves:
        raise ValueError("racks must be in [0, slaves]")
    cluster = Cluster(sim, name=name or f"hadoop-{platform}{slaves}")
    cluster.add(master_spec, "master", metered=False)
    slave_spec = edison_spec if platform == "edison" else DELL_R620
    if racks:
        per_rack = -(-slaves // racks)   # ceil division
        for i in range(slaves):
            cluster.add(slave_spec, f"{platform}-slave-{i}",
                        rack=f"{platform}-rack-{i // per_rack}")
    else:
        cluster.add_many(slave_spec, slaves, prefix=f"{platform}-slave")
    return cluster


def parse_custom_scale(scale: str):
    """Parse a ``"<web>x<cache>"`` layout spec, or ``None`` if not one.

    Beyond the paper's Table 6 ladders, scalability studies (and the
    kernel-scale benchmarks) drive layouts several times the paper's
    35-node ceiling; ``"48x22"`` asks for 48 web and 22 cache servers.
    """
    parts = scale.split("x")
    if len(parts) != 2 or not all(p.isdigit() for p in parts):
        return None
    web_count, cache_count = int(parts[0]), int(parts[1])
    if web_count < 1 or cache_count < 1:
        raise ValueError(f"custom scale {scale!r} needs >= 1 of each role")
    return web_count, cache_count


def hybrid_web_cluster(sim: Simulation, edison_web: int, dell_web: int,
                       cache: int,
                       edison_spec: ServerSpec = EDISON) -> Cluster:
    """A mixed Edison/R620 web tier sharing one rotation.

    The autoscaling testbed: ``edison_web`` wimpy and ``dell_web``
    brawny web servers behind one capacity-weighted balancer, an
    Edison memcached tier sized like the Table 6 ladders, and the same
    shared unmetered Dell MySQL/client infrastructure as
    :func:`web_cluster`.  Edisons are named ``web-0..`` and the Dells
    continue the suffix range, so every role-by-prefix consumer (the
    telemetry scrapers, the deployment wiring) works unchanged;
    per-node platform comes from ``server.platform``.
    """
    if edison_web < 0 or dell_web < 0 or edison_web + dell_web < 1:
        raise ValueError("need at least one web server across platforms")
    if cache < 1:
        raise ValueError("need at least one cache server")
    cluster = Cluster(sim, name=f"web-hybrid-{edison_web}e{dell_web}d")
    for i in range(edison_web):
        cluster.add(edison_spec, f"web-{i}")
    for i in range(dell_web):
        cluster.add(DELL_R620, f"web-{edison_web + i}")
    cluster.add_many(edison_spec, cache, prefix="cache")
    for i in range(2):
        cluster.add(DELL_R620, f"db-{i}", metered=False)
    for i in range(8):
        cluster.add(DELL_R620, f"client-{i}", metered=False)
    return cluster


def web_cluster(sim: Simulation, platform: str, scale: str = "full",
                edison_spec: ServerSpec = EDISON) -> Cluster:
    """The Section 5.1 web-service layouts (Table 6).

    Returns a cluster whose servers are tagged by role via naming:
    ``web-*`` and ``cache-*``.  The shared MySQL tier (2 extra Dell
    R620s, used by *both* platforms and excluded from the comparison)
    is added unmetered, as are the 8 client and 8 load-balancer hosts.

    ``scale`` is a Table 6 ladder rung (``"full"``, ``"1/2"``, ...) or
    a custom ``"<web>x<cache>"`` layout for beyond-paper scaling runs.
    """
    if platform not in ("edison", "dell"):
        raise ValueError(f"unknown platform {platform!r}")
    custom = parse_custom_scale(scale)
    if custom is not None:
        web_count, cache_count = custom
        spec = edison_spec if platform == "edison" else DELL_R620
    elif scale not in paper.T6_CLUSTERS:
        raise ValueError(f"unknown scale {scale!r}; choose from "
                         f"{sorted(paper.T6_CLUSTERS)} or '<web>x<cache>'")
    else:
        edison_web, edison_cache, dell_web, dell_cache = \
            paper.T6_CLUSTERS[scale]
        if platform == "edison":
            web_count, cache_count, spec = \
                edison_web, edison_cache, edison_spec
        else:
            if dell_web is None:
                raise ValueError(
                    f"the paper has no Dell layout at scale {scale!r}")
            web_count, cache_count, spec = dell_web, dell_cache, DELL_R620
    cluster = Cluster(sim, name=f"web-{platform}-{scale.replace('/', 'of')}")
    cluster.add_many(spec, web_count, prefix="web")
    cluster.add_many(spec, cache_count, prefix="cache")
    # Shared, unmetered infrastructure (always brawny Dell hardware).
    for i in range(2):
        cluster.add(DELL_R620, f"db-{i}", metered=False)
    for i in range(8):
        cluster.add(DELL_R620, f"client-{i}", metered=False)
    return cluster
