"""A cluster: servers wired into a topology with a power meter attached."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..energy import PowerMeter
from ..hardware import Server, ServerSpec, make_server
from ..net import Topology
from ..sim import Simulation


class Cluster:
    """A named group of servers sharing a simulation and a topology.

    A cluster may span both platforms (the paper's Hadoop deployment has
    a Dell master and Edison slaves); the power meter covers an explicit
    *metered* subset so the master can be excluded from energy accounting
    the way Section 5.2 excludes it.
    """

    def __init__(self, sim: Simulation, name: str = "cluster",
                 topology: Optional[Topology] = None):
        self.sim = sim
        self.name = name
        self.topology = topology if topology is not None else Topology(sim)
        self.servers: Dict[str, Server] = {}
        self.metered_names: List[str] = []
        self._meter: Optional[PowerMeter] = None

    def add(self, spec: ServerSpec, name: str, metered: bool = True,
            rack: Optional[str] = None) -> Server:
        """Create one server from ``spec`` and wire it into the topology."""
        if name in self.servers:
            raise ValueError(f"duplicate server name {name!r}")
        server = make_server(self.sim, spec, name)
        self.servers[name] = server
        self.topology.add_server(server, rack=rack)
        if metered:
            self.metered_names.append(name)
        return server

    def add_many(self, spec: ServerSpec, count: int, prefix: str,
                 metered: bool = True) -> List[Server]:
        """Create ``count`` identical servers named ``prefix``-``i``."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return [self.add(spec, f"{prefix}-{i}", metered=metered)
                for i in range(count)]

    def __len__(self) -> int:
        return len(self.servers)

    def __iter__(self):
        return iter(self.servers.values())

    @property
    def metered_servers(self) -> List[Server]:
        return [self.servers[name] for name in self.metered_names]

    def by_platform(self, platform: str) -> List[Server]:
        """All servers of one platform, in insertion order."""
        return [s for s in self.servers.values() if s.platform == platform]

    # -- metering ---------------------------------------------------------

    def attach_meter(self, interval: float = 1.0,
                     servers: Optional[Iterable[Server]] = None) -> PowerMeter:
        """Create (once) the power meter over the metered subset."""
        if self._meter is not None:
            raise RuntimeError("meter already attached")
        self._meter = PowerMeter(
            self.sim,
            list(servers) if servers is not None else self.metered_servers,
            interval=interval, name=f"{self.name}.meter")
        return self._meter

    @property
    def meter(self) -> PowerMeter:
        if self._meter is None:
            raise RuntimeError("attach_meter() has not been called")
        return self._meter

    def idle_watts(self) -> float:
        """Wall power with every metered server idle."""
        return sum(s.spec.power.min_w for s in self.metered_servers)

    def busy_watts(self) -> float:
        """Wall power with every metered server saturated."""
        return sum(s.spec.power.max_w for s in self.metered_servers)
