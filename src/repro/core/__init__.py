"""The evaluation harness: paper constants, metrics, capacity, reports."""

from . import paperdata
from .capacity import ReplacementEstimate, replacement_estimate
from .metrics import (
    efficiency_ratio, mean_speedup_across_jobs, relative_error,
    speedup_per_doubling, within_band, work_done_per_joule,
)
from .report import format_series, format_table, paper_vs_measured

__all__ = [
    "ReplacementEstimate", "efficiency_ratio", "format_series",
    "format_table", "mean_speedup_across_jobs", "paper_vs_measured",
    "paperdata", "relative_error", "replacement_estimate",
    "speedup_per_doubling", "within_band", "work_done_per_joule",
]
