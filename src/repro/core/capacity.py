"""The Table 2 back-of-the-envelope capacity argument, as code."""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..hardware.server import ServerSpec


@dataclass(frozen=True)
class ReplacementEstimate:
    """How many micro servers replace one brawny server, per resource."""

    by_cpu: int
    by_memory: int
    by_network: int

    @property
    def required(self) -> int:
        """Table 2's bottom line: the max over resources."""
        return max(self.by_cpu, self.by_memory, self.by_network)


def nameplate_cpu_hz(spec: ServerSpec) -> float:
    """Core count x clock, without hyper-threading (Table 2's arithmetic)."""
    # The paper's estimate multiplies physical cores by clock; the
    # profile stores DMIPS, so clock is recovered from the platform.
    clock = {"edison": 500e6, "dell": 2e9}[spec.platform]
    return spec.cpu.cores * clock


def replacement_estimate(micro: ServerSpec,
                         brawny: ServerSpec) -> ReplacementEstimate:
    """Reproduce Table 2: micro servers needed to match one brawny server."""
    return ReplacementEstimate(
        by_cpu=math.ceil(nameplate_cpu_hz(brawny) / nameplate_cpu_hz(micro)),
        by_memory=math.ceil(brawny.memory.capacity_bytes
                            / micro.memory.capacity_bytes),
        by_network=math.ceil(brawny.nic.bandwidth_bps
                             / micro.nic.bandwidth_bps),
    )
