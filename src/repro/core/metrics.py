"""Evaluation metrics: work-done-per-joule, speed-ups, comparisons."""

from __future__ import annotations

import math
from typing import Mapping


def work_done_per_joule(work_units: float, joules: float) -> float:
    """The paper's headline metric."""
    if joules <= 0:
        raise ValueError("joules must be > 0")
    return work_units / joules


def efficiency_ratio(contender_joules: float, baseline_joules: float) -> float:
    """How many times less energy the contender needs for equal work."""
    if contender_joules <= 0 or baseline_joules <= 0:
        raise ValueError("energies must be > 0")
    return baseline_joules / contender_joules


def speedup_per_doubling(times_by_size: Mapping[int, float]) -> float:
    """Mean speed-up when the cluster size doubles (Section 5.3).

    ``times_by_size`` maps cluster size to job time.  Consecutive sizes
    in the paper's ladders differ by ~2x (35/17/8/4, 2/1); each step's
    speed-up is normalised to an exact doubling via the size ratio, and
    the geometric mean over steps is returned.
    """
    if len(times_by_size) < 2:
        raise ValueError("need at least two cluster sizes")
    sizes = sorted(times_by_size)
    steps = []
    for small, big in zip(sizes, sizes[1:]):
        ratio = times_by_size[small] / times_by_size[big]
        size_ratio = big / small
        steps.append(ratio ** (math.log(2) / math.log(size_ratio)))
    product = 1.0
    for step in steps:
        product *= step
    return product ** (1.0 / len(steps))


def mean_speedup_across_jobs(
        per_job_times: Mapping[str, Mapping[int, float]]) -> float:
    """Average of per-job doubling speed-ups (the paper's 1.90 / 2.07)."""
    if not per_job_times:
        raise ValueError("need at least one job")
    speedups = [speedup_per_doubling(times)
                for times in per_job_times.values()]
    return sum(speedups) / len(speedups)


def relative_error(measured: float, expected: float) -> float:
    """Signed relative deviation of a measurement from the paper value."""
    if expected == 0:
        raise ValueError("expected value must be nonzero")
    return (measured - expected) / expected


def within_band(measured: float, expected: float, tolerance: float) -> bool:
    """True when ``measured`` is within ±tolerance of ``expected``."""
    return abs(relative_error(measured, expected)) <= tolerance
