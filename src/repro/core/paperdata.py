"""Every number the paper prints, with provenance.

This module is the single source of truth for the published measurements
of Zhao et al. (PVLDB 9(9), 2016).  Hardware profiles consume the
Section 3/4 capacities, the benchmark harness prints these next to our
simulated results, and ``EXPERIMENTS.md`` is generated from the same
values — so a calibration drift cannot hide.

Naming: ``T`` = table, ``F`` = figure, ``S`` = section of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType

# ---------------------------------------------------------------------------
# Table 2 — nameplate capacities
# ---------------------------------------------------------------------------

EDISON_CORES = 2
EDISON_CORE_HZ = 500e6
EDISON_RAM_BYTES = 1 * 1024 ** 3
EDISON_NIC_BPS = 100e6                     # 100 Mb/s USB adapter

DELL_CORES = 6
DELL_THREADS_PER_CORE = 2                  # hyper-threading -> 12 vcores
DELL_CORE_HZ = 2e9
DELL_RAM_BYTES = 16 * 1024 ** 3
DELL_NIC_BPS = 1e9                         # 1 Gb/s

#: Table 2 bottom row: max(12, 16, 10) Edisons replace one R620.
T2_EDISONS_PER_DELL = 16

# ---------------------------------------------------------------------------
# Table 3 — measured power (watts)
# ---------------------------------------------------------------------------

T3_EDISON_BARE_IDLE_W = 0.36
T3_EDISON_BARE_BUSY_W = 0.75
T3_EDISON_IDLE_W = 1.40                    # including USB Ethernet adapter
T3_EDISON_BUSY_W = 1.68
T3_EDISON_CLUSTER35_IDLE_W = 49.0
T3_EDISON_CLUSTER35_BUSY_W = 58.8
T3_DELL_IDLE_W = 52.0
T3_DELL_BUSY_W = 109.0
T3_DELL_CLUSTER3_IDLE_W = 156.0
T3_DELL_CLUSTER3_BUSY_W = 327.0

#: An integrated Ethernet port would draw ~0.1 W (paper cites FAWN [50]);
#: used by the adapter-power ablation.
INTEGRATED_NIC_W = 0.1

# ---------------------------------------------------------------------------
# Section 4.1 — CPU
# ---------------------------------------------------------------------------

S41_DELL_DMIPS = 11383.0                   # one core, one thread, -O3
S41_EDISON_DMIPS = 632.3
S41_PER_CORE_SPEEDUP = (15.0, 18.0)        # Dell over Edison, sysbench
S41_PER_MACHINE_SPEEDUP = (90.0, 108.0)    # all cores + HT
S41_SYSBENCH_PRIME_LIMIT = 20000
#: Figure 2/3 thread counts on the x axis.
S41_SYSBENCH_THREADS = (1, 2, 4, 8)

# ---------------------------------------------------------------------------
# Section 4.2 — memory bandwidth
# ---------------------------------------------------------------------------

S42_DELL_MEM_BW = 36e9                     # bytes/s
S42_EDISON_MEM_BW = 2.2e9
S42_SATURATION_BLOCK = 256 * 1024          # transfer saturates >= 256 KiB
S42_EDISON_SATURATION_THREADS = 2
S42_DELL_SATURATION_THREADS = 12
S42_BLOCK_SIZES = tuple(2 ** k * 1024 for k in range(0, 11))  # 4 KB..1 MB ->
S42_BLOCK_SIZES = (4096, 16384, 65536, 262144, 1048576)
S42_THREAD_COUNTS = (1, 2, 4, 8, 16)

# ---------------------------------------------------------------------------
# Table 5 — storage I/O (bytes/s unless noted)
# ---------------------------------------------------------------------------

T5_EDISON = MappingProxyType({
    "write_bps": 4.5e6, "buffered_write_bps": 9.3e6,
    "read_bps": 19.5e6, "buffered_read_bps": 737e6,
    "write_latency_s": 18.0e-3, "read_latency_s": 7.0e-3,
})
T5_DELL = MappingProxyType({
    "write_bps": 24.0e6, "buffered_write_bps": 83.2e6,
    "read_bps": 86.1e6, "buffered_read_bps": 3.1e9,
    "write_latency_s": 5.04e-3, "read_latency_s": 0.829e-3,
})

# ---------------------------------------------------------------------------
# Section 4.4 — network
# ---------------------------------------------------------------------------

S44_TCP_BPS = MappingProxyType({
    ("dell", "dell"): 942e6,
    ("dell", "edison"): 93.9e6,
    ("edison", "edison"): 93.9e6,
})
S44_UDP_BPS = MappingProxyType({
    ("dell", "dell"): 948e6,
    ("dell", "edison"): 94.8e6,
    ("edison", "edison"): 94.8e6,
})
S44_RTT_S = MappingProxyType({
    ("dell", "dell"): 0.24e-3,
    ("dell", "edison"): 0.8e-3,
    ("edison", "edison"): 1.3e-3,
})

# ---------------------------------------------------------------------------
# Section 5.1 — web service workload
# ---------------------------------------------------------------------------

#: Table 6 — web/cache server counts per scale factor.
T6_CLUSTERS = MappingProxyType({
    # scale: (edison_web, edison_cache, dell_web, dell_cache)
    "full": (24, 11, 2, 1),
    "1/2": (12, 6, 1, 1),
    "1/4": (6, 3, None, None),
    "1/8": (3, 2, None, None),
})

S51_CONCURRENCY_LEVELS = (8, 16, 32, 64, 128, 256, 512, 1024, 2048)
S51_CACHE_HIT_RATIOS = (0.93, 0.77, 0.60)
#: image-query share -> mean reply size (bytes).
S51_REPLY_SIZES = MappingProxyType({
    0.00: 1500.0, 0.06: 3800.0, 0.10: 5800.0, 0.20: 10000.0,
})
S51_TEST_DURATION_S = 180.0                # ~3 minutes per concurrency level
S51_EDISON_MAX_CONCURRENCY = 1024          # 5xx errors beyond this
S51_DELL_MAX_CONCURRENCY = 2048
S51_PEAK_RPS_LIGHT = 6800.0                # Fig 4, full scale, approx.
S51_HEAVY_TO_LIGHT_RPS = 0.85              # Fig 6 vs Fig 4
S51_EDISON_POWER_RANGE_W = (56.0, 58.0)    # Fig 4 green line
S51_DELL_POWER_RANGE_W = (170.0, 200.0)
S51_ENERGY_EFFICIENCY_RATIO = 3.5          # headline result

#: Peak-throughput per-server utilisation, 20 % images (Section 5.1.2).
S51_PEAK_UTILIZATION = MappingProxyType({
    ("dell", "web"): {"cpu": 0.45, "mem": 0.50, "net_Bps": 60e6},
    ("edison", "web"): {"cpu": 0.86, "mem": 0.25, "net_Bps": 5e6},
    ("dell", "cache"): {"cpu": 0.016, "mem": 0.40, "net_Bps": 50e6},
    ("edison", "cache"): {"cpu": 0.09, "mem": 0.54, "net_Bps": 4e6},
})

#: Table 7 — delay decomposition in ms: rate -> (edison, dell) tuples.
T7_ROWS = (
    # (request_rate, db_ms, cache_ms, total_ms)
    (480, (5.44, 1.61), (4.61, 0.37), (9.18, 1.43)),
    (960, (5.25, 1.56), (9.37, 0.38), (14.79, 1.60)),
    (1920, (5.33, 1.56), (76.7, 0.39), (83.4, 1.73)),
    (3840, (8.74, 1.60), (105.1, 0.46), (114.7, 1.70)),
    (7680, (10.99, 1.98), (212.0, 0.74), (225.1, 2.93)),
)

#: Figure 11 — Dell delay histogram spikes (s); SYN retransmission backoff.
F11_DELAY_SPIKES_S = (1.0, 3.0, 7.0)

# ---------------------------------------------------------------------------
# Section 5.2 — MapReduce
# ---------------------------------------------------------------------------

S52_EDISON_TOTAL_MEM_MB = 960
S52_EDISON_IDLE_MEM_MB = 260
S52_EDISON_DAEMON_MEM_MB = 360             # datanode + node-manager running
S52_EDISON_TASK_MEM_MB = 600
S52_EDISON_AM_MEM_MB = 100
S52_EDISON_VCORES = 2
S52_EDISON_CONTAINER_MB = 300
S52_EDISON_BLOCK_MB = 16
S52_EDISON_REPLICATION = 2

S52_DELL_TOTAL_MEM_MB = 16 * 1024
S52_DELL_DAEMON_MEM_MB = 4 * 1024
S52_DELL_TASK_MEM_MB = 12 * 1024
S52_DELL_AM_MEM_MB = 500
S52_DELL_VCORES = 12
S52_DELL_CONTAINER_MB = 1024
S52_DELL_BLOCK_MB = 64
S52_DELL_REPLICATION = 1

S52_DATA_LOCAL_FRACTION = 0.95
S52_ALLOCATION_LEAD_RATIO = 2.3            # Edison vs Dell container alloc lead
S52_WORDCOUNT_REDUCE_START = {"edison": 0.61, "dell": 0.28}

#: Master (namenode+RM) steady usage on the Dell master, excluded from energy.
S52_MASTER_CPU = 0.01
S52_MASTER_MEM = 0.53

# Job inputs.
WORDCOUNT_INPUT_FILES = 200
WORDCOUNT_INPUT_BYTES = 1 * 1000 ** 3
WORDCOUNT_MAP_OUTPUT_RECORD_BYTES = 10
LOGCOUNT_INPUT_FILES = 500
LOGCOUNT_INPUT_BYTES = 1 * 1000 ** 3
PI_SAMPLES = 10 * 1000 ** 3                # 10 billion
PI_MAPS = {"edison": 70, "dell": 24}
TERASORT_INPUT_BYTES = 10 * 1000 ** 3      # scaled down from 1 TB
TERASORT_BLOCK_MB = 64                     # same on both clusters
TERASORT_MAPS = 168
TERASORT_REDUCES = {"edison": 70, "dell": 24}


@dataclass(frozen=True)
class JobResult:
    """One cell of Table 8: run time (s) and energy (J)."""

    seconds: float
    joules: float

    @property
    def watts(self) -> float:
        """Mean cluster power during the job."""
        return self.joules / self.seconds


#: Table 8 — execution time and energy under different cluster sizes.
#: job -> platform -> cluster size -> JobResult.
T8 = MappingProxyType({
    "wordcount": {
        "edison": {35: JobResult(310, 17670), 17: JobResult(1065, 29485),
                   8: JobResult(1817, 23673), 4: JobResult(3283, 21386)},
        "dell": {2: JobResult(213, 40214), 1: JobResult(310, 30552)},
    },
    "wordcount2": {
        "edison": {35: JobResult(182, 10370), 17: JobResult(270, 7475),
                   8: JobResult(450, 5862), 4: JobResult(1192, 7765)},
        "dell": {2: JobResult(66, 11695), 1: JobResult(93, 8124)},
    },
    "logcount": {
        "edison": {35: JobResult(279, 15903), 17: JobResult(601, 16860),
                   8: JobResult(990, 12898), 4: JobResult(2233, 14546)},
        "dell": {2: JobResult(206, 40803), 1: JobResult(516, 53303)},
    },
    "logcount2": {
        "edison": {35: JobResult(115, 6555), 17: JobResult(118, 3267),
                   8: JobResult(125, 1629), 4: JobResult(162, 1055)},
        "dell": {2: JobResult(59, 9486), 1: JobResult(88, 6905)},
    },
    "pi": {
        "edison": {35: JobResult(200, 11445), 17: JobResult(334, 9247),
                   8: JobResult(577, 7517), 4: JobResult(1076, 7009)},
        "dell": {2: JobResult(50, 9285), 1: JobResult(77, 6878)},
    },
    "terasort": {
        "edison": {35: JobResult(750, 43440), 17: JobResult(1364, 37763),
                   8: JobResult(3736, 48675), 4: JobResult(8220, 53547)},
        "dell": {2: JobResult(331, 64210), 1: JobResult(1336, 111422)},
    },
})

#: Headline energy-efficiency ratios quoted in Section 5.2 / Table 8.
S52_EFFICIENCY_GAINS = MappingProxyType({
    "wordcount": 2.28, "wordcount2": 1.113, "logcount": 2.57,
    "logcount2": 1.447, "pi": 1 / 1.233, "terasort": 1.32,
})

#: Section 5.3 — mean speed-up per cluster-size doubling.
S53_EDISON_MEAN_SPEEDUP = 1.90
S53_DELL_MEAN_SPEEDUP = 2.07

# ---------------------------------------------------------------------------
# Section 6 — TCO (Table 9 & 10)
# ---------------------------------------------------------------------------

T9_EDISON_NODE_COST = 120.0                # $68 module + $15 NIC + $27 SD + $10 switch share
T9_DELL_NODE_COST = 2500.0
T9_ELECTRICITY_PER_KWH = 0.10
T9_LIFETIME_YEARS = 3.0
T9_UTIL_HIGH = 0.75
T9_UTIL_LOW = 0.10
T9_BIGDATA_DELL_UTIL_HIGH = 0.74
T9_BIGDATA_DELL_UTIL_LOW = 0.25

T10 = MappingProxyType({
    ("web", "low"): {"dell": 7948.7, "edison": 4329.5},
    ("web", "high"): {"dell": 8236.8, "edison": 4346.1},
    ("bigdata", "low"): {"dell": 5348.2, "edison": 4352.4},
    ("bigdata", "high"): {"dell": 5495.0, "edison": 4352.4},
})
