"""Plain-text tables and series dumps for the benchmark harness.

Every benchmark prints the paper's value beside the simulated one in a
fixed-width table, so a calibration drift is visible in the bench
output itself.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render a fixed-width text table."""
    if not headers:
        raise ValueError("need at least one column")
    cells = [[str(c) for c in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str,
                  pairs: Sequence[Tuple[float, float]],
                  x_label: str = "x", y_label: str = "y",
                  max_points: int = 40) -> str:
    """Render an (x, y) series compactly, subsampling long traces."""
    if max_points < 2:
        raise ValueError("max_points must be >= 2")
    points = list(pairs)
    if len(points) > max_points:
        step = (len(points) - 1) / (max_points - 1)
        points = [points[round(i * step)] for i in range(max_points)]
    body = "  ".join(f"{x:g}:{y:g}" for x, y in points)
    return f"{name} [{x_label} -> {y_label}] {body}"


def paper_vs_measured(rows: Sequence[Tuple[str, float, float]],
                      title: str, unit: str = "") -> str:
    """A three-column comparison table with relative error."""
    table_rows = []
    for label, paper_value, measured in rows:
        err = (measured - paper_value) / paper_value * 100 \
            if paper_value else float("nan")
        table_rows.append((label, f"{paper_value:g}{unit}",
                           f"{measured:g}{unit}", f"{err:+.1f}%"))
    return format_table(("case", "paper", "simulated", "error"),
                        table_rows, title=title)
