"""Durability: partitions, adaptive detection, re-replication, the bill.

The paper's reliability argument (Section 6) is a bet: replicated HDFS
on 35 wimpy nodes rides out failures that would cripple a 3-node
brawny cluster.  This package stress-tests that bet past single-node
crashes, into the failure class that actually separates rack-scale
micro-server enclosures from big boxes — *network partitions*:

* rack/trunk cuts (``partition``, ``switch_down`` fault kinds) sever
  reachability without killing nodes, producing real split-brain:
  zombie duplicate attempts on the minority side, YARN re-execution on
  the majority, and heal-time reconciliation that kills duplicates and
  re-registers survivors without double-counting work or downtime;
* a phi-accrual failure detector (:class:`repro.faults.PhiAccrualDetector`)
  fed by seeded heartbeat streams replaces fixed-expiry guessing, so
  dead and merely-unreachable nodes are told apart adaptively;
* a NameNode-style repair loop (:class:`repro.mapreduce.hdfs.ReplicationMonitor`)
  detects under-replication on confirmed loss and re-replicates over
  the real ToR/trunk topology through a bandwidth throttle;
* the :class:`DurabilityLedger` bills it all — blocks-at-risk series,
  time-under-replicated integrals, data-loss events, repair and
  split-brain joules (:class:`repro.energy.RepairCosts`) — and the
  committed durability day reproduces why rack-aware r=2 is the knee
  on the Edison cluster.

Everything is strictly opt-in.  With durability disabled (the
default) no detector, feeder, monitor, ledger or sampler exists and
every run is bit-identical to a build without this package — the same
hard guarantee `repro.trace`, `repro.telemetry`, `repro.faults`,
`repro.resilience`, `repro.autoscale`, `repro.carbon` and
`repro.dvfs` make.
"""

from .config import DurabilityConfig, PhiConfig, RepairConfig
from .ledger import DurabilityLedger
from .plane import attach_job

__all__ = [
    "DAY_SEED", "DurabilityArm", "DurabilityConfig", "DurabilityLedger",
    "DurabilityPlan", "DurabilityReport", "PhiConfig", "RepairConfig",
    "attach_job", "durability_experiment",
]

_REPORT_NAMES = ("DAY_SEED", "DurabilityArm", "DurabilityPlan",
                 "DurabilityReport", "durability_experiment")


def __getattr__(name):
    # Deferred: the report drives whole MapReduce runs — keep the
    # heavy imports off the config/ledger path.
    if name in _REPORT_NAMES:
        from . import report
        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
