"""Knobs for the durability plane.

Frozen dataclasses with validation, mirroring :mod:`repro.dvfs.config`:
a config can be serialised into the committed durability day, and an
``enabled=False`` :class:`DurabilityConfig` (the default) is the
explicit "PR-9 behaviour" marker — with it, no phi detector, heartbeat
feeder, repair monitor, ledger or sampler exists, keeping runs
bit-identical to a build without this package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping


@dataclass(frozen=True)
class PhiConfig:
    """The phi-accrual failure detector's knobs.

    ``threshold`` is the suspicion level (Hayashibara's phi): 8 means
    "the odds this silence is ordinary jitter are 1 in 10^8".
    ``heartbeat_s`` is the NodeManager heartbeat period the seeded
    feeder streams jitter around; ``window`` and ``min_std_s`` bound
    the inter-arrival history the detector fits.  ``enabled=False``
    falls back to YARN's fixed heartbeat-count expiry.
    """

    enabled: bool = True
    threshold: float = 8.0
    window: int = 64
    min_std_s: float = 0.05
    heartbeat_s: float = 1.0

    def __post_init__(self):
        if self.threshold <= 0:
            raise ValueError("threshold must be > 0")
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if self.min_std_s <= 0 or self.heartbeat_s <= 0:
            raise ValueError("min_std_s and heartbeat_s must be > 0")


@dataclass(frozen=True)
class RepairConfig:
    """The NameNode-style re-replication loop's knobs.

    ``confirm_s`` is the fixed loss-confirmation window used when no
    phi detector is armed (``dfs.namenode.heartbeat.recheck`` in
    spirit); ``throttle_bps`` caps aggregate repair traffic like
    ``dfs.datanode.balance.bandwidthPerSec``; ``max_streams`` bounds
    concurrent block copies.
    """

    enabled: bool = True
    confirm_s: float = 2.0
    throttle_bps: float = 200e6
    max_streams: int = 2

    def __post_init__(self):
        if self.confirm_s < 0:
            raise ValueError("confirm_s must be >= 0")
        if self.throttle_bps <= 0:
            raise ValueError("throttle_bps must be > 0")
        if self.max_streams < 1:
            raise ValueError("max_streams must be >= 1")


@dataclass(frozen=True)
class DurabilityConfig:
    """Top-level switch; off by default (bit-identical to PR 9)."""

    enabled: bool = False
    rack_aware: bool = False
    phi: PhiConfig = field(default_factory=PhiConfig)
    repair: RepairConfig = field(default_factory=RepairConfig)
    sample_interval_s: float = 1.0

    def __post_init__(self):
        if self.sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be > 0")

    @classmethod
    def disabled(cls) -> "DurabilityConfig":
        """The explicit everything-off marker."""
        return cls(enabled=False)

    @classmethod
    def full(cls, rack_aware: bool = True, **overrides
             ) -> "DurabilityConfig":
        """Phi detection + repair + ledger, the whole plane."""
        return cls(enabled=True, rack_aware=rack_aware, **overrides)

    # -- (de)serialisation, for the committed day -------------------------

    def to_dict(self) -> Dict:
        return {
            "enabled": self.enabled,
            "rack_aware": self.rack_aware,
            "phi": {"enabled": self.phi.enabled,
                    "threshold": self.phi.threshold,
                    "window": self.phi.window,
                    "min_std_s": self.phi.min_std_s,
                    "heartbeat_s": self.phi.heartbeat_s},
            "repair": {"enabled": self.repair.enabled,
                       "confirm_s": self.repair.confirm_s,
                       "throttle_bps": self.repair.throttle_bps,
                       "max_streams": self.repair.max_streams},
            "sample_interval_s": self.sample_interval_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "DurabilityConfig":
        return cls(enabled=data["enabled"],
                   rack_aware=data.get("rack_aware", False),
                   phi=PhiConfig(**data.get("phi", {})),
                   repair=RepairConfig(**data.get("repair", {})),
                   sample_interval_s=data.get("sample_interval_s", 1.0))
