"""The durability ledger: blocks at risk, data lost, joules spent.

One :class:`DurabilityLedger` watches a run's HDFS block map and bills
everything the cluster does to keep *data* alive rather than compute:

* a seeded-cadence **sampler** walks the NameNode block census every
  ``sample_interval_s``, recording blocks-at-risk series (optionally
  into the telemetry TSDB), integrating *time under-replicated* and
  *time unavailable* in block-seconds, and asserting the conservation
  invariant ``created == live + lost`` at every sample point;
* **loss events** are stamped the instant the census first sees a
  block with no intact copy anywhere — the moment durability, not
  availability, failed;
* **repair joules** arrive from the
  :class:`~repro.mapreduce.hdfs.ReplicationMonitor` per completed
  block copy (disk + wire activity on both ends), and **split-brain
  joules** from the job runner per zombie attempt killed at heal, so
  the run's :class:`~repro.energy.RepairCosts` breakdown is exact.

The ledger spawns nothing and draws no RNG at construction; the
sampler process is started by :func:`repro.durability.attach_job`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..energy import RepairCosts

#: Ledger categories, mirroring :class:`repro.energy.RepairCosts`.
CATEGORIES = ("re_replication", "split_brain")


class DurabilityLedger:
    """Durability accounting for one simulated run."""

    def __init__(self, sim, hdfs, telemetry=None,
                 sample_interval_s: float = 1.0):
        if sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be > 0")
        self.sim = sim
        self.hdfs = hdfs
        self.telemetry = telemetry
        self.sample_interval_s = sample_interval_s
        self.joules: Dict[str, float] = {c: 0.0 for c in CATEGORIES}
        self.node_joules: Dict[str, float] = {}
        self.repairs = 0
        self.repair_bytes = 0.0
        #: ``(t, under_replicated, unavailable, lost)`` per sample.
        self.samples: List[tuple] = []
        #: ``{"t", "blocks", "block_ids"}`` per first-seen loss.
        self.loss_events: List[Dict] = []
        self.under_replicated_block_s = 0.0
        self.unavailable_block_s = 0.0
        self.max_under_replicated = 0
        self.conservation_violations = 0
        self._known_lost: set = set()
        self._last_sample_t: Optional[float] = None

    # -- energy attribution ----------------------------------------------

    @staticmethod
    def marginal_io_watts(server) -> float:
        """Marginal power of pegged disk + NIC under the linear model.

        The component weights say how much of the idle-to-busy power
        swing storage and wire activity can claim; a repair stream
        drives both on whichever end it touches.
        """
        power = server.spec.power
        weights = power.weights
        return ((power.busy_w - power.idle_w)
                * (weights["disk"] + weights["net"]))

    def charge(self, category: str, node: str, seconds: float,
               watts: float) -> None:
        """Attribute ``seconds`` of durability work on ``node``."""
        if category not in self.joules:
            raise ValueError(f"unknown ledger category {category!r}")
        if seconds < 0 or watts < 0:
            raise ValueError("seconds and watts must be >= 0")
        joules = seconds * watts
        self.joules[category] += joules
        self.node_joules[node] = self.node_joules.get(node, 0.0) + joules

    def on_repair(self, block, source: str, target: str,
                  seconds: float, nbytes: float) -> None:
        """One block copy completed: bill both ends of the stream."""
        self.repairs += 1
        self.repair_bytes += nbytes
        datanodes = self.hdfs.datanodes
        self.charge("re_replication", source, seconds,
                    self.marginal_io_watts(datanodes[source]))
        self.charge("re_replication", target, seconds,
                    self.marginal_io_watts(datanodes[target]))

    # -- the census sampler ----------------------------------------------

    def sample(self) -> Dict[str, int]:
        """Walk the block map once; returns the census it recorded."""
        now = self.sim.now
        health = self.hdfs.health_summary()
        if (health["blocks_created"]
                != health["blocks_live"] + health["blocks_lost"]):
            self.conservation_violations += 1
        if self._last_sample_t is not None and self.samples:
            dt = now - self._last_sample_t
            _t, under, unavailable, _lost = self.samples[-1]
            self.under_replicated_block_s += under * dt
            self.unavailable_block_s += unavailable * dt
        self.samples.append((now, health["under_replicated"],
                             health["unavailable"],
                             health["blocks_lost"]))
        self._last_sample_t = now
        self.max_under_replicated = max(self.max_under_replicated,
                                        health["under_replicated"])
        lost_now = set(self.hdfs.lost_block_ids())
        fresh = lost_now - self._known_lost
        if fresh:
            self._known_lost |= lost_now
            self.loss_events.append({"t": now, "blocks": len(fresh),
                                     "block_ids": sorted(fresh)})
            if self.sim.trace is not None:
                self.sim.trace.instant(
                    "hdfs.data_loss", category="durability",
                    blocks=len(fresh), block_ids=sorted(fresh))
        if self.telemetry is not None:
            db = self.telemetry.db
            db.record(now, "hdfs_blocks_under_replicated",
                      float(health["under_replicated"]))
            db.record(now, "hdfs_blocks_unavailable",
                      float(health["unavailable"]))
            db.record(now, "hdfs_blocks_lost",
                      float(health["blocks_lost"]))
        return health

    def run(self, until: Optional[float] = None):
        """Process generator: census every ``sample_interval_s``."""
        while until is None or self.sim.now <= until:
            self.sample()
            yield self.sim.timeout(self.sample_interval_s)

    # -- results ----------------------------------------------------------

    @property
    def blocks_lost(self) -> int:
        return len(self._known_lost)

    @property
    def total_joules(self) -> float:
        return sum(self.joules.values())

    def to_repair_costs(self) -> RepairCosts:
        return RepairCosts(
            re_replication_j=self.joules["re_replication"],
            split_brain_j=self.joules["split_brain"])

    def summary(self) -> Dict[str, object]:
        return {
            "joules": {k: round(v, 6) for k, v in self.joules.items()},
            "node_joules": {k: round(v, 6)
                            for k, v in sorted(self.node_joules.items())},
            "repairs": self.repairs,
            "repair_bytes": self.repair_bytes,
            "samples": len(self.samples),
            "under_replicated_block_s":
                round(self.under_replicated_block_s, 6),
            "unavailable_block_s": round(self.unavailable_block_s, 6),
            "max_under_replicated": self.max_under_replicated,
            "blocks_lost": self.blocks_lost,
            "loss_events": list(self.loss_events),
            "conservation_violations": self.conservation_violations,
        }
