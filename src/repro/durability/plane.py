"""Wiring the durability plane onto a MapReduce run.

:func:`attach_job` is the one integration point callers need.  With a
``None`` or disabled config it returns ``None`` without touching the
runner — the bit-identity contract every opt-in package here makes.
Enabled, it arms (in dependency order):

1. **rack-aware placement** — flips the HDFS default-placement flag
   *before* any input is staged, so the committed day's placement arms
   differ only in where replicas land;
2. **phi-accrual detection** — one
   :class:`~repro.faults.PhiAccrualDetector` shared by the YARN expiry
   path and the repair loop's loss confirmation, fed by per-slave
   heartbeat processes on seeded jittered streams
   (``durability.phi.<node>``), which skip a beat whenever the node is
   down *or severed* — exactly the signal a partition corrupts;
3. **the repair loop** — :meth:`~repro.mapreduce.hdfs.Hdfs.enable_repair`
   with the config's throttle, billing the ledger per block copy;
4. **the ledger and its census sampler** — the run's durability bill
   and blocks-at-risk record.
"""

from __future__ import annotations

from typing import Optional

from ..faults.phi import PhiAccrualDetector
from ..sim.rng import heartbeat_jitter
from .config import DurabilityConfig
from .ledger import DurabilityLedger


def _heartbeat_feeder(sim, detector, node: str, rng, base_s: float,
                      until: Optional[float]):
    """Process generator: one NodeManager's heartbeat stream.

    Beats arrive with seeded jitter so the detector has a real
    inter-arrival distribution to fit.  A beat is *dropped* (not
    delayed) while the node is down or unreachable — silence is the
    only way the RM side learns anything is wrong.
    """
    while until is None or sim.now <= until:
        yield heartbeat_jitter(rng, base_s, low=0.9, high=1.1)
        faults = sim.faults
        if faults is None or (faults.is_up(node)
                              and faults.is_reachable(node)):
            detector.beat(node)


def attach_job(runner, config: Optional[DurabilityConfig],
               telemetry=None,
               until: Optional[float] = None) -> Optional[DurabilityLedger]:
    """Arm the durability plane on a JobRunner, or do nothing.

    Must be called *before* :meth:`~repro.mapreduce.JobRunner.run`
    stages input — placement policy is decided at write time.  Returns
    the armed :class:`DurabilityLedger`, or ``None`` when ``config`` is
    ``None``/disabled (in which case the runner is untouched).
    """
    if config is None or not config.enabled:
        return None
    if runner.hdfs.files:
        raise RuntimeError("attach the durability plane before staging "
                           "input: placement policy is decided at write "
                           "time")
    runner.hdfs.rack_aware = config.rack_aware
    ledger = DurabilityLedger(runner.sim, runner.hdfs,
                              telemetry=telemetry,
                              sample_interval_s=config.sample_interval_s)
    runner.durability_ledger = ledger
    detector = None
    if config.phi.enabled:
        detector = PhiAccrualDetector(
            runner.sim, threshold=config.phi.threshold,
            window=config.phi.window, min_std_s=config.phi.min_std_s,
            expected_s=config.phi.heartbeat_s)
        runner._phi = detector
        for server in runner.slave_servers:
            node = server.name
            rng = runner.rng.stream(f"durability.phi.{node}")
            runner.sim.process(
                _heartbeat_feeder(runner.sim, detector, node, rng,
                                  config.phi.heartbeat_s, until),
                name=f"heartbeat-{node}")
    if config.repair.enabled:
        runner.hdfs.enable_repair(
            confirm_s=config.repair.confirm_s,
            throttle_bps=config.repair.throttle_bps,
            max_streams=config.repair.max_streams,
            ledger=ledger, detector=detector)
    runner.sim.process(ledger.run(until), name="durability-ledger")
    return ledger
