"""The durability day: placement × replication × platform under fire.

One committed seeded day — a rack losing its ToR switch, a two-node
trunk partition, then a dead disk — runs against both platforms with
rack-aware and rack-oblivious placement at replication 1, 2 and 3.
Every arm reports the paper's currencies (seconds, joules) plus the
durability bill: blocks lost, block-seconds at risk, repair and
split-brain joules, and the reconciliation counters that prove the
split-brain cleanup never double-counts work.

The headline is the knee the paper's Section 6 reliability argument
picks: replication 1 loses data the moment a disk dies, replication 2
with rack-aware placement rides out every fault in the day at a modest
repair premium, and replication 3 pays real extra joules on the
35-node-class Edison cluster for no additional durability — which is
why r=2-on-Edison is the knee.

A per-platform *control* arm replays the same day with the partition
kinds stripped: partitions must add unreachable-seconds but **zero**
downtime-seconds, and the control's downtime must match the fault
arms' exactly — the ledger tolerance the smoke asserts.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..faults.models import PARTITION_KINDS, FaultPlan
from .config import DurabilityConfig, PhiConfig, RepairConfig

#: Seed of the committed durability day (the date this day was cut).
DAY_SEED = 20260809

PLATFORMS = ("edison", "dell")


@dataclass(frozen=True)
class DurabilityPlan:
    """One committed, seeded durability day.

    Fault node/rack names may carry a ``{platform}`` placeholder —
    the cluster builders prefix every slave and rack with the platform
    name, and one committed day must address both testbeds.
    """

    name: str
    faults: FaultPlan
    slaves: int = 8
    racks: int = 2
    job: str = "wordcount2"
    replications: Tuple[int, ...] = (1, 2, 3)
    settle_s: float = 30.0
    seed: int = DAY_SEED
    detection_s: float = 0.25
    phi: PhiConfig = field(default_factory=PhiConfig)
    repair: RepairConfig = field(default_factory=RepairConfig)
    sample_interval_s: float = 1.0

    def __post_init__(self):
        object.__setattr__(self, "replications",
                           tuple(self.replications))
        if self.faults.is_empty:
            raise ValueError("a durability day needs faults to survive")
        if self.slaves < 2:
            raise ValueError("need >= 2 slaves")
        if not 2 <= self.racks <= self.slaves:
            raise ValueError("need >= 2 racks (rack-awareness is the "
                             "point) and <= one per slave")
        if not self.replications or any(r < 1 for r in self.replications):
            raise ValueError("replications must be positive")
        if max(self.replications) > self.slaves:
            raise ValueError("replication cannot exceed slave count")
        if self.settle_s < 0 or self.detection_s < 0:
            raise ValueError("settle_s and detection_s must be >= 0")
        if self.sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be > 0")

    def faults_for(self, platform: str) -> FaultPlan:
        """The committed faults with ``{platform}`` names resolved."""
        resolved = tuple(
            dataclasses.replace(
                f, node=f.node.format(platform=platform),
                rack=f.rack.format(platform=platform),
                nodes=tuple(n.format(platform=platform)
                            for n in f.nodes))
            for f in self.faults.faults)
        return FaultPlan(faults=resolved, recurring=self.faults.recurring)

    def config(self, rack_aware: bool) -> DurabilityConfig:
        return DurabilityConfig(
            enabled=True, rack_aware=rack_aware, phi=self.phi,
            repair=self.repair,
            sample_interval_s=self.sample_interval_s)

    # -- (de)serialisation ------------------------------------------------

    def to_dict(self) -> Dict:
        return {"name": self.name, "faults": self.faults.to_dict(),
                "slaves": self.slaves, "racks": self.racks,
                "job": self.job,
                "replications": list(self.replications),
                "settle_s": self.settle_s, "seed": self.seed,
                "detection_s": self.detection_s,
                "phi": {"enabled": self.phi.enabled,
                        "threshold": self.phi.threshold,
                        "window": self.phi.window,
                        "min_std_s": self.phi.min_std_s,
                        "heartbeat_s": self.phi.heartbeat_s},
                "repair": {"enabled": self.repair.enabled,
                           "confirm_s": self.repair.confirm_s,
                           "throttle_bps": self.repair.throttle_bps,
                           "max_streams": self.repair.max_streams},
                "sample_interval_s": self.sample_interval_s}

    @classmethod
    def from_dict(cls, data: Mapping) -> "DurabilityPlan":
        return cls(name=data["name"],
                   faults=FaultPlan.from_dict(data["faults"]),
                   slaves=data["slaves"], racks=data["racks"],
                   job=data["job"],
                   replications=tuple(data["replications"]),
                   settle_s=data["settle_s"], seed=data["seed"],
                   detection_s=data["detection_s"],
                   phi=PhiConfig(**data["phi"]),
                   repair=RepairConfig(**data["repair"]),
                   sample_interval_s=data["sample_interval_s"])

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "DurabilityPlan":
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


@dataclass(frozen=True)
class DurabilityArm:
    """One placement/replication choice living through the day."""

    platform: str
    rack_aware: bool
    replication: int
    control: bool = False
    job_failed: bool = False
    job_seconds: float = 0.0
    day_seconds: float = 0.0
    joules: float = 0.0
    blocks_created: int = 0
    blocks_lost: int = 0
    loss_events: int = 0
    under_replicated_block_s: float = 0.0
    unavailable_block_s: float = 0.0
    max_under_replicated: int = 0
    conservation_violations: int = 0
    repairs_completed: int = 0
    repairs_deferred: int = 0
    repair_bytes: float = 0.0
    re_replication_j: float = 0.0
    split_brain_j: float = 0.0
    zombies_started: int = 0
    duplicate_kills: int = 0
    reregistered: int = 0
    downtime_s: float = 0.0
    unreachable_s: float = 0.0
    same_rack_read_bytes: float = 0.0
    cross_rack_read_bytes: float = 0.0

    @property
    def label(self) -> str:
        placement = "rack-aware" if self.rack_aware else "oblivious"
        tag = "/control" if self.control else ""
        return f"{self.platform}/{placement}/r{self.replication}{tag}"

    @property
    def durable(self) -> bool:
        return self.blocks_lost == 0 and not self.job_failed

    @property
    def same_rack_read_fraction(self) -> Optional[float]:
        total = self.same_rack_read_bytes + self.cross_rack_read_bytes
        if total <= 0:
            return None
        return self.same_rack_read_bytes / total

    def to_dict(self) -> Dict:
        return {k: getattr(self, k)
                for k in (f.name for f in dataclasses.fields(self))} | {
                    "label": self.label,
                    "durable": self.durable,
                    "same_rack_read_fraction":
                        self.same_rack_read_fraction}

    @classmethod
    def from_dict(cls, data: Mapping) -> "DurabilityArm":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


@dataclass(frozen=True)
class DurabilityReport:
    """The whole day, every arm, plus the knee verdict."""

    plan_name: str
    detail: str
    arms: Tuple[DurabilityArm, ...]
    controls: Tuple[DurabilityArm, ...] = ()

    def arm(self, platform: str, rack_aware: bool,
            replication: int) -> DurabilityArm:
        for arm in self.arms:
            if (arm.platform == platform
                    and arm.rack_aware == rack_aware
                    and arm.replication == replication):
                return arm
        raise KeyError(
            f"no arm {platform}/rack_aware={rack_aware}/r{replication}")

    def control(self, platform: str) -> DurabilityArm:
        for arm in self.controls:
            if arm.platform == platform:
                return arm
        raise KeyError(f"no control arm for {platform}")

    def knee(self, platform: str) -> Optional[int]:
        """Smallest rack-aware replication that lost nothing all day."""
        for r in sorted({a.replication for a in self.arms
                         if a.platform == platform and a.rack_aware}):
            if self.arm(platform, True, r).durable:
                return r
        return None

    def partition_downtime_clean(self, tol_s: float = 1e-6) -> bool:
        """Partitions add unreachable-seconds but zero downtime.

        Each platform's fault arms must match the no-partition control
        on downtime within ``tol_s`` — the split-brain machinery never
        books a live (merely severed) node as down.
        """
        for control in self.controls:
            peer = self.arm(control.platform, control.rack_aware,
                            control.replication)
            if abs(peer.downtime_s - control.downtime_s) > tol_s:
                return False
        return True

    def to_dict(self) -> Dict:
        return {"plan_name": self.plan_name, "detail": self.detail,
                "arms": [a.to_dict() for a in self.arms],
                "controls": [a.to_dict() for a in self.controls],
                "knee": {p: self.knee(p) for p in
                         sorted({a.platform for a in self.arms})},
                "partition_downtime_clean":
                    self.partition_downtime_clean()}

    @classmethod
    def from_dict(cls, data: Mapping) -> "DurabilityReport":
        return cls(plan_name=data["plan_name"], detail=data["detail"],
                   arms=tuple(DurabilityArm.from_dict(a)
                              for a in data["arms"]),
                   controls=tuple(DurabilityArm.from_dict(a)
                                  for a in data.get("controls", ())))

    def lines(self) -> List[str]:
        out = [f"Durability day — {self.plan_name} ({self.detail})"]
        out.append(f"  {'arm':30s} {'job':>7s} {'energy':>9s} "
                   f"{'lost':>5s} {'risk b·s':>9s} {'repairs':>8s} "
                   f"{'repair J':>9s} {'zombie J':>9s}")
        for arm in (*self.arms, *self.controls):
            job = "FAIL" if arm.job_failed else f"{arm.job_seconds:.0f} s"
            out.append(
                f"  {arm.label:30s} {job:>7s} {arm.joules:>7.0f} J "
                f"{arm.blocks_lost:>5d} "
                f"{arm.under_replicated_block_s:>9.1f} "
                f"{arm.repairs_completed:>8d} "
                f"{arm.re_replication_j:>9.1f} "
                f"{arm.split_brain_j:>9.1f}")
        for platform in sorted({a.platform for a in self.arms}):
            knee = self.knee(platform)
            r1 = None
            try:
                r1 = self.arm(platform, True, 1)
            except KeyError:
                pass
            if knee is None:
                out.append(f"  verdict [{platform}]: no replication "
                           f"level survived the day")
                continue
            lost = f"{r1.blocks_lost} block(s)" if r1 is not None else "data"
            line = (f"  verdict [{platform}]: r={knee} rack-aware is the "
                    f"knee — r=1 lost {lost}")
            if knee + 1 in {a.replication for a in self.arms
                            if a.platform == platform and a.rack_aware}:
                above = self.arm(platform, True, knee + 1)
                base = self.arm(platform, True, knee)
                if base.joules > 0:
                    extra = (above.joules / base.joules - 1.0) * 100.0
                    line += (f", r={knee + 1} pays {extra:+.1f}% energy "
                             f"for nothing more")
            out.append(line)
        clean = self.partition_downtime_clean()
        out.append("  reconciliation: partitions added "
                   + ("zero downtime (clean)" if clean
                      else "DOWNTIME — split-brain accounting leak"))
        return out


# -- running the day -------------------------------------------------------


def _run_arm(plan: DurabilityPlan, platform: str, rack_aware: bool,
             replication: int, faults: FaultPlan, control: bool = False,
             trace=None) -> DurabilityArm:
    from ..faults import FaultInjector
    from ..mapreduce import JOB_FACTORIES, JobRunner
    from ..mapreduce.runtime import JobFailed
    from .plane import attach_job

    spec, config = JOB_FACTORIES[plan.job](platform, plan.slaves)
    config = dataclasses.replace(config, replication=replication)
    runner = JobRunner(platform, plan.slaves, config=config,
                       seed=plan.seed, racks=plan.racks, trace=trace)
    injector = FaultInjector(runner.cluster, faults,
                             detection_s=plan.detection_s)
    ledger = attach_job(runner, plan.config(rack_aware))
    job_failed = False
    job_seconds = 0.0
    try:
        report = runner.run(spec)
        job_seconds = report.seconds
        runner.sim.run(until=runner.sim.now + plan.settle_s)
        runner.meter.sample()
    except JobFailed:
        # Data a job needs is gone for good (r=1 and a dead disk);
        # real Hadoop fails the job, so the arm records exactly that.
        job_failed = True
        ledger.sample()             # final census: stamp the loss
    day_seconds = runner.sim.now
    monitor = runner.hdfs.monitor
    health = runner.hdfs.health_summary()
    counters = runner.partition_counters
    slaves = [s.name for s in runner.slave_servers]
    return DurabilityArm(
        platform=platform, rack_aware=rack_aware,
        replication=replication, control=control,
        job_failed=job_failed, job_seconds=job_seconds,
        day_seconds=day_seconds,
        joules=runner.meter.energy_joules(),
        blocks_created=health["blocks_created"],
        blocks_lost=ledger.blocks_lost,
        loss_events=len(ledger.loss_events),
        under_replicated_block_s=ledger.under_replicated_block_s,
        unavailable_block_s=ledger.unavailable_block_s,
        max_under_replicated=ledger.max_under_replicated,
        conservation_violations=ledger.conservation_violations,
        repairs_completed=monitor.repairs_completed if monitor else 0,
        repairs_deferred=monitor.repairs_deferred if monitor else 0,
        repair_bytes=ledger.repair_bytes,
        re_replication_j=ledger.joules["re_replication"],
        split_brain_j=ledger.joules["split_brain"],
        zombies_started=counters["zombies_started"],
        duplicate_kills=counters["duplicate_kills"],
        reregistered=counters["reregistered"],
        downtime_s=sum(injector.downtime(n, until=day_seconds)
                       for n in slaves),
        unreachable_s=sum(injector.unreachable_time(n, until=day_seconds)
                          for n in slaves),
        same_rack_read_bytes=runner.hdfs.same_rack_read_bytes,
        cross_rack_read_bytes=runner.hdfs.cross_rack_read_bytes)


def durability_experiment(plan: DurabilityPlan,
                          platforms: Tuple[str, ...] = PLATFORMS,
                          controls: bool = True,
                          trace=None) -> DurabilityReport:
    """Run the committed day: every placement × replication × platform.

    ``controls`` adds one arm per platform replaying the day with the
    partition kinds stripped (rack-aware, highest replication) — the
    downtime reference :meth:`DurabilityReport.partition_downtime_clean`
    compares against.
    """
    arms = tuple(
        _run_arm(plan, platform, rack_aware, replication,
                 plan.faults_for(platform), trace=trace)
        for platform in platforms
        for rack_aware in (False, True)
        for replication in plan.replications)
    control_arms = ()
    if controls:
        top = max(plan.replications)
        control_arms = tuple(
            _run_arm(plan, platform, True, top,
                     plan.faults_for(platform).without_kinds(
                         PARTITION_KINDS),
                     control=True, trace=trace)
            for platform in platforms)
    kinds = sorted({f.kind for f in plan.faults.faults})
    return DurabilityReport(
        plan_name=plan.name,
        detail=f"{plan.slaves} slaves in {plan.racks} racks, "
               f"{plan.job}, faults {', '.join(kinds)}, "
               f"seed {plan.seed}",
        arms=arms, controls=control_arms)
