"""DVFS: P-state governors and the energy-proportionality scorecard.

The paper measures both platforms at nominal frequency; its Table 3
power models show why that leaves energy on the table — a mostly-idle
server still burns its full busy-power slope on every request.  This
package adds the knob real kernels turn: discrete P-states on every
CPU (:class:`~repro.hardware.PState`, declared per platform in the
hardware profiles), three cpufreq-style governors (``performance``,
``powersave``, ``ondemand``) actuated by a :class:`DvfsPlane` that
reads node utilisation from the telemetry TSDB, and an
energy-proportionality scorecard that ladders a deployment from 10 %
to 100 % load to report dynamic range, proportionality gap and work
per joule.

Everything is strictly opt-in.  With DVFS disabled (the default) no
plane, governor or extra process exists and every run is bit-identical
to a build without this package — the same hard guarantee
`repro.trace`, `repro.telemetry`, `repro.faults`, `repro.resilience`,
`repro.autoscale` and `repro.carbon` make.
"""

from .config import GOVERNOR_KINDS, DvfsConfig, GovernorConfig
from .governor import (OndemandGovernor, PerformanceGovernor,
                       PowersaveGovernor, make_governor)
from .plane import DvfsPlane, attach_job, attach_web
from .scorecard import (DVFS_SEED, LOAD_FRACTIONS, LoadPoint,
                        ProportionalityScorecard, measure_proportionality)

__all__ = [
    "DVFS_SEED", "DvfsArm", "DvfsConfig", "DvfsPlan", "DvfsPlane",
    "DvfsReport", "GOVERNOR_KINDS", "GovernorConfig", "LOAD_FRACTIONS",
    "LoadPoint", "OndemandGovernor", "PerformanceGovernor",
    "PowersaveGovernor", "ProportionalityScorecard", "attach_job",
    "attach_web", "dvfs_experiment", "make_governor",
    "measure_proportionality",
]

_REPORT_NAMES = ("DvfsArm", "DvfsPlan", "DvfsReport", "dvfs_experiment")


def __getattr__(name):
    # Deferred: report builds on repro.telemetry and repro.web's
    # deployment surface — keep the heavy imports off the config path.
    if name in _REPORT_NAMES:
        from . import report
        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
