"""Knobs for the DVFS plane.

Frozen dataclasses with validation, mirroring
:mod:`repro.autoscale.config`: a config can be serialised into the
committed sweep plan, and an ``enabled=False`` :class:`DvfsConfig`
(the default) is the explicit "nominal frequency" marker — with it, no
plane is constructed, no process spawned, no P-state touched, keeping
runs bit-identical to a build without this package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

#: The governors this package implements, in the cpufreq tradition.
GOVERNOR_KINDS = ("performance", "powersave", "ondemand")


@dataclass(frozen=True)
class GovernorConfig:
    """One frequency policy's knobs.

    The static governors (``performance``, ``powersave``) pin every
    governed CPU to one end of its P-state table and need no further
    tuning.  ``ondemand`` re-evaluates each node every
    ``sampling_interval_s`` against its telemetry-scraped CPU
    utilisation averaged over ``metric_window_s``: at or above
    ``up_threshold`` it jumps straight to P0 (the Linux ondemand
    behaviour — latency is on the line, do not climb gradually), at or
    below ``down_threshold`` it steps down one state.  The thresholds
    must leave a hold band wide enough that a down-step cannot
    immediately re-trigger the up rule: stepping down one state divides
    measurable utilisation by that state's frequency ratio, so
    stability needs ``down_threshold / step_ratio < up_threshold``
    (0.30 / 0.375 with the default tables and thresholds).
    """

    kind: str = "ondemand"
    sampling_interval_s: float = 0.5
    up_threshold: float = 0.80
    down_threshold: float = 0.30
    metric_window_s: float = 1.0

    def __post_init__(self):
        if self.kind not in GOVERNOR_KINDS:
            raise ValueError(f"unknown governor kind {self.kind!r}; "
                             f"choose from {GOVERNOR_KINDS}")
        if self.sampling_interval_s <= 0:
            raise ValueError("sampling_interval_s must be > 0")
        if not (0.0 <= self.down_threshold < self.up_threshold <= 1.0):
            raise ValueError("need 0 <= down_threshold < up_threshold <= 1")
        if self.metric_window_s <= 0:
            raise ValueError("metric_window_s must be > 0")


@dataclass(frozen=True)
class DvfsConfig:
    """Top-level switch; off by default (nominal P0, bit-identical)."""

    enabled: bool = False
    governor: GovernorConfig = field(default_factory=GovernorConfig)

    @classmethod
    def disabled(cls) -> "DvfsConfig":
        """The explicit nominal-frequency marker."""
        return cls(enabled=False)

    @classmethod
    def performance(cls) -> "DvfsConfig":
        return cls(enabled=True, governor=GovernorConfig(kind="performance"))

    @classmethod
    def powersave(cls) -> "DvfsConfig":
        return cls(enabled=True, governor=GovernorConfig(kind="powersave"))

    @classmethod
    def ondemand(cls, **overrides) -> "DvfsConfig":
        return cls(enabled=True,
                   governor=GovernorConfig(kind="ondemand", **overrides))

    # -- (de)serialisation, for the committed sweep plan -----------------

    def to_dict(self) -> Dict:
        return {
            "enabled": self.enabled,
            "governor": {
                "kind": self.governor.kind,
                "sampling_interval_s": self.governor.sampling_interval_s,
                "up_threshold": self.governor.up_threshold,
                "down_threshold": self.governor.down_threshold,
                "metric_window_s": self.governor.metric_window_s,
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "DvfsConfig":
        return cls(enabled=data["enabled"],
                   governor=GovernorConfig(**data.get("governor", {})))
