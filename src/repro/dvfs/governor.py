"""The three frequency governors, in the cpufreq tradition.

A governor is a pure decision function over one CPU's P-state table:
given the node's windowed utilisation and its current state index it
answers "which index next?" (``None`` to hold).  All actuation — the
re-rating of in-flight work, the power-trace edge, the telemetry
series — lives in :class:`~repro.dvfs.plane.DvfsPlane`; governors
stay deterministic, stateless and trivially testable.
"""

from __future__ import annotations

from typing import Optional

from .config import GovernorConfig


class PerformanceGovernor:
    """Pin every governed CPU at P0 (nominal frequency)."""

    kind = "performance"
    static = True

    def initial_index(self, n_states: int) -> int:
        return 0

    def decide(self, utilization: float, index: int,
               n_states: int) -> Optional[int]:
        return 0 if index != 0 else None


class PowersaveGovernor:
    """Pin every governed CPU at its deepest (slowest) P-state."""

    kind = "powersave"
    static = True

    def initial_index(self, n_states: int) -> int:
        return n_states - 1

    def decide(self, utilization: float, index: int,
               n_states: int) -> Optional[int]:
        return n_states - 1 if index != n_states - 1 else None


class OndemandGovernor:
    """Linux-ondemand-like demand scaling over the telemetry signal.

    Utilisation at or above the up threshold jumps straight to P0 —
    when demand arrives, latency is on the line and climbing state by
    state would stretch every in-flight request.  Utilisation at or
    below the down threshold steps down exactly one state per sampling
    interval, so the descent is gradual and each step's utilisation
    inflation (work takes ``1/dmips_factor`` longer per request) is
    observed before the next step.
    """

    kind = "ondemand"
    static = False

    def __init__(self, config: GovernorConfig):
        self.config = config

    def initial_index(self, n_states: int) -> int:
        # Start at nominal: a cold fleet must serve its first burst at
        # full speed; the governor earns the down-clocks afterwards.
        return 0

    def decide(self, utilization: float, index: int,
               n_states: int) -> Optional[int]:
        if utilization >= self.config.up_threshold:
            return 0 if index != 0 else None
        if utilization <= self.config.down_threshold:
            return index + 1 if index + 1 < n_states else None
        return None


def make_governor(config: GovernorConfig):
    """Build the governor ``config.kind`` names."""
    if config.kind == "performance":
        return PerformanceGovernor()
    if config.kind == "powersave":
        return PowersaveGovernor()
    if config.kind == "ondemand":
        return OndemandGovernor(config)
    raise ValueError(f"unknown governor kind {config.kind!r}")
