"""The DVFS plane: governors actuating P-states on live servers.

One :class:`DvfsPlane` governs the metered servers of a deployment.
Static governors (``performance``, ``powersave``) set their P-state
once at :meth:`start` and spawn no process; ``ondemand`` runs a
simulated-time loop that — like the autoscale controller — reads each
node's CPU utilisation *from the telemetry TSDB*, never from the node
directly, because a real cpufreq daemon only sees sampled counters.

Every transition does four things at one instant:

1. forces a power-meter sample *before* the switch (closing the
   outgoing state's segment) and another *after* it (opening the new
   one), so the sampled power trace carries a true edge and
   :func:`repro.causality.attribute_energy` prices the active P-state
   without smearing the step across a sampling interval;
2. calls :meth:`~repro.hardware.cpu.Cpu.set_pstate`, which re-rates
   in-flight CPU slices exactly like a ``cpu_throttle`` fault — work
   already dispatched finishes at the old speed, the next slice runs
   at the new one;
3. writes a ``cpu_pstate`` series into the TSDB so dashboards can plot
   the governor's decisions next to the signals that caused them;
4. stamps a ``dvfs.pstate`` trace instant
   (:data:`~repro.causality.energy.PSTATE_EVENT`) for the causal
   tooling.

With :class:`~repro.dvfs.config.DvfsConfig` disabled (the default) no
plane exists and runs are bit-identical to a build without this
package.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..causality.energy import PSTATE_EVENT
from .config import DvfsConfig
from .governor import make_governor


class DvfsPlane:
    """Governs the P-states of ``servers`` inside one simulation."""

    def __init__(self, sim, servers, config: DvfsConfig,
                 telemetry=None, meter=None):
        if not config.enabled:
            raise ValueError("refusing to build a disabled DVFS plane")
        self.sim = sim
        self.servers = list(servers)
        if not self.servers:
            raise ValueError("the DVFS plane needs at least one server")
        self.config = config
        self.governor = make_governor(config.governor)
        if not self.governor.static and telemetry is None:
            raise ValueError("the ondemand governor needs an attached "
                             "Telemetry (it reads the TSDB, not the nodes)")
        self.telemetry = telemetry
        self.meter = meter
        self.counters: Dict[str, int] = {"evals": 0, "transitions": 0}
        #: Per-node ``(t, from_index, to_index)`` transition log.
        self.transitions: Dict[str, List[Tuple[float, int, int]]] = {}
        self._started = False

    def start(self, until: Optional[float] = None) -> None:
        """Apply initial states; spawn the sampling loop if dynamic."""
        if self._started:
            raise RuntimeError("DVFS plane already started")
        self._started = True
        for server in self.servers:
            n = len(server.cpu.spec.pstates)
            self._apply(server, self.governor.initial_index(n))
        if not self.governor.static:
            self.sim.process(self._run(until), name="dvfs-governor")

    def _run(self, until: Optional[float]):
        interval = self.config.governor.sampling_interval_s
        while until is None or self.sim.now + interval <= until:
            yield self.sim.timeout(interval)
            self.evaluate()

    # -- one governor tick ------------------------------------------------

    def evaluate(self) -> None:
        """Decide and actuate every governed node once."""
        self.counters["evals"] += 1
        db = self.telemetry.db
        window = self.config.governor.metric_window_s
        now = self.sim.now
        for server in self.servers:
            utilization = db.avg_over_time("node_cpu_utilization",
                                           window_s=window, now=now,
                                           node=server.name)
            if utilization is None:
                continue        # not scraped yet (or node is down)
            target = self.governor.decide(utilization,
                                          server.cpu.pstate_index,
                                          len(server.cpu.spec.pstates))
            if target is not None:
                self._apply(server, target)

    def _apply(self, server, index: int) -> bool:
        """Switch one server's P-state, with the full actuation above."""
        old = server.cpu.pstate_index
        if index == old:
            return False
        if self.meter is not None:
            self.meter.sample()         # close the outgoing state's segment
        state = server.cpu.set_pstate(index)
        now = self.sim.now
        self.counters["transitions"] += 1
        self.transitions.setdefault(server.name, []).append(
            (now, old, index))
        if self.telemetry is not None:
            self.telemetry.db.record(now, "cpu_pstate", float(index),
                                     node=server.name)
        if self.sim.trace is not None:
            self.sim.trace.instant(PSTATE_EVENT, category="power",
                                   node=server.name, index=index,
                                   state=state.name)
        if self.meter is not None:
            self.meter.sample()         # open the new state's segment
        return True

    # -- accounting -------------------------------------------------------

    def residency_s(self, until: float) -> Dict[str, float]:
        """Seconds spent in each P-state, summed over governed nodes.

        Keys are state names from each server's own table; a node with
        no transitions contributes its whole window to P0 (construction
        default) — :meth:`start` logs the initial switch when a static
        governor parks it elsewhere.
        """
        out: Dict[str, float] = {}
        for server in self.servers:
            states = server.cpu.spec.pstates
            t_prev, idx_prev = 0.0, 0
            for t, _old, new in self.transitions.get(server.name, ()):
                name = states[idx_prev].name
                out[name] = out.get(name, 0.0) + (t - t_prev)
                t_prev, idx_prev = t, new
            name = states[idx_prev].name
            out[name] = out.get(name, 0.0) + max(0.0, until - t_prev)
        return out

    def summary(self, until: float) -> Dict[str, object]:
        return {
            "governor": self.config.governor.kind,
            "counters": dict(self.counters),
            "residency_s": {k: round(v, 6)
                            for k, v in sorted(self.residency_s(until).items())},
            "transitions": {node: len(log)
                            for node, log in sorted(self.transitions.items())},
        }


def attach_web(deployment, config: Optional[DvfsConfig],
               until: Optional[float] = None,
               telemetry=None) -> Optional[DvfsPlane]:
    """Govern a web deployment's metered servers, or do nothing.

    The one integration point callers need: with ``config`` ``None``
    or disabled this returns ``None`` without touching the deployment
    (the bit-identity contract); enabled, it builds and starts a plane
    over the metered (web + cache) servers.  ``telemetry`` defaults to
    whatever monitoring plane is already attached to the deployment —
    the ondemand governor requires one.
    """
    if config is None or not config.enabled:
        return None
    if telemetry is None:
        telemetry = getattr(deployment, "telemetry", None)
    plane = DvfsPlane(deployment.sim,
                      deployment.cluster.metered_servers, config,
                      telemetry=telemetry, meter=deployment.meter)
    plane.start(until=until)
    return plane


def attach_job(runner, config: Optional[DvfsConfig],
               until: Optional[float] = None,
               telemetry=None) -> Optional[DvfsPlane]:
    """Govern a MapReduce runner's slave nodes, or do nothing.

    Same contract as :func:`attach_web`; the governed set is the
    metered slaves (the unmetered master keeps nominal frequency, as
    the paper excludes it from energy accounting on both platforms).
    """
    if config is None or not config.enabled:
        return None
    plane = DvfsPlane(runner.sim, runner.cluster.metered_servers,
                      config, telemetry=telemetry, meter=runner.meter)
    plane.start(until=until)
    return plane
