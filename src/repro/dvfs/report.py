"""The governor sweep: governor × platform × load shape.

One committed seeded plan drives three day shapes — a fixed moderate
rate, a diurnal swing, and a diurnal day with a flash crowd — against
both platforms under all three governors.  Every arm reports the
paper's currencies (joules, availability, p95) plus the governor's own
bill: transition count and per-state residency.  The headline check is
the DVFS claim itself: on at least one platform/shape pair the
``ondemand`` governor must strictly beat ``performance`` on joules at
equal SLO attainment — frequency scaling that costs availability or
latency has not earned its complexity.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..web.loadshape import ShapedLoad
from .config import DvfsConfig, GovernorConfig
from .scorecard import DVFS_SEED, ProportionalityScorecard

#: Sweep axes: every governor against every platform and shape.
GOVERNORS = ("performance", "powersave", "ondemand")
PLATFORMS = ("edison", "dell")


def _p95(delays: List[float]) -> Optional[float]:
    if not delays:
        return None
    ordered = sorted(delays)
    index = max(0, math.ceil(0.95 * len(ordered)) - 1)
    return ordered[index]


@dataclass(frozen=True)
class DvfsPlan:
    """One committed, seeded governor sweep."""

    name: str
    shapes: Mapping[str, ShapedLoad]    # shape name -> rate function
    duration_s: float
    seed: int = DVFS_SEED
    calls: int = 5
    edison_scale: str = "1/8"
    dell_scale: str = "1/2"
    ondemand: GovernorConfig = field(
        default_factory=lambda: GovernorConfig(kind="ondemand"))

    def __post_init__(self):
        if not self.shapes:
            raise ValueError("the plan needs at least one load shape")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be > 0")
        if self.calls < 1:
            raise ValueError("calls must be >= 1")
        if self.ondemand.kind != "ondemand":
            raise ValueError("the plan's ondemand knobs must configure "
                             "an ondemand governor")

    def scale(self, platform: str) -> str:
        return self.edison_scale if platform == "edison" \
            else self.dell_scale

    def config(self, governor: str) -> DvfsConfig:
        if governor == "ondemand":
            return DvfsConfig(enabled=True, governor=self.ondemand)
        return DvfsConfig(enabled=True,
                          governor=GovernorConfig(kind=governor))

    def to_dict(self) -> Dict:
        return {"name": self.name,
                "shapes": {name: shape.to_dict()
                           for name, shape in self.shapes.items()},
                "duration_s": self.duration_s, "seed": self.seed,
                "calls": self.calls, "edison_scale": self.edison_scale,
                "dell_scale": self.dell_scale,
                "ondemand": {
                    "kind": self.ondemand.kind,
                    "sampling_interval_s": self.ondemand.sampling_interval_s,
                    "up_threshold": self.ondemand.up_threshold,
                    "down_threshold": self.ondemand.down_threshold,
                    "metric_window_s": self.ondemand.metric_window_s,
                }}

    @classmethod
    def from_dict(cls, data: Mapping) -> "DvfsPlan":
        return cls(name=data["name"],
                   shapes={name: ShapedLoad.from_dict(shape)
                           for name, shape in data["shapes"].items()},
                   duration_s=data["duration_s"], seed=data["seed"],
                   calls=data["calls"],
                   edison_scale=data["edison_scale"],
                   dell_scale=data["dell_scale"],
                   ondemand=GovernorConfig(**data["ondemand"]))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "DvfsPlan":
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


@dataclass(frozen=True)
class DvfsArm:
    """One governor serving one platform through one shaped day."""

    governor: str
    platform: str
    shape_name: str
    seconds: float
    joules: float
    ok_calls: int
    errors: int
    client_failures: int
    availability: Optional[float]
    availability_met: Optional[bool]
    latency_met: Optional[bool]
    p95_s: Optional[float]
    mean_power_w: float
    transitions: int = 0
    residency_s: Mapping[str, float] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"{self.platform}/{self.shape_name}/{self.governor}"

    @property
    def work_per_joule(self) -> float:
        if self.joules <= 0:
            return 0.0
        return self.ok_calls / self.joules

    @property
    def slo_attained(self) -> bool:
        """Both SLOs met (an unmeasurable SLO counts as met)."""
        return (self.availability_met is not False
                and self.latency_met is not False)

    def to_dict(self) -> Dict:
        return {"governor": self.governor, "platform": self.platform,
                "shape_name": self.shape_name, "seconds": self.seconds,
                "joules": self.joules, "ok_calls": self.ok_calls,
                "errors": self.errors,
                "client_failures": self.client_failures,
                "availability": self.availability,
                "availability_met": self.availability_met,
                "latency_met": self.latency_met,
                "slo_attained": self.slo_attained,
                "p95_s": self.p95_s, "mean_power_w": self.mean_power_w,
                "work_per_joule": self.work_per_joule,
                "transitions": self.transitions,
                "residency_s": dict(self.residency_s)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "DvfsArm":
        return cls(governor=data["governor"], platform=data["platform"],
                   shape_name=data["shape_name"], seconds=data["seconds"],
                   joules=data["joules"], ok_calls=data["ok_calls"],
                   errors=data["errors"],
                   client_failures=data["client_failures"],
                   availability=data["availability"],
                   availability_met=data["availability_met"],
                   latency_met=data["latency_met"], p95_s=data["p95_s"],
                   mean_power_w=data["mean_power_w"],
                   transitions=data.get("transitions", 0),
                   residency_s=dict(data.get("residency_s", {})))


@dataclass(frozen=True)
class DvfsReport:
    """The whole sweep, plus the proportionality scorecards."""

    plan_name: str
    detail: str
    arms: Tuple[DvfsArm, ...]
    scorecards: Tuple[ProportionalityScorecard, ...] = ()

    def arm(self, platform: str, shape_name: str,
            governor: str) -> DvfsArm:
        for arm in self.arms:
            if (arm.platform == platform and arm.shape_name == shape_name
                    and arm.governor == governor):
                return arm
        raise KeyError(f"no arm {platform}/{shape_name}/{governor}")

    def ondemand_wins(self) -> List[str]:
        """Platform/shape pairs where ondemand strictly beats
        performance on joules at equal-or-better SLO attainment."""
        out = []
        for arm in self.arms:
            if arm.governor != "ondemand":
                continue
            try:
                rival = self.arm(arm.platform, arm.shape_name,
                                 "performance")
            except KeyError:
                continue
            if arm.joules >= rival.joules:
                continue
            if rival.slo_attained and not arm.slo_attained:
                continue
            out.append(f"{arm.platform}/{arm.shape_name}")
        return out

    def to_dict(self) -> Dict:
        return {"plan_name": self.plan_name, "detail": self.detail,
                "arms": [arm.to_dict() for arm in self.arms],
                "scorecards": [card.to_dict()
                               for card in self.scorecards],
                "ondemand_wins": self.ondemand_wins()}

    @classmethod
    def from_dict(cls, data: Mapping) -> "DvfsReport":
        return cls(plan_name=data["plan_name"], detail=data["detail"],
                   arms=tuple(DvfsArm.from_dict(a)
                              for a in data["arms"]),
                   scorecards=tuple(
                       ProportionalityScorecard.from_dict(c)
                       for c in data.get("scorecards", ())))

    def lines(self) -> List[str]:
        out = [f"DVFS governor sweep — {self.plan_name} ({self.detail})"]
        out.append(f"  {'arm':34s} {'energy':>9s} {'power':>8s} "
                   f"{'p95':>8s} {'calls/kJ':>9s} {'SLO':>5s} "
                   f"{'switches':>9s}")
        for arm in self.arms:
            p95 = ("n/a" if arm.p95_s is None
                   else f"{arm.p95_s * 1000:.0f} ms")
            out.append(
                f"  {arm.label:34s} {arm.joules:>7.0f} J "
                f"{arm.mean_power_w:>6.1f} W {p95:>8s} "
                f"{arm.work_per_joule * 1000:>9.0f} "
                f"{'met' if arm.slo_attained else 'MISS':>5s} "
                f"{arm.transitions:>9d}")
        wins = self.ondemand_wins()
        if wins:
            out.append("  verdict: ondemand beats performance on joules "
                       "at equal SLO attainment on " + ", ".join(wins))
        else:
            out.append("  verdict: ondemand beats performance nowhere")
        for card in self.scorecards:
            out.extend(card.lines())
        return out


# -- running the sweep ----------------------------------------------------


def _run_arm(plan: DvfsPlan, governor: str, platform: str,
             shape_name: str, shape: ShapedLoad, trace=None) -> DvfsArm:
    from ..telemetry import Telemetry       # deferred: import cycle
    from ..web import WebServiceDeployment
    from .plane import DvfsPlane

    deployment = WebServiceDeployment(platform, plan.scale(platform),
                                      seed=plan.seed, trace=trace)
    telemetry = Telemetry()
    telemetry.attach_web(deployment, until=plan.duration_s)
    plane = DvfsPlane(deployment.sim,
                      deployment.cluster.metered_servers,
                      plan.config(governor), telemetry=telemetry,
                      meter=deployment.meter)
    plane.start(until=plan.duration_s)
    level = deployment.run_shaped(shape, plan.duration_s,
                                  calls=plan.calls, collect_delays=True)
    slo = telemetry.slo_report()
    delays = (deployment.last_driver.delays
              if deployment.last_driver is not None else [])
    return DvfsArm(
        governor=governor, platform=platform, shape_name=shape_name,
        seconds=plan.duration_s,
        joules=deployment.meter.energy_joules(),
        ok_calls=level.ok_calls,
        errors=level.error_calls + level.timeout_calls
        + level.failed_connections,
        client_failures=slo.client_failures,
        availability=slo.availability,
        availability_met=slo.availability_met,
        latency_met=slo.latency_met,
        p95_s=_p95(delays),
        mean_power_w=level.mean_power_w,
        transitions=plane.counters["transitions"],
        residency_s={k: round(v, 6)
                     for k, v in sorted(
                         plane.residency_s(plan.duration_s).items())})


def dvfs_experiment(plan: DvfsPlan,
                    governors: Tuple[str, ...] = GOVERNORS,
                    platforms: Tuple[str, ...] = PLATFORMS,
                    scorecards: bool = True, trace=None) -> DvfsReport:
    """Run the committed sweep and return every arm plus scorecards.

    Scorecards ladder each platform twice — nominal hardware and the
    plan's ondemand governor — so the dashboard can show how much of
    the proportionality gap frequency scaling recovers.
    """
    from .scorecard import measure_proportionality

    arms = tuple(
        _run_arm(plan, governor, platform, shape_name, shape,
                 trace=trace)
        for platform in platforms
        for shape_name, shape in plan.shapes.items()
        for governor in governors)
    cards = ()
    if scorecards:
        cards = tuple(
            measure_proportionality(
                platform, scale=plan.scale(platform), dvfs=dvfs,
                seed=plan.seed, calls=plan.calls)
            for platform in platforms
            for dvfs in (None,
                         DvfsConfig(enabled=True, governor=plan.ondemand)))
    shape_names = ", ".join(plan.shapes)
    return DvfsReport(
        plan_name=plan.name,
        detail=f"{plan.duration_s:.0f} s days ({shape_names}), "
               f"governors {', '.join(governors)}, seed {plan.seed}",
        arms=arms, scorecards=cards)
