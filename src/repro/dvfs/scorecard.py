"""The energy-proportionality scorecard (Barroso & Hölzle, restated).

The paper's Table 3 power models are linear-with-offset: a server
burns ``idle_w`` doing nothing and climbs to ``max_w`` at full load.
How *proportional* that makes a fleet — and how much a frequency
governor improves it — is summarised here by driving one deployment
at a ladder of fixed offered rates (10 %..100 % of its tuned
capacity) and reading three figures off the measured powers:

* **dynamic range** — ``(P_peak - P_idle) / P_peak``; the share of
  peak power that actually responds to load (1.0 is perfect, the
  Edison's big idle floor drags it down);
* **proportionality gap** — the mean over load points of
  ``(P(u) - u * P_peak) / P_peak``, the normalised excess over the
  ideal origin-crossing line ``P(u) = u * P_peak`` (0 is perfectly
  proportional; the linear-with-offset model makes it positive and
  largest at low load);
* **work per joule** — ok calls per joule at each rung, the currency
  the paper's Figures 9/11 trade in.

Each rung is one fresh seeded deployment driven at a flat rate, so a
scorecard is reproducible the way every other committed experiment
here is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

#: Seed of the committed DVFS experiments (scorecards and the
#: governor sweep), same spirit as repro.autoscale's DAY_SEED.
DVFS_SEED = 41

#: The default load ladder: 10 %..100 % of tuned capacity.
LOAD_FRACTIONS = tuple(round(0.1 * i, 1) for i in range(1, 11))


@dataclass(frozen=True)
class LoadPoint:
    """One rung of the ladder: a flat-rate run at ``fraction`` load."""

    fraction: float
    offered_rps: float
    ok_calls: int
    window_s: float
    mean_power_w: float

    @property
    def joules(self) -> float:
        return self.mean_power_w * self.window_s

    @property
    def work_per_joule(self) -> float:
        if self.joules <= 0:
            return 0.0
        return self.ok_calls / self.joules

    def to_dict(self) -> Dict:
        return {"fraction": self.fraction, "offered_rps": self.offered_rps,
                "ok_calls": self.ok_calls, "window_s": self.window_s,
                "mean_power_w": self.mean_power_w,
                "joules": self.joules,
                "work_per_joule": self.work_per_joule}

    @classmethod
    def from_dict(cls, data: Mapping) -> "LoadPoint":
        return cls(fraction=data["fraction"],
                   offered_rps=data["offered_rps"],
                   ok_calls=data["ok_calls"], window_s=data["window_s"],
                   mean_power_w=data["mean_power_w"])


@dataclass(frozen=True)
class ProportionalityScorecard:
    """One platform/governor pair's ladder, with the derived figures."""

    platform: str
    scale: str
    governor: str            # "nominal" when no DVFS plane was attached
    idle_w: float
    points: Tuple[LoadPoint, ...]

    def __post_init__(self):
        if not self.points:
            raise ValueError("a scorecard needs at least one load point")
        if self.idle_w < 0:
            raise ValueError("idle_w must be >= 0")

    @property
    def peak_w(self) -> float:
        """Measured mean power at the highest rung."""
        return max(self.points, key=lambda p: p.fraction).mean_power_w

    @property
    def dynamic_range(self) -> float:
        peak = self.peak_w
        if peak <= 0:
            return 0.0
        return (peak - self.idle_w) / peak

    @property
    def proportionality_gap(self) -> float:
        peak = self.peak_w
        if peak <= 0:
            return 0.0
        return sum((p.mean_power_w - p.fraction * peak) / peak
                   for p in self.points) / len(self.points)

    @property
    def best_point(self) -> LoadPoint:
        """The rung with the highest work per joule."""
        return max(self.points, key=lambda p: p.work_per_joule)

    def to_dict(self) -> Dict:
        return {"platform": self.platform, "scale": self.scale,
                "governor": self.governor, "idle_w": self.idle_w,
                "peak_w": self.peak_w,
                "dynamic_range": self.dynamic_range,
                "proportionality_gap": self.proportionality_gap,
                "points": [p.to_dict() for p in self.points]}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ProportionalityScorecard":
        return cls(platform=data["platform"], scale=data["scale"],
                   governor=data["governor"], idle_w=data["idle_w"],
                   points=tuple(LoadPoint.from_dict(p)
                                for p in data["points"]))

    def lines(self) -> List[str]:
        out = [f"Energy proportionality — {self.platform} {self.scale}, "
               f"governor {self.governor}"]
        out.append(f"  idle {self.idle_w:.2f} W, peak {self.peak_w:.2f} W, "
                   f"dynamic range {self.dynamic_range:.3f}, "
                   f"proportionality gap {self.proportionality_gap:.3f}")
        out.append(f"  {'load':>6s} {'rps':>8s} {'power':>9s} "
                   f"{'calls/kJ':>9s}")
        best = self.best_point
        for point in self.points:
            marker = "  <- best" if point is best else ""
            out.append(f"  {point.fraction:>5.0%} "
                       f"{point.offered_rps:>8.0f} "
                       f"{point.mean_power_w:>7.2f} W "
                       f"{point.work_per_joule * 1000:>9.0f}{marker}")
        return out


def measure_proportionality(platform: str, scale: str = "1/8",
                            dvfs=None, seed: int = DVFS_SEED,
                            duration_s: float = 3.0,
                            warmup_s: float = 1.0, calls: int = 5,
                            fractions: Tuple[float, ...] = LOAD_FRACTIONS,
                            ) -> ProportionalityScorecard:
    """Drive the load ladder and return the platform's scorecard.

    Each rung is a fresh :class:`~repro.web.WebServiceDeployment`
    served at a flat ``fraction * target_rps()`` rate for
    ``duration_s`` simulated seconds.  Passing an enabled
    :class:`~repro.dvfs.config.DvfsConfig` attaches a telemetry plane
    and a :class:`~repro.dvfs.plane.DvfsPlane` over the metered
    servers, so the ladder measures the governed fleet; without one
    the ladder measures the nominal hardware.
    """
    from ..telemetry import Telemetry       # deferred: import cycle
    from ..web import WebServiceDeployment
    from ..web.loadshape import DiurnalShape, ShapedLoad
    from .plane import DvfsPlane

    if duration_s <= warmup_s:
        raise ValueError("duration_s must exceed warmup_s")
    if not fractions:
        raise ValueError("need at least one load fraction")
    enabled = dvfs is not None and dvfs.enabled
    points = []
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"load fractions must be in (0, 1], "
                             f"got {fraction}")
        deployment = WebServiceDeployment(platform, scale, seed=seed)
        rate = fraction * deployment.target_rps()
        if enabled:
            telemetry = Telemetry()
            telemetry.attach_web(deployment, until=duration_s)
            plane = DvfsPlane(deployment.sim,
                              deployment.cluster.metered_servers,
                              dvfs, telemetry=telemetry,
                              meter=deployment.meter)
            plane.start(until=duration_s)
        shape = ShapedLoad(DiurnalShape(base_rps=rate, peak_rps=rate,
                                        period_s=duration_s))
        level = deployment.run_shaped(shape, duration_s, warmup=warmup_s,
                                      calls=calls)
        points.append(LoadPoint(fraction=fraction, offered_rps=rate,
                                ok_calls=level.ok_calls,
                                window_s=level.window_s,
                                mean_power_w=level.mean_power_w))
        idle_w = deployment.cluster.idle_watts()
    return ProportionalityScorecard(
        platform=platform, scale=scale,
        governor=dvfs.governor.kind if enabled else "nominal",
        idle_w=idle_w, points=tuple(points))
