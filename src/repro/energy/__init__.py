"""Energy measurement: power meters and work-done-per-joule accounting."""

from .account import (EnergyReport, GridImpact, MitigationCosts,
                      ScalingCosts, efficiency_gain, work_done_per_joule)
from .meter import PowerMeter

__all__ = ["EnergyReport", "GridImpact", "MitigationCosts", "PowerMeter",
           "ScalingCosts", "efficiency_gain", "work_done_per_joule"]
