"""Energy measurement: power meters and work-done-per-joule accounting."""

from .account import EnergyReport, efficiency_gain, work_done_per_joule
from .meter import PowerMeter

__all__ = ["EnergyReport", "PowerMeter", "efficiency_gain",
           "work_done_per_joule"]
