"""Energy measurement: power meters and work-done-per-joule accounting."""

from .account import (EnergyReport, GridImpact, MitigationCosts,
                      RepairCosts, ScalingCosts, efficiency_gain,
                      work_done_per_joule)
from .meter import PowerMeter

__all__ = ["EnergyReport", "GridImpact", "MitigationCosts", "PowerMeter",
           "RepairCosts", "ScalingCosts", "efficiency_gain",
           "work_done_per_joule"]
