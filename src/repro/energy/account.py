"""Energy accounting and the paper's headline metric: work-done-per-joule."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyReport:
    """Result of metering one workload run."""

    seconds: float
    joules: float
    work_units: float = 1.0
    work_name: str = "jobs"

    def __post_init__(self):
        if self.seconds <= 0:
            raise ValueError("seconds must be > 0")
        if self.joules < 0:
            raise ValueError("joules must be >= 0")

    @property
    def mean_watts(self) -> float:
        """Average power over the run."""
        return self.joules / self.seconds

    @property
    def work_per_joule(self) -> float:
        """The paper's metric: useful work per joule of energy."""
        if self.joules == 0:
            return float("inf")
        return self.work_units / self.joules


@dataclass(frozen=True)
class MitigationCosts:
    """Joules spent *surviving* rather than *working*.

    Filled in by :class:`repro.resilience.ResilienceLedger`; each field
    is the energy of one mitigation's discarded work — killed
    speculative attempts, losing hedge legs, shed-request error
    replies, and client retries of calls that ultimately succeeded
    elsewhere.  These joules appear in the run's energy total but not
    in its useful-work numerator, which is exactly why the resilience
    tax report breaks them out.
    """

    speculative_j: float = 0.0
    hedge_j: float = 0.0
    shed_j: float = 0.0
    retry_j: float = 0.0

    def __post_init__(self):
        for name in ("speculative_j", "hedge_j", "shed_j", "retry_j"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def total_j(self) -> float:
        return self.speculative_j + self.hedge_j + self.shed_j + self.retry_j


@dataclass(frozen=True)
class ScalingCosts:
    """Joules an autoscaler spent *moving* capacity, not serving with it.

    Filled in by :class:`repro.autoscale.AutoscaleLedger`.  ``boot_j``
    is the idle-draw energy of nodes between power-on and serving;
    ``drain_j`` is the drained-but-idle energy of nodes finishing
    in-flight connections after deregistration, before power-off.
    Both land in the meter's total — this breakdown is what makes the
    price of elasticity visible instead of smeared into it.
    """

    boot_j: float = 0.0
    drain_j: float = 0.0

    def __post_init__(self):
        if self.boot_j < 0 or self.drain_j < 0:
            raise ValueError("boot_j and drain_j must be >= 0")

    @property
    def total_j(self) -> float:
        return self.boot_j + self.drain_j


@dataclass(frozen=True)
class RepairCosts:
    """Joules the cluster spent keeping *data* alive, not computing.

    Filled in by :class:`repro.durability.DurabilityLedger`.
    ``re_replication_j`` is the disk+wire energy of the NameNode-style
    repair pipeline copying under-replicated blocks to new homes;
    ``split_brain_j`` is the CPU burned by zombie duplicate attempts on
    the minority side of a partition before heal-time reconciliation
    killed them.  Both land in the meter's total — this breakdown is
    the durability premium the paper's r=2-on-Edison choice pays.
    """

    re_replication_j: float = 0.0
    split_brain_j: float = 0.0

    def __post_init__(self):
        if self.re_replication_j < 0 or self.split_brain_j < 0:
            raise ValueError("repair cost components must be >= 0")

    @property
    def total_j(self) -> float:
        return self.re_replication_j + self.split_brain_j


@dataclass(frozen=True)
class GridImpact:
    """What a run's joules cost the *grid*: grams of CO2 and dollars.

    Filled in by :mod:`repro.carbon`: the meter's power trace weighted
    by time-varying intensity (gCO2/kWh) and tariff ($/kWh) signals.
    The joules are the same whenever the run happens; these two numbers
    are what moving it around the day actually changes.
    """

    grams_co2: float = 0.0
    energy_usd: float = 0.0

    def __post_init__(self):
        if self.grams_co2 < 0 or self.energy_usd < 0:
            raise ValueError("grams_co2 and energy_usd must be >= 0")

    def __add__(self, other: "GridImpact") -> "GridImpact":
        return GridImpact(grams_co2=self.grams_co2 + other.grams_co2,
                          energy_usd=self.energy_usd + other.energy_usd)


def work_done_per_joule(work_units: float, joules: float) -> float:
    """Work-done-per-joule for ``work_units`` of work costing ``joules``."""
    if joules <= 0:
        raise ValueError("joules must be > 0")
    return work_units / joules


def efficiency_gain(contender: EnergyReport, baseline: EnergyReport) -> float:
    """How many times more work-per-joule ``contender`` achieves.

    With equal work on both sides this reduces to the energy ratio
    ``baseline.joules / contender.joules``, which is how the paper
    compares fixed-size MapReduce jobs.
    """
    return contender.work_per_joule / baseline.work_per_joule
