"""Power metering: the simulated stand-ins for the paper's instruments.

The paper measured the Edison cluster with a Mastech HY1803D bench DC
supply and the Dell cluster with a rack PDU polled over SNMP.  Both are
the same abstraction here: a :class:`PowerMeter` that samples the summed
wall power of a set of servers at a fixed interval into a
:class:`~repro.sim.TimeSeries`, from which energy is obtained by
trapezoidal integration — exactly how one integrates a logged power
trace from a real meter.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..hardware.server import Server
from ..sim import Simulation, TimeSeries


class PowerMeter:
    """Samples total wall power of ``servers`` every ``interval`` seconds."""

    def __init__(self, sim: Simulation, servers: Iterable[Server],
                 interval: float = 1.0, name: str = "meter"):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.sim = sim
        self.servers: List[Server] = list(servers)
        if not self.servers:
            raise ValueError("a meter needs at least one server")
        self.interval = interval
        self.name = name
        self.series = TimeSeries(f"{name}.power_w")
        self.per_component: Dict[str, TimeSeries] = {
            key: TimeSeries(f"{name}.{key}")
            for key in ("cpu", "mem", "disk", "net")
        }
        #: Per-server power traces, recorded at the same sample instants
        #: as the summed series — the ground truth per-node energy that
        #: :mod:`repro.causality` attributes across resident spans.
        self.per_node: Dict[str, TimeSeries] = {
            server.name: TimeSeries(f"{name}.{server.name}.power_w")
            for server in self.servers
        }
        self._process = None

    def start(self, until: Optional[float] = None) -> None:
        """Begin sampling (call once, before or during the run)."""
        if self._process is not None:
            raise RuntimeError("meter already started")
        self._process = self.sim.process(self._run(until), name=self.name)

    def _run(self, until: Optional[float]):
        while until is None or self.sim.now <= until:
            self.sample()
            yield self.sim.timeout(self.interval)

    def sample(self) -> float:
        """Take one reading now; returns the summed watts."""
        totals = {key: 0.0 for key in self.per_component}
        watts = 0.0
        faults = self.sim.faults
        now = self.sim.now
        trace = self.sim.trace
        for server in self.servers:
            utilization = server.utilization_window()
            if faults is not None:
                # Crashed nodes draw idle power, unpowered ones nothing
                # (identical to the plain formula while the node is up).
                node_w = faults.node_watts(server, utilization)
            else:
                node_w = server.spec.power.power(utilization,
                                                 server.cpu.pstate)
            watts += node_w
            self.per_node[server.name].record(now, node_w)
            if trace is not None:
                trace.counter(f"{self.name}.node_power_w", node_w,
                              category="power", node=server.name)
            for key in totals:
                totals[key] += utilization.get(key, 0.0)
        self.series.record(now, watts)
        n = len(self.servers)
        for key, series in self.per_component.items():
            series.record(now, totals[key] / n)
        if trace is not None:
            trace.counter(self.series.name, watts, category="power")
            for key in self.per_component:
                trace.counter(f"{self.name}.{key}", totals[key] / n,
                              category="power")
        return watts

    def energy_joules(self) -> float:
        """Energy recorded so far (trapezoidal integral of the trace)."""
        return self.series.integrate()

    def node_energy_joules(self, name: str) -> float:
        """Energy recorded so far for one server (trapezoidal integral)."""
        return self.per_node[name].integrate()

    def mean_power(self) -> float:
        """Average of the power samples taken so far."""
        return self.series.mean()
