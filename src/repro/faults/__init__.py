"""Cluster-wide fault injection, failure detection and recovery.

The subsystem has three parts, mirroring how chaos tooling is layered on
a real cluster:

* :mod:`repro.faults.models` — *what* can go wrong: node crashes,
  power events, NIC degradation, disk stalls and disk failures, each
  either scheduled one-shot or drawn from a seeded exponential
  MTBF/MTTR process, validated up front.
* :mod:`repro.faults.injector` — *making* it go wrong: a
  :class:`FaultInjector` attached to a cluster runs each fault as a
  simulation process, interrupts the victim's active work through the
  kernel's :class:`~repro.sim.Interrupt`, flips node state that the
  YARN/HDFS/web layers consult, and restores everything on repair.
* :mod:`repro.faults.report` — *accounting* for it: availability,
  MTTR, goodput-vs-offered-load and energy-overhead summaries, plus
  the headline kill-one-node experiments of the paper's reliability
  argument (replication 2-of-35 Edisons vs 1-of-2 Dells).

An attached injector whose plan is empty leaves every run bit-identical
to an unattached run — the same hard guarantee `repro.trace` makes, and
tested the same way.
"""

from .models import (Fault, FaultCause, FaultPlan, GRAY_KINDS,
                     NODE_DOWN_KINDS, PARTITION_KINDS, RecurringFault,
                     cpu_throttle, disk_failure, disk_stall, nic_degrade,
                     node_crash, node_set_partition, packet_loss,
                     power_event, rack_partition, single_node_kill,
                     switch_down)
from .injector import FaultInjector, FaultRecord
from .phi import PhiAccrualDetector
from .report import (AvailabilityReport, JobChaosResult, WebChaosResult,
                     job_kill_experiment, web_kill_experiment)

__all__ = [
    "Fault", "FaultCause", "FaultPlan", "GRAY_KINDS", "NODE_DOWN_KINDS",
    "PARTITION_KINDS", "RecurringFault",
    "node_crash", "power_event", "nic_degrade", "disk_stall",
    "disk_failure", "cpu_throttle", "packet_loss", "rack_partition",
    "node_set_partition", "switch_down", "single_node_kill",
    "FaultInjector", "FaultRecord", "PhiAccrualDetector",
    "AvailabilityReport", "WebChaosResult", "JobChaosResult",
    "web_kill_experiment", "job_kill_experiment",
]
