"""The fault injector: runs a :class:`FaultPlan` against a live cluster.

A :class:`FaultInjector` attaches to a cluster's simulation as
``sim.faults`` (the same pattern as ``sim.trace``) and spawns one
simulation process per planned fault.  Crashing a node interrupts every
process bound to it through the kernel's
:class:`~repro.sim.Interrupt` (with a :class:`FaultCause` attached),
flips the node's status so YARN, HDFS, the web load balancer and the
power meter all see it down, and restores everything on repair.

The hard guarantee: an injector holding an *empty* plan spawns **zero**
processes and every status query is a pure flag lookup, so an attached
empty injector leaves runs bit-identical — no extra events on the
calendar, no extra RNG draws, no perturbed heap tie-breaks.  The
no-fault invariance tests in ``tests/test_faults.py`` hold this the
same way ``tests/test_trace.py`` holds it for tracing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..sim import RngStreams
from .models import Fault, FaultCause, FaultPlan, PARTITION_KINDS

#: Listener signature: ``fn(event, node, kind)`` with event "down"/"up".
FaultListener = Callable[[str, str, str], None]


@dataclass
class FaultRecord:
    """One injected fault occurrence, for the availability report."""

    kind: str
    node: str
    start: float
    #: Repair time; ``None`` while the outage is open (or permanent).
    end: Optional[float] = None
    #: Every node the fault touched (partition/switch_down sever whole
    #: sets; ``node`` alone then holds the rack/cut label).
    nodes: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def covers(self, name: str) -> bool:
        """Did this fault affect server ``name``?"""
        return name == self.node or name in self.nodes


class _NodeStatus:
    """Mutable per-node fault state (tokens allow overlapping faults).

    Administrative power state (``admin_off``/``admin_booting``) is kept
    apart from the fault tokens: an autoscaler parking a node is not an
    outage, so it never creates a :class:`FaultRecord` and never counts
    toward downtime — but the node is just as unreachable, so ``up``
    folds both in and every consumer (LB health checks, scrapers, the
    power meter) sees one coherent answer.
    """

    __slots__ = ("down_tokens", "unpowered_tokens", "down_since",
                 "last_down_at", "downtime_s", "disk_failed",
                 "admin_off", "admin_booting", "unreachable_tokens",
                 "unreachable_since", "unreachable_s")

    def __init__(self):
        self.down_tokens = 0
        self.unpowered_tokens = 0
        self.down_since: Optional[float] = None
        self.last_down_at = -math.inf
        self.downtime_s = 0.0
        self.disk_failed = False
        self.admin_off = False
        self.admin_booting = False
        # Partition state is tracked apart from the down tokens: an
        # unreachable node is *alive* (it burns power, its processes
        # keep running) so it accrues unreachable-seconds, never
        # downtime — the accounting distinction the split-brain
        # acceptance check leans on.
        self.unreachable_tokens = 0
        self.unreachable_since: Optional[float] = None
        self.unreachable_s = 0.0

    @property
    def up(self) -> bool:
        return (self.down_tokens == 0 and not self.admin_off
                and not self.admin_booting)


class FaultInjector:
    """Executes a fault plan; the cluster layers consult it for status."""

    def __init__(self, cluster, plan: Optional[FaultPlan] = None,
                 seed: int = 16180339, detection_s: float = 0.25):
        """Attach to ``cluster`` and schedule every fault in ``plan``.

        ``detection_s`` is how long a crash stays invisible to health
        checks (:meth:`detected_down`) — the web tier's load balancer
        keeps dispatching to a dead node for that long, exactly as a
        real health-check interval would.
        """
        if detection_s < 0:
            raise ValueError("detection_s must be >= 0")
        sim = cluster.sim
        if sim.faults is not None:
            raise RuntimeError("this simulation already has a FaultInjector")
        self.plan = plan if plan is not None else FaultPlan.empty()
        self.plan.check_against(cluster.servers)
        for rack in self.plan.racks():
            if not cluster.topology.rack_members(rack):
                raise ValueError(
                    f"fault plan severs unknown/empty rack {rack!r}; "
                    f"cluster racks: {cluster.topology.racks()}")
        self.cluster = cluster
        self.sim = sim
        self.detection_s = detection_s
        self.status: Dict[str, _NodeStatus] = {
            name: _NodeStatus() for name in cluster.servers}
        # Insertion-ordered (dict, not set): victims are interrupted in
        # bind order, keeping chaos runs deterministic per seed.
        self._bound: Dict[str, Dict] = {name: {} for name in
                                        cluster.servers}
        self._listeners: List[FaultListener] = []
        self._nic_base: Dict[str, tuple] = {}
        self._nic_factors: Dict[str, List[float]] = {}
        self._stall_factors: Dict[str, List[float]] = {}
        self._throttle_factors: Dict[str, List[float]] = {}
        self.records: List[FaultRecord] = []
        self._rng = RngStreams(seed)
        sim.faults = self
        for i, fault in enumerate(self.plan.faults):
            sim.process(self._run_fault(fault), name=f"fault-{i}")
        for i, rec in enumerate(self.plan.recurring):
            sim.process(self._run_recurring(
                rec, self._rng.stream(f"recurring-{i}")),
                name=f"fault-rec-{i}")

    # -- status queries (pure lookups; safe on every hot path) -----------

    def is_up(self, node: str) -> bool:
        """True unless the node is currently crashed or unpowered."""
        status = self.status.get(node)
        return status is None or status.up

    def is_reachable(self, node: str) -> bool:
        """False while the node sits on the far side of an active cut."""
        status = self.status.get(node)
        return status is None or status.unreachable_tokens == 0

    def detected_down(self, node: str) -> bool:
        """True once a crash *or a partition* has lasted ``detection_s``.

        Administrative power states are detected instantly: the control
        plane *deregistered* the node, it did not have to notice a
        silent death through missed health checks.  A partitioned node
        is alive but silent, and to every health check silence past the
        detection window looks exactly like death — the split-brain
        misjudgement partitions are famous for.
        """
        status = self.status.get(node)
        if status is None:
            return False
        if not status.up:
            if status.admin_off or status.admin_booting:
                return True
            return self.sim.now >= status.down_since + self.detection_s
        if status.unreachable_tokens:
            return self.sim.now >= (status.unreachable_since
                                    + self.detection_s)
        return False

    def went_down_since(self, node: str, t: float) -> bool:
        """Did the node start an outage at or after time ``t``?

        Used by shuffle fetch verification: data read from a node that
        died during the transfer window is suspect even if the node has
        already rebooted (its map outputs are gone either way).
        """
        status = self.status.get(node)
        return status is not None and status.last_down_at >= t

    def disk_failed(self, node: str) -> bool:
        status = self.status.get(node)
        return status is not None and status.disk_failed

    def node_watts(self, server, utilization) -> float:
        """Wall power of ``server`` right now, fault state included.

        Crashed nodes draw idle power (the paper's meters would keep
        counting a hung Edison), unpowered nodes draw nothing — keeping
        work-done-per-joule honest under faults.  An up node is priced
        at its CPU's active P-state.
        """
        status = self.status.get(server.name)
        if status is None or status.up:
            return server.spec.power.power(utilization, server.cpu.pstate)
        if status.unpowered_tokens > 0 or status.admin_off:
            return 0.0
        # Crashed-but-powered, or administratively booting: idle draw.
        return server.spec.power.min_w

    # -- administrative power control (the autoscaler's lever) -----------
    #
    # Deliberate suspend/resume shares the fault plane's machinery —
    # bound processes are interrupted with a FaultCause, listeners fire
    # with kind "admin", every status query gives the same answer a
    # crash would — but it is *not* a fault: no FaultRecord is written
    # (alert-detection ground truth stays clean) and no downtime
    # accrues (parking a node off-peak is not an outage).  All three
    # transitions are pure flag flips, callable from any process.

    def admin_state(self, node: str) -> str:
        """One of ``"on"``, ``"off"`` or ``"booting"``."""
        status = self.status[node]
        if status.admin_off:
            return "off"
        if status.admin_booting:
            return "booting"
        return "on"

    def admin_power_off(self, node: str) -> None:
        """Suspend ``node``: 0 W draw, out of service, work interrupted."""
        status = self.status[node]
        if status.admin_off:
            return
        was_up = status.up
        status.admin_off = True
        status.admin_booting = False
        if self.sim.trace is not None:
            self.sim.trace.instant("admin.power_off", category="autoscale",
                                   node=node)
        if was_up:
            for listener in list(self._listeners):
                listener("down", node, "admin")
            for process in list(self._bound[node]):
                if process.is_alive:
                    process.interrupt(FaultCause("admin", node))

    def admin_begin_boot(self, node: str) -> None:
        """Start booting a suspended node: idle draw, not yet serving."""
        status = self.status[node]
        if not status.admin_off:
            raise RuntimeError(f"{node} is not administratively off")
        status.admin_off = False
        status.admin_booting = True

    def admin_power_on(self, node: str) -> None:
        """Finish booting (or instantly resume) a suspended node."""
        status = self.status[node]
        if not (status.admin_off or status.admin_booting):
            return
        status.admin_off = False
        status.admin_booting = False
        if self.sim.trace is not None:
            self.sim.trace.instant("admin.power_on", category="autoscale",
                                   node=node)
        if status.up:
            for listener in list(self._listeners):
                listener("up", node, "admin")

    # -- bindings and listeners ------------------------------------------

    def bind(self, node: str, process) -> None:
        """Register a process to be interrupted if ``node`` crashes.

        A process binds *itself* before running work on a node, so the
        injector cannot interrupt here even when the node is already
        down (the kernel forbids self-interruption mid-execution);
        callers must check :meth:`is_up` after binding and bail out —
        that is what dispatching work to a dead machine earns you.
        """
        bound = self._bound.get(node)
        if bound is not None:
            bound[process] = None

    def unbind(self, node: str, process) -> None:
        bound = self._bound.get(node)
        if bound is not None:
            bound.pop(process, None)

    def add_listener(self, listener: FaultListener) -> None:
        """Call ``listener(event, node, kind)`` on every down/up edge."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def bound_processes(self, node: str) -> List:
        """The processes currently bound to ``node``, in bind order.

        The split-brain reconciliation path uses this: a partitioned
        node's work is *not* interrupted at cut time (nothing died), but
        once the majority side expires the node, its still-running
        attempts become zombies the runtime must account for.
        """
        return list(self._bound.get(node, ()))

    # -- availability accounting -----------------------------------------

    def downtime(self, node: str, until: Optional[float] = None) -> float:
        """Seconds ``node`` has been out of service so far."""
        until = self.sim.now if until is None else until
        status = self.status.get(node)
        if status is None:
            return 0.0
        open_s = (until - status.down_since
                  if status.down_since is not None else 0.0)
        return status.downtime_s + max(0.0, open_s)

    def unreachable_time(self, node: str,
                         until: Optional[float] = None) -> float:
        """Seconds ``node`` has been severed from the fabric so far.

        Deliberately *not* folded into :meth:`downtime`: a partitioned
        node is alive and drawing power, so availability accounting
        must match a run that never partitioned at all.
        """
        until = self.sim.now if until is None else until
        status = self.status.get(node)
        if status is None:
            return 0.0
        open_s = (until - status.unreachable_since
                  if status.unreachable_since is not None else 0.0)
        return status.unreachable_s + max(0.0, open_s)

    def mean_availability(self, until: Optional[float] = None,
                          nodes: Optional[List[str]] = None) -> float:
        """Up node-seconds over total node-seconds across ``nodes``."""
        until = self.sim.now if until is None else until
        names = list(nodes) if nodes is not None else list(self.status)
        if until <= 0 or not names:
            return 1.0
        lost = sum(self.downtime(n, until) for n in names)
        return 1.0 - lost / (until * len(names))

    def mean_mttr(self) -> Optional[float]:
        """Mean duration of completed outages (None if none completed)."""
        repaired = [r.duration for r in self.records
                    if r.duration is not None]
        if not repaired:
            return None
        return sum(repaired) / len(repaired)

    # -- fault execution --------------------------------------------------

    def _run_fault(self, fault: Fault):
        if fault.at > 0:
            yield self.sim.timeout(fault.at)
        yield from self._apply(fault)

    def _run_recurring(self, rec, stream):
        if rec.start > 0:
            yield self.sim.timeout(rec.start)
        while True:
            yield self.sim.timeout(stream.expovariate(1.0 / rec.mtbf_s))
            duration = stream.expovariate(1.0 / rec.mttr_s)
            yield from self._apply(rec.make_fault(self.sim.now, duration))

    def _apply(self, fault: Fault):
        record = FaultRecord(fault.kind, fault.node, self.sim.now)
        self.records.append(record)
        trace = self.sim.trace
        if trace is not None:
            trace.instant(f"fault.{fault.kind}", category="fault",
                          node=fault.node)
        if fault.kind in ("crash", "power"):
            yield from self._apply_node_down(fault, record)
        elif fault.kind in PARTITION_KINDS:
            yield from self._apply_partition(fault, record)
        elif fault.kind == "nic":
            yield from self._apply_nic(fault, record)
        elif fault.kind == "disk_stall":
            yield from self._apply_disk_stall(fault, record)
        elif fault.kind == "cpu_throttle":
            yield from self._apply_cpu_throttle(fault, record)
        elif fault.kind == "packet_loss":
            yield from self._apply_packet_loss(fault, record)
        elif fault.kind == "disk_fail":
            self.status[fault.node].disk_failed = True
            # Permanent: the record's end stays None.  Listeners hear
            # about it (the HDFS repair monitor starts re-replicating);
            # pre-existing listeners filter on kind and ignore it.
            for listener in list(self._listeners):
                listener("down", fault.node, "disk_fail")
        else:  # pragma: no cover - models.py validates kinds
            raise ValueError(f"unhandled fault kind {fault.kind!r}")

    def _apply_node_down(self, fault: Fault, record: FaultRecord):
        status = self.status[fault.node]
        first = status.down_tokens == 0
        status.down_tokens += 1
        if fault.kind == "power":
            status.unpowered_tokens += 1
        if first:
            status.down_since = self.sim.now
            status.last_down_at = self.sim.now
            # Detection/recovery layers first (blacklist, reclaim), so a
            # victim's cleanup (e.g. releasing its YARN container) runs
            # against a NodeManager that already knows the node is gone.
            for listener in list(self._listeners):
                listener("down", fault.node, fault.kind)
            for process in list(self._bound[fault.node]):
                if process.is_alive:
                    process.interrupt(FaultCause(fault.kind, fault.node))
        yield self.sim.timeout(fault.duration)
        if fault.kind == "power":
            # Power is back; the node reboots at idle draw before serving.
            status.unpowered_tokens -= 1
            if fault.reboot_s > 0:
                yield self.sim.timeout(fault.reboot_s)
        status.down_tokens -= 1
        if status.down_tokens == 0:
            status.downtime_s += self.sim.now - status.down_since
            status.down_since = None
            for listener in list(self._listeners):
                listener("up", fault.node, fault.kind)
        record.end = self.sim.now
        if self.sim.trace is not None:
            self.sim.trace.complete(f"fault.{fault.kind}", record.start,
                                    category="fault", node=fault.node)

    def _apply_partition(self, fault: Fault, record: FaultRecord):
        """Sever a rack or node set; nothing dies, everything goes quiet.

        Bound processes are *not* interrupted — the far side keeps
        executing in blissful ignorance (that is the split-brain).  The
        runtime layers decide separately, through their own detection
        windows, when to give up on the silent nodes.
        """
        topology = self.cluster.topology
        members = (tuple(topology.rack_members(fault.rack)) if fault.rack
                   else fault.nodes)
        record.nodes = members
        cut_id = topology.sever(members,
                                isolate=fault.kind == "switch_down")
        now = self.sim.now
        for node in members:
            status = self.status[node]
            first = status.unreachable_tokens == 0
            status.unreachable_tokens += 1
            if first:
                status.unreachable_since = now
                for listener in list(self._listeners):
                    listener("down", node, fault.kind)
        yield self.sim.timeout(fault.duration)
        topology.heal(cut_id)
        now = self.sim.now
        for node in members:
            status = self.status[node]
            status.unreachable_tokens -= 1
            if status.unreachable_tokens == 0:
                status.unreachable_s += now - status.unreachable_since
                status.unreachable_since = None
                for listener in list(self._listeners):
                    listener("up", node, fault.kind)
        record.end = now
        if self.sim.trace is not None:
            self.sim.trace.complete(f"fault.{fault.kind}", record.start,
                                    category="fault", node=fault.node)

    def _nic_segments(self, node: str):
        return self.cluster.topology.nic_segments(node)

    def _rescale_nic(self, node: str) -> None:
        tx, rx = self._nic_segments(node)
        base_tx, base_rx = self._nic_base[node]
        factors = self._nic_factors.get(node, [])
        scale = 1.0
        for f in factors:
            scale *= f
        # Assign the exact base value back when no fault is active, so a
        # repaired NIC is bit-identical to one never degraded.
        tx.capacity_Bps = base_tx * scale if factors else base_tx
        rx.capacity_Bps = base_rx * scale if factors else base_rx
        self.cluster.topology.network.rescale()

    def _apply_nic(self, fault: Fault, record: FaultRecord):
        if fault.node not in self._nic_base:
            tx, rx = self._nic_segments(fault.node)
            self._nic_base[fault.node] = (tx.capacity_Bps, rx.capacity_Bps)
        self._nic_factors.setdefault(fault.node, []).append(fault.factor)
        self._rescale_nic(fault.node)
        yield self.sim.timeout(fault.duration)
        self._nic_factors[fault.node].remove(fault.factor)
        self._rescale_nic(fault.node)
        record.end = self.sim.now
        if self.sim.trace is not None:
            self.sim.trace.complete("fault.nic", record.start,
                                    category="fault", node=fault.node,
                                    factor=fault.factor)

    def _apply_cpu_throttle(self, fault: Fault, record: FaultRecord):
        cpu = self.cluster.servers[fault.node].cpu
        throttles = self._throttle_factors.setdefault(fault.node, [])
        throttles.append(fault.factor)
        scale = 1.0
        for f in throttles:
            scale *= f
        cpu.throttle = scale
        yield self.sim.timeout(fault.duration)
        throttles.remove(fault.factor)
        if throttles:
            scale = 1.0
            for f in throttles:
                scale *= f
            cpu.throttle = scale
        else:
            # Exact nominal value back, so a recovered CPU is
            # bit-identical to one never throttled.
            cpu.throttle = 1.0
        record.end = self.sim.now
        if self.sim.trace is not None:
            self.sim.trace.complete("fault.cpu_throttle", record.start,
                                    category="fault", node=fault.node,
                                    factor=fault.factor)

    def _apply_packet_loss(self, fault: Fault, record: FaultRecord):
        # Goodput under loss rate p is (1 - p) of line rate (every lost
        # packet is retransmitted), so packet loss rides the same
        # capacity-scaling stack as nic degradation — the two compose
        # multiplicatively and unwind to the bit-exact base rate.
        if fault.node not in self._nic_base:
            tx, rx = self._nic_segments(fault.node)
            self._nic_base[fault.node] = (tx.capacity_Bps, rx.capacity_Bps)
        goodput = 1.0 - fault.loss
        self._nic_factors.setdefault(fault.node, []).append(goodput)
        self._rescale_nic(fault.node)
        yield self.sim.timeout(fault.duration)
        self._nic_factors[fault.node].remove(goodput)
        self._rescale_nic(fault.node)
        record.end = self.sim.now
        if self.sim.trace is not None:
            self.sim.trace.complete("fault.packet_loss", record.start,
                                    category="fault", node=fault.node,
                                    loss=fault.loss)

    def _apply_disk_stall(self, fault: Fault, record: FaultRecord):
        server = self.cluster.servers[fault.node]
        stalls = self._stall_factors.setdefault(fault.node, [])
        stalls.append(fault.slowdown)
        server.storage.slowdown = max(stalls)
        yield self.sim.timeout(fault.duration)
        stalls.remove(fault.slowdown)
        server.storage.slowdown = max(stalls) if stalls else 1.0
        record.end = self.sim.now
        if self.sim.trace is not None:
            self.sim.trace.complete("fault.disk_stall", record.start,
                                    category="fault", node=fault.node,
                                    slowdown=fault.slowdown)
