"""Fault models: what can go wrong, when, and for how long.

Every fault is a :class:`Fault` value — one kind, one victim node, one
onset time and (except for permanent disk loss) one repair time.  Plans
hold one-shot faults plus :class:`RecurringFault` generators that draw
exponential time-between-failures / time-to-repair from a seeded stream,
so a chaos run is as reproducible as any other simulation.  All
validation happens at construction: a bad plan fails before the
simulation burns any time.

The kinds model the failure classes the SBC-cluster literature reports
for sensor-class hardware (node dropouts first, then flaky NICs and SD
cards):

``crash``
    The node halts at ``at`` and is back ``duration`` seconds later
    (operator reboot / watchdog).  Running work on it dies; while down
    the node still draws idle power (it sits in the bootloader or at a
    login prompt) — the honest accounting for work-per-joule.
``power``
    Supply loss: like ``crash`` but the node draws *zero* watts for
    ``duration`` seconds, then takes ``reboot_s`` at idle power before
    serving again.
``nic``
    The NIC degrades to ``factor`` of line rate for ``duration``
    seconds (flapping autonegotiation, duplex mismatch).  Nothing dies;
    everything gets slower.
``disk_stall``
    Device I/O takes ``slowdown``× longer for ``duration`` seconds
    (SD-card garbage collection, controller resets).
``disk_fail``
    The disk dies at ``at`` and every HDFS replica on it is lost for
    good (no re-replication is modelled).  Reads fall back to surviving
    replicas; a job fails cleanly only when a block has none left.
``cpu_throttle``
    Thermal throttling: every DMIPS rate on the node is scaled by
    ``factor`` for ``duration`` seconds.  Nothing dies and no health
    check fires — the canonical *gray* failure that turns a node into a
    straggler factory.
``packet_loss``
    The NIC loses a fraction ``loss`` of packets for ``duration``
    seconds; retransmissions inflate every effective transfer time by
    ``1 / (1 - loss)`` (goodput shrinks to ``1 - loss`` of line rate).
    Stacks multiplicatively with ``nic`` degradation on the same link.
``partition``
    A network cut: the named rack (or an explicit node set) is severed
    from the rest of the cluster for ``duration`` seconds.  Nothing
    dies — nodes on each side keep running and keep talking to their
    own side, which is exactly what makes partitions nastier than
    crashes: every health check sees *silence*, not a corpse.
``switch_down``
    A rack's ToR switch dies: its members lose all connectivity,
    including to each other, for ``duration`` seconds.  The correlated
    whole-enclosure failure the SBC literature warns about.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: The recognised fault kinds.
FAULT_KINDS = ("crash", "power", "nic", "disk_stall", "disk_fail",
               "cpu_throttle", "packet_loss", "partition", "switch_down")

#: The *gray* kinds: the node stays "up" to every health check while
#: quietly running slow — exactly the failures mitigation exists for.
GRAY_KINDS = ("cpu_throttle", "packet_loss", "nic", "disk_stall")

#: Kinds that take a node out of service entirely (kill its processes).
NODE_DOWN_KINDS = ("crash", "power")

#: Kinds that sever connectivity without killing anything: the victims
#: stay *up* but become *unreachable* — the down/unreachable distinction
#: the whole partition-tolerance layer exists to honour.
PARTITION_KINDS = ("partition", "switch_down")


@dataclass(frozen=True)
class FaultCause:
    """Attached to the kernel ``Interrupt`` thrown into victim processes."""

    kind: str
    node: str

    def __str__(self) -> str:
        return f"{self.kind} on {self.node}"


@dataclass(frozen=True)
class Fault:
    """One scheduled fault on one node.  Use the constructor helpers."""

    kind: str
    node: str
    at: float
    #: Seconds until repair; ``inf`` means permanent (disk_fail only).
    duration: float = math.inf
    #: Extra idle-power reboot time after a ``power`` outage ends.
    reboot_s: float = 0.0
    #: Remaining fraction of NIC line rate during a ``nic`` fault, or of
    #: DMIPS during a ``cpu_throttle`` fault.
    factor: float = 1.0
    #: I/O time multiplier during a ``disk_stall`` fault.
    slowdown: float = 1.0
    #: Fraction of packets lost during a ``packet_loss`` fault.
    loss: float = 0.0
    #: Rack severed by a ``partition``/``switch_down`` fault (resolved
    #: against the topology at injection time).
    rack: str = ""
    #: Explicit node set severed by a ``partition`` fault (alternative
    #: to naming a whole rack).
    nodes: Tuple[str, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if not self.node:
            raise ValueError("a fault needs a victim node name")
        if self.at < 0:
            raise ValueError("fault onset time must be >= 0")
        if self.duration <= 0:
            raise ValueError("fault duration must be > 0")
        if self.reboot_s < 0:
            raise ValueError("reboot_s must be >= 0")
        if math.isinf(self.duration) and self.kind != "disk_fail":
            raise ValueError(f"only disk_fail may be permanent; "
                             f"{self.kind} needs a finite duration")
        if self.kind in PARTITION_KINDS:
            if bool(self.rack) == bool(self.nodes):
                raise ValueError(f"{self.kind} needs exactly one of "
                                 "rack= or nodes=")
            if self.kind == "switch_down" and not self.rack:
                raise ValueError("switch_down severs a whole rack; "
                                 "use partition for arbitrary node sets")
        elif self.rack or self.nodes:
            raise ValueError(f"rack/nodes only apply to {PARTITION_KINDS}")
        if self.kind == "nic" and not 0 < self.factor <= 1:
            # factor 0 would wedge in-flight store-and-forward messages
            # whose serialisation time is already committed.
            raise ValueError("nic factor must be in (0, 1]")
        if self.kind == "disk_stall" and self.slowdown < 1:
            raise ValueError("disk_stall slowdown must be >= 1")
        if self.kind == "cpu_throttle" and not 0 < self.factor <= 1:
            raise ValueError("cpu_throttle factor must be in (0, 1]")
        if self.kind == "packet_loss" and not 0 < self.loss < 1:
            # loss 1 would starve the link outright — that's a nic/crash
            # fault, not a gray one.
            raise ValueError("packet_loss loss must be in (0, 1)")

    def to_dict(self) -> Dict:
        out: Dict = {"kind": self.kind, "node": self.node, "at": self.at}
        if not math.isinf(self.duration):
            out["duration"] = self.duration
        if self.reboot_s:
            out["reboot_s"] = self.reboot_s
        if self.kind in ("nic", "cpu_throttle"):
            out["factor"] = self.factor
        if self.kind == "disk_stall":
            out["slowdown"] = self.slowdown
        if self.kind == "packet_loss":
            out["loss"] = self.loss
        if self.rack:
            out["rack"] = self.rack
        if self.nodes:
            out["nodes"] = list(self.nodes)
        return out


def node_crash(node: str, at: float, repair_s: float) -> Fault:
    """The node halts at ``at`` and serves again ``repair_s`` later."""
    return Fault(kind="crash", node=node, at=at, duration=repair_s)


def power_event(node: str, at: float, outage_s: float,
                reboot_s: float = 30.0) -> Fault:
    """Supply loss: 0 W for ``outage_s``, then ``reboot_s`` at idle."""
    return Fault(kind="power", node=node, at=at, duration=outage_s,
                 reboot_s=reboot_s)


def nic_degrade(node: str, at: float, duration: float,
                factor: float) -> Fault:
    """NIC drops to ``factor`` of line rate for ``duration`` seconds."""
    return Fault(kind="nic", node=node, at=at, duration=duration,
                 factor=factor)


def disk_stall(node: str, at: float, duration: float,
               slowdown: float) -> Fault:
    """Device I/O takes ``slowdown``× longer for ``duration`` seconds."""
    return Fault(kind="disk_stall", node=node, at=at, duration=duration,
                 slowdown=slowdown)


def disk_failure(node: str, at: float) -> Fault:
    """The disk dies at ``at``; its block replicas are lost for good."""
    return Fault(kind="disk_fail", node=node, at=at)


def cpu_throttle(node: str, at: float, duration: float,
                 factor: float) -> Fault:
    """DMIPS drop to ``factor`` of nominal for ``duration`` seconds."""
    return Fault(kind="cpu_throttle", node=node, at=at, duration=duration,
                 factor=factor)


def packet_loss(node: str, at: float, duration: float,
                loss: float) -> Fault:
    """The NIC loses fraction ``loss`` of packets for ``duration`` s."""
    return Fault(kind="packet_loss", node=node, at=at, duration=duration,
                 loss=loss)


def rack_partition(rack: str, at: float, duration: float) -> Fault:
    """Sever ``rack`` from the rest of the fabric for ``duration`` s."""
    return Fault(kind="partition", node=rack, at=at, duration=duration,
                 rack=rack)


def node_set_partition(nodes: Iterable[str], at: float,
                       duration: float, label: str = "") -> Fault:
    """Sever an arbitrary node set from everything else."""
    members = tuple(nodes)
    return Fault(kind="partition", node=label or ",".join(members),
                 at=at, duration=duration, nodes=members)


def switch_down(rack: str, at: float, duration: float) -> Fault:
    """Kill ``rack``'s ToR switch: its members lose all connectivity."""
    return Fault(kind="switch_down", node=rack, at=at, duration=duration,
                 rack=rack)


@dataclass(frozen=True)
class RecurringFault:
    """A seeded stochastic fault process on one node.

    Time between failures is exponential with mean ``mtbf_s``; each
    outage lasts an exponential draw with mean ``mttr_s``.  Draws come
    from the injector's dedicated RNG stream, so two runs with the same
    seed see the same fault history.
    """

    kind: str
    node: str
    mtbf_s: float
    mttr_s: float
    #: No fault fires before this time (let the system warm up).
    start: float = 0.0
    reboot_s: float = 0.0
    factor: float = 0.5
    slowdown: float = 10.0
    loss: float = 0.1

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "disk_fail":
            raise ValueError("disk_fail is permanent and cannot recur; "
                             "schedule it as a one-shot fault")
        if self.kind in PARTITION_KINDS:
            raise ValueError(f"{self.kind} severs a node *set* and must "
                             "be scheduled as a one-shot fault")
        if not self.node:
            raise ValueError("a fault needs a victim node name")
        if self.mtbf_s <= 0 or self.mttr_s <= 0:
            raise ValueError("mtbf_s and mttr_s must be > 0")
        if self.start < 0:
            raise ValueError("start must be >= 0")
        # Re-use Fault's kind-parameter validation.
        Fault(kind=self.kind, node=self.node, at=self.start, duration=1.0,
              reboot_s=self.reboot_s, factor=self.factor,
              slowdown=self.slowdown, loss=self.loss)

    def make_fault(self, at: float, duration: float) -> Fault:
        """One concrete outage of this process."""
        return Fault(kind=self.kind, node=self.node, at=at,
                     duration=duration, reboot_s=self.reboot_s,
                     factor=self.factor, slowdown=self.slowdown,
                     loss=self.loss)

    def to_dict(self) -> Dict:
        out: Dict = {"kind": self.kind, "node": self.node,
                     "mtbf_s": self.mtbf_s, "mttr_s": self.mttr_s}
        if self.start:
            out["start"] = self.start
        if self.reboot_s:
            out["reboot_s"] = self.reboot_s
        if self.kind in ("nic", "cpu_throttle"):
            out["factor"] = self.factor
        if self.kind == "disk_stall":
            out["slowdown"] = self.slowdown
        if self.kind == "packet_loss":
            out["loss"] = self.loss
        return out


@dataclass(frozen=True)
class FaultPlan:
    """Everything a chaos run will inject: one-shots plus processes."""

    faults: Tuple[Fault, ...] = field(default_factory=tuple)
    recurring: Tuple[RecurringFault, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))
        object.__setattr__(self, "recurring", tuple(self.recurring))

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls()

    @property
    def is_empty(self) -> bool:
        return not self.faults and not self.recurring

    def __len__(self) -> int:
        return len(self.faults) + len(self.recurring)

    def nodes(self) -> List[str]:
        """Every node the plan targets (deduplicated, plan order).

        Partition faults contribute their explicit ``nodes`` sets; a
        rack label is not a node and is resolved against the topology
        at injection time instead.
        """
        seen: List[str] = []
        for item in (*self.faults, *self.recurring):
            names = (item.nodes if getattr(item, "rack", "")
                     or getattr(item, "nodes", ()) else (item.node,))
            for name in names:
                if name not in seen:
                    seen.append(name)
        return seen

    def racks(self) -> List[str]:
        """Every rack the plan severs (deduplicated, plan order)."""
        seen: List[str] = []
        for fault in self.faults:
            if fault.rack and fault.rack not in seen:
                seen.append(fault.rack)
        return seen

    def check_against(self, known_nodes: Iterable[str]) -> None:
        """Fail fast when the plan names a node the cluster lacks."""
        known = set(known_nodes)
        missing = [n for n in self.nodes() if n not in known]
        if missing:
            raise ValueError(
                f"fault plan targets unknown node(s) {missing}; "
                f"cluster has {sorted(known)}")

    def without_kinds(self, kinds: Iterable[str]) -> "FaultPlan":
        """A copy with every fault of the given kinds stripped.

        The durability acceptance check runs the committed day once
        with partitions and once with ``without_kinds(PARTITION_KINDS)``
        as the no-partition control for downtime accounting.
        """
        drop = set(kinds)
        return FaultPlan(
            faults=tuple(f for f in self.faults if f.kind not in drop),
            recurring=tuple(r for r in self.recurring
                            if r.kind not in drop))

    # -- (de)serialisation for --fault-plan FILE -------------------------

    def to_dict(self) -> Dict:
        return {"faults": [f.to_dict() for f in self.faults],
                "recurring": [r.to_dict() for r in self.recurring]}

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValueError("fault plan must be a JSON object")
        unknown = set(data) - {"faults", "recurring"}
        if unknown:
            raise ValueError(f"unknown fault-plan keys {sorted(unknown)}")
        faults = [Fault(**item) for item in data.get("faults", ())]
        recurring = [RecurringFault(**item)
                     for item in data.get("recurring", ())]
        return cls(faults=tuple(faults), recurring=tuple(recurring))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Read a plan from a JSON file (the CLI's ``--fault-plan``)."""
        with open(path) as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}: not valid JSON: {exc}") from exc
        try:
            return cls.from_dict(data)
        except TypeError as exc:
            # A misspelled field name surfaces as an unexpected-kwarg
            # TypeError from the dataclass constructor; re-raise with
            # the file attached so the user can find it.
            raise ValueError(f"{path}: {exc}") from exc

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")


def single_node_kill(node: str, at: float,
                     repair_s: Optional[float] = None) -> FaultPlan:
    """The headline plan: kill one node, optionally bring it back."""
    # "Never repaired" defaults to a repair beyond any realistic run,
    # still finite because disk_fail is the only permanent kind.
    repair = repair_s if repair_s is not None else 1e9
    return FaultPlan(faults=(node_crash(node, at, repair),))
