"""Phi-accrual failure detection (Hayashibara et al., SRDS 2004).

YARN's stock liveness rule is a fixed expiry: miss N heartbeats and you
are dead.  On a fleet of micro servers whose heartbeat jitter is wide
(the seeded ``heartbeat_jitter`` window spans 0.3-1.0x the base period)
a fixed window is either trigger-happy or sluggish.  The phi-accrual
detector instead keeps a sliding window of observed inter-arrival times
per node and reports a *suspicion level*::

    phi(t) = -log10( P(a beat arrives later than t) )

under a normal fit of the window.  ``phi >= threshold`` (8 by default —
a one-in-10^8 chance the node is merely slow) is the adaptive
equivalent of "expired": nodes with steady heartbeats are convicted
quickly, jittery ones get proportionally more grace.

The detector is passive and allocation-free on the hot path: feeding it
a beat updates two running sums; suspicion is only evaluated when a
liveness decision is pending.  It draws no RNG and spawns no processes
itself — the durability plane owns the seeded feeder processes, so an
un-armed detector leaves runs bit-identical.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Dict, Optional

#: Suspicion is capped here: erfc underflows around phi ~ 300 anyway
#: and no policy distinguishes "certainly dead" from "certainly dead".
PHI_CAP = 100.0

_SQRT2 = math.sqrt(2.0)


class PhiAccrualDetector:
    """Per-node adaptive liveness from observed heartbeat arrivals."""

    def __init__(self, sim, threshold: float = 8.0, window: int = 64,
                 min_std_s: float = 0.05, expected_s: float = 1.0):
        if threshold <= 0:
            raise ValueError("threshold must be > 0")
        if window < 2:
            raise ValueError("window must be >= 2")
        if min_std_s <= 0 or expected_s <= 0:
            raise ValueError("min_std_s and expected_s must be > 0")
        self.sim = sim
        self.threshold = threshold
        self.window = window
        self.min_std_s = min_std_s
        #: Prior mean inter-arrival, used until a node has real history.
        self.expected_s = expected_s
        self._arrivals: Dict[str, Deque[float]] = {}
        self._sum: Dict[str, float] = {}
        self._sumsq: Dict[str, float] = {}
        self._last: Dict[str, float] = {}
        self.beats = 0

    # -- feeding ---------------------------------------------------------

    def beat(self, node: str, at: Optional[float] = None) -> None:
        """Record one heartbeat arrival from ``node``."""
        now = self.sim.now if at is None else at
        last = self._last.get(node)
        self._last[node] = now
        self.beats += 1
        if last is None:
            return
        interval = now - last
        arrivals = self._arrivals.get(node)
        if arrivals is None:
            arrivals = self._arrivals[node] = deque(maxlen=self.window)
            self._sum[node] = 0.0
            self._sumsq[node] = 0.0
        if len(arrivals) == arrivals.maxlen:
            old = arrivals[0]
            self._sum[node] -= old
            self._sumsq[node] -= old * old
        arrivals.append(interval)
        self._sum[node] += interval
        self._sumsq[node] += interval * interval

    # -- statistics ------------------------------------------------------

    def _fit(self, node: str):
        """(mean, std) of the node's inter-arrival window."""
        arrivals = self._arrivals.get(node)
        if not arrivals or len(arrivals) < 2:
            return self.expected_s, max(self.min_std_s,
                                        self.expected_s / 4.0)
        n = len(arrivals)
        mean = self._sum[node] / n
        var = max(0.0, self._sumsq[node] / n - mean * mean)
        return mean, max(math.sqrt(var), self.min_std_s)

    def phi(self, node: str, now: Optional[float] = None) -> float:
        """Current suspicion level for ``node`` (0 = just heard from)."""
        now = self.sim.now if now is None else now
        last = self._last.get(node)
        if last is None:
            return 0.0
        silent = now - last
        if silent <= 0:
            return 0.0
        mean, std = self._fit(node)
        p_later = 0.5 * math.erfc((silent - mean) / (std * _SQRT2))
        if p_later <= 1e-300:
            return PHI_CAP
        return min(PHI_CAP, -math.log10(p_later))

    def is_suspect(self, node: str, now: Optional[float] = None) -> bool:
        return self.phi(node, now) >= self.threshold

    def silence_for_suspicion(self, node: str) -> float:
        """Seconds of silence after the last beat at which ``phi``
        crosses the threshold — phi is monotone in silence, so a short
        bisection pins the crossing to a microsecond."""
        mean, std = self._fit(node)
        lo, hi = mean, mean + 40.0 * std
        target = self.threshold

        def phi_at(silent: float) -> float:
            p = 0.5 * math.erfc((silent - mean) / (std * _SQRT2))
            return PHI_CAP if p <= 1e-300 else min(PHI_CAP,
                                                   -math.log10(p))

        if phi_at(hi) < target:  # pragma: no cover - cap is generous
            return hi
        for _ in range(60):
            mid = (lo + hi) / 2.0
            if phi_at(mid) >= target:
                hi = mid
            else:
                lo = mid
            if hi - lo < 1e-6:
                break
        return hi

    # -- liveness decisions ----------------------------------------------

    def wait_suspect(self, node: str,
                     healthy: Optional[Callable[[], bool]] = None):
        """Process generator: resolve ``True`` when suspicion crosses
        the threshold, ``False`` if ``healthy()`` turns true first (the
        node's beats resumed before conviction — a healed partition)."""
        while True:
            now = self.sim.now
            if self.phi(node, now) >= self.threshold:
                return True
            if healthy is not None and healthy():
                return False
            last = self._last.get(node, now)
            target = last + self.silence_for_suspicion(node)
            yield max(target - now, 1e-3)
