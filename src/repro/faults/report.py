"""Chaos accounting: availability, MTTR, goodput and energy overheads.

Two canned experiments back the paper's reliability argument (Section
5.2 chose replication 2 on the 35-node Edison cluster *because* losing
sensor-class nodes is routine):

* :func:`web_kill_experiment` — kill one web server mid-measurement and
  compare goodput against an identical fault-free run.  On the
  full-scale Edison tier the loss is ~1/N of capacity (the marginal
  loss the micro-server pitch advertises); on the 2-server Dell tier it
  is catastrophic.
* :func:`job_kill_experiment` — kill one Hadoop slave mid-job and show
  the job still completes through task re-execution and HDFS replica
  fallback, at a measured time/energy overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .injector import FaultInjector
from .models import FaultPlan, single_node_kill


@dataclass(frozen=True)
class AvailabilityReport:
    """Node-availability summary of one chaos run."""

    window_s: float
    mean_availability: float
    total_downtime_s: float
    mean_mttr_s: Optional[float]
    faults_injected: int
    open_outages: int

    @classmethod
    def from_injector(cls, injector: FaultInjector,
                      until: Optional[float] = None,
                      nodes: Optional[List[str]] = None
                      ) -> "AvailabilityReport":
        until = injector.sim.now if until is None else until
        names = list(nodes) if nodes is not None else list(injector.status)
        down = sum(injector.downtime(n, until) for n in names)
        return cls(
            window_s=until,
            mean_availability=injector.mean_availability(until, names),
            total_downtime_s=down,
            mean_mttr_s=injector.mean_mttr(),
            faults_injected=len(injector.records),
            open_outages=sum(1 for r in injector.records if r.end is None))

    def lines(self) -> List[str]:
        """Human-readable summary rows for the CLI."""
        mttr = ("n/a" if self.mean_mttr_s is None
                else f"{self.mean_mttr_s:.1f} s")
        return [
            f"faults injected: {self.faults_injected} "
            f"({self.open_outages} unrepaired)",
            f"mean node availability: {self.mean_availability * 100:.2f} % "
            f"over {self.window_s:.0f} s",
            f"total node downtime: {self.total_downtime_s:.1f} s",
            f"mean time to repair: {mttr}",
        ]


# -- web tier ------------------------------------------------------------


@dataclass(frozen=True)
class WebChaosResult:
    """Goodput under a web-tier fault plan vs the fault-free baseline."""

    platform: str
    victims: List[str]
    web_servers: int
    baseline: object            # LevelResult
    faulted: object             # LevelResult
    availability: AvailabilityReport
    #: 1 - faulted/baseline goodput over the measurement window.
    goodput_loss_fraction: float
    #: Capacity-share prediction: victim downtime inside the window,
    #: as a fraction of window x web-server count.
    expected_loss_fraction: float
    #: Relative change in joules per successful call.
    energy_per_call_overhead: float


def web_kill_experiment(platform: str = "edison", scale: str = "full",
                        victim: Optional[str] = None,
                        plan: Optional[FaultPlan] = None,
                        concurrency: int = 512,
                        duration: float = 6.0, warmup: float = 1.5,
                        kill_at: float = 1.5,
                        repair_s: Optional[float] = None,
                        seed: int = 20160901,
                        detection_s: float = 0.25,
                        trace=None, telemetry=None,
                        resilience=None) -> WebChaosResult:
    """Run one concurrency level twice: fault-free, then under ``plan``.

    Without an explicit ``plan``, ``victim`` (default: the first web
    server) is killed at ``kill_at`` and repaired after ``repair_s``
    (default: never within the run).  Both runs use the same seed, so
    the only difference is the injected faults.  A
    :class:`repro.telemetry.Telemetry` passed as ``telemetry`` monitors
    the faulted run (the one whose detection latency is interesting).
    A :class:`repro.resilience.ResilienceConfig` passed as
    ``resilience`` arms the *faulted* run only — the baseline stays the
    clean, unmitigated twin the overheads are measured against.
    """
    from ..web import WebServiceDeployment   # deferred: import cycle
    baseline_dep = WebServiceDeployment(platform, scale, seed=seed)
    baseline = baseline_dep.run_level(concurrency, duration=duration,
                                      warmup=warmup)
    dep = WebServiceDeployment(platform, scale, seed=seed, trace=trace,
                               resilience=resilience)
    if plan is None:
        victim = victim or dep.web_nodes[0].server.name
        plan = single_node_kill(victim, kill_at, repair_s)
    if telemetry is not None:
        telemetry.attach_web(dep)
    injector = dep.attach_faults(plan, detection_s=detection_s)
    faulted = dep.run_level(concurrency, duration=duration, warmup=warmup)
    window = duration - warmup
    down_in_window = 0.0
    for record in injector.records:
        if record.kind not in ("crash", "power"):
            continue
        end = record.end if record.end is not None else duration
        down_in_window += max(
            0.0, min(end, duration) - max(record.start, warmup))
    loss = (1.0 - faulted.ok_calls / baseline.ok_calls
            if baseline.ok_calls else 0.0)
    expected = down_in_window / window / len(dep.web_nodes)
    if baseline.ok_calls and faulted.ok_calls and baseline.energy_joules:
        per_call_base = baseline.energy_joules / baseline.ok_calls
        per_call_fault = faulted.energy_joules / faulted.ok_calls
        energy_overhead = per_call_fault / per_call_base - 1.0
    else:
        energy_overhead = 0.0
    return WebChaosResult(
        platform=platform,
        victims=plan.nodes(),
        web_servers=len(dep.web_nodes),
        baseline=baseline,
        faulted=faulted,
        availability=AvailabilityReport.from_injector(injector,
                                                      until=duration),
        goodput_loss_fraction=loss,
        expected_loss_fraction=expected,
        energy_per_call_overhead=energy_overhead)


# -- MapReduce -----------------------------------------------------------


@dataclass(frozen=True)
class JobChaosResult:
    """A job run under faults vs its fault-free twin."""

    job: str
    platform: str
    slaves: int
    victims: List[str]
    #: The job finished despite the faults (False: failed cleanly).
    completed: bool
    baseline: object            # JobReport
    faulted: Optional[object]   # JobReport; None when not completed
    availability: AvailabilityReport
    #: Completed map outputs lost to node failure and re-executed.
    recovered_maps: int
    time_overhead_fraction: float
    energy_overhead_fraction: float


def job_kill_experiment(job: str = "wordcount", platform: str = "edison",
                        slaves: int = 35,
                        victim: Optional[str] = None,
                        plan: Optional[FaultPlan] = None,
                        kill_at: float = 30.0,
                        repair_s: Optional[float] = None,
                        seed: int = 20160901,
                        detection_s: float = 0.25,
                        deadline_s: float = 100_000.0,
                        trace=None, telemetry=None,
                        resilience=None) -> JobChaosResult:
    """Run one Table 8 job twice: fault-free, then under ``plan``.

    Without an explicit ``plan``, ``victim`` (default: the first slave)
    crashes at ``kill_at`` and is repaired after ``repair_s`` (default:
    never within the run).  ``telemetry`` monitors the faulted run;
    a ``resilience`` config arms the faulted run only, leaving the
    baseline as the clean twin.
    """
    from ..mapreduce import JOB_FACTORIES, JobRunner  # deferred: cycle
    from ..mapreduce.runtime import JobFailed
    spec, config = JOB_FACTORIES[job](platform, slaves)
    baseline_runner = JobRunner(platform, slaves, config=config, seed=seed)
    baseline = baseline_runner.run(spec, deadline_s=deadline_s)
    runner = JobRunner(platform, slaves, config=config, seed=seed,
                       trace=trace, resilience=resilience)
    if plan is None:
        victim = victim or runner.slave_servers[0].name
        plan = single_node_kill(victim, kill_at, repair_s)
    if telemetry is not None:
        telemetry.attach_job(runner)
    injector = FaultInjector(runner.cluster, plan, detection_s=detection_s)
    completed = True
    faulted: Optional[object] = None
    try:
        faulted = runner.run(spec, deadline_s=deadline_s)
    except JobFailed:
        completed = False
    state = runner._active[1] if runner._active is not None else None
    recovered = state.lost_map_count if state is not None else 0
    if completed and faulted is not None:
        time_over = faulted.seconds / baseline.seconds - 1.0
        energy_over = faulted.joules / baseline.joules - 1.0
    else:
        time_over = float("inf")
        energy_over = float("inf")
    return JobChaosResult(
        job=job, platform=platform, slaves=slaves,
        victims=plan.nodes(),
        completed=completed,
        baseline=baseline, faulted=faulted,
        availability=AvailabilityReport.from_injector(injector),
        recovered_maps=recovered,
        time_overhead_fraction=time_over,
        energy_overhead_fraction=energy_over)
