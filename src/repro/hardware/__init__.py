"""Calibrated hardware models: CPU, memory, storage, NIC, power, servers."""

from .cpu import NOMINAL_PSTATE, Cpu, CpuSpec, PState, derive_pstates
from .memory import Memory, MemorySpec
from .nic import Nic, NicSpec
from .power import DEFAULT_WEIGHTS, PowerSpec, cluster_power
from .profiles import (
    DELL_R620, EDISON, EDISON_INTEGRATED_NIC, PROFILES, make_server,
)
from .server import Server, ServerSpec
from .storage import Storage, StorageSpec

__all__ = [
    "Cpu", "CpuSpec", "DEFAULT_WEIGHTS", "DELL_R620", "EDISON",
    "EDISON_INTEGRATED_NIC", "Memory", "MemorySpec", "NOMINAL_PSTATE",
    "Nic", "NicSpec", "PROFILES", "PState", "PowerSpec", "Server",
    "ServerSpec", "Storage", "StorageSpec", "cluster_power",
    "derive_pstates", "make_server",
]
