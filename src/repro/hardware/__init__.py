"""Calibrated hardware models: CPU, memory, storage, NIC, power, servers."""

from .cpu import Cpu, CpuSpec
from .memory import Memory, MemorySpec
from .nic import Nic, NicSpec
from .power import DEFAULT_WEIGHTS, PowerSpec, cluster_power
from .profiles import (
    DELL_R620, EDISON, EDISON_INTEGRATED_NIC, PROFILES, make_server,
)
from .server import Server, ServerSpec
from .storage import Storage, StorageSpec

__all__ = [
    "Cpu", "CpuSpec", "DEFAULT_WEIGHTS", "DELL_R620", "EDISON",
    "EDISON_INTEGRATED_NIC", "Memory", "MemorySpec", "Nic", "NicSpec",
    "PROFILES", "PowerSpec", "Server", "ServerSpec", "Storage",
    "StorageSpec", "cluster_power", "make_server",
]
