"""CPU model: virtual cores with Dhrystone-MIPS service rates.

Work is expressed in *millions of instructions* (MI).  A task claims one
virtual core (a slot of a FIFO :class:`~repro.sim.Resource`) and holds it
for ``work / dmips`` seconds.  The model captures the two facts Section
4.1 of the paper establishes:

* per-thread speed is the measured Dhrystone DMIPS (632.3 on Edison,
  11383 on the Dell R620's Xeon), and
* hyper-threaded vcores are not full cores — an SMT efficiency factor
  scales per-thread throughput when both hardware threads of a core are
  in use, which is what makes the whole-machine gap ~100x rather than
  the nameplate 12x.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Request, Resource, Simulation


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a processor.

    Parameters
    ----------
    cores:
        Physical core count.
    threads_per_core:
        Hardware threads per core (2 = hyper-threading).
    dmips_per_thread:
        Dhrystone MIPS of a single thread running alone.
    smt_efficiency:
        Throughput retained per thread when all hardware threads are
        busy (1.0 for non-SMT parts).
    """

    cores: int
    threads_per_core: int
    dmips_per_thread: float
    smt_efficiency: float = 1.0

    def __post_init__(self):
        if self.cores < 1 or self.threads_per_core < 1:
            raise ValueError("cores and threads_per_core must be >= 1")
        if self.dmips_per_thread <= 0:
            raise ValueError("dmips_per_thread must be > 0")
        if not 0 < self.smt_efficiency <= 1:
            raise ValueError("smt_efficiency must be in (0, 1]")

    @property
    def vcores(self) -> int:
        """Schedulable virtual cores."""
        return self.cores * self.threads_per_core

    @property
    def vcore_dmips(self) -> float:
        """Sustained DMIPS of one vcore when the machine is fully loaded."""
        if self.threads_per_core == 1:
            return self.dmips_per_thread
        return self.dmips_per_thread * self.smt_efficiency

    @property
    def machine_dmips(self) -> float:
        """Aggregate DMIPS with every vcore busy."""
        return self.vcores * self.vcore_dmips


class Cpu:
    """Runtime CPU: a pool of vcores executing MI-denominated work."""

    def __init__(self, sim: Simulation, spec: CpuSpec, name: str = "cpu"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.vcores = Resource(sim, capacity=spec.vcores, name=f"{name}.vcores")
        # Flat copies of what execute() needs per burst: vcore_dmips is
        # a computed property, too hot to re-derive per CPU burst.
        self._cores = spec.cores
        self._thread_dmips = spec.dmips_per_thread
        self._loaded_dmips = spec.vcore_dmips
        # Thermal-throttle factor in (0, 1]; the fault injector scales
        # it while a cpu_throttle fault is active.  1.0 means nominal.
        self.throttle = 1.0

    def service_time(self, work_mi: float) -> float:
        """Seconds one vcore needs for ``work_mi`` MI at full machine load."""
        if work_mi < 0:
            raise ValueError(f"negative work {work_mi!r}")
        return work_mi / self.spec.vcore_dmips

    def busy_time(self, work_mi: float) -> float:
        """Like :meth:`service_time`, but at the *current* throttle.

        The seconds a vcore is actually occupied right now — what
        energy attribution must price, since a thermally throttled core
        burns power for the whole stretched burst.
        """
        if work_mi < 0:
            raise ValueError(f"negative work {work_mi!r}")
        return work_mi / (self.spec.vcore_dmips * self.throttle)

    def rate_for(self, active_vcores: int) -> float:
        """Per-vcore DMIPS when ``active_vcores`` are busy.

        While no core runs both of its hardware threads, each thread
        gets its full single-thread speed; once threads start doubling
        up, per-thread speed drops to the SMT-degraded rate.  This is
        why Dhrystone (one thread) sees 11383 DMIPS on the Dell while
        the fully loaded machine sustains only ~100x an Edison.
        """
        if active_vcores <= self.spec.cores:
            return self.spec.dmips_per_thread
        return self.spec.vcore_dmips

    def execute(self, work_mi: float):
        """Process generator: queue for a vcore, run ``work_mi``, release.

        The service rate is fixed at dispatch from the occupancy at that
        moment (a deliberate fluid approximation: re-rating mid-burst
        would add events without changing any paper-level result).
        """
        if work_mi < 0:
            raise ValueError(f"negative work {work_mi!r}")
        # try/finally rather than the context-manager sugar: execute()
        # runs once per simulated CPU burst, and __enter__/__exit__ are
        # two extra calls per burst for the same release-on-interrupt
        # guarantee.  rate_for() is likewise inlined against the live
        # holder count.
        vcores = self.vcores
        grant = Request(vcores)
        try:
            yield grant
            rate = (self._thread_dmips
                    if len(vcores.users) <= self._cores
                    else self._loaded_dmips)
            throttle = self.throttle
            if throttle != 1.0:
                rate *= throttle
            yield work_mi / rate
        finally:
            vcores.release(grant)

    def utilization(self) -> float:
        """Instantaneous fraction of vcores that are busy."""
        return self.vcores.count / self.vcores.capacity

    def busy_vcore_seconds(self) -> float:
        """Total vcore-seconds consumed since the simulation started."""
        return self.vcores.busy_time()
