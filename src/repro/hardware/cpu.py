"""CPU model: virtual cores with Dhrystone-MIPS service rates.

Work is expressed in *millions of instructions* (MI).  A task claims one
virtual core (a slot of a FIFO :class:`~repro.sim.Resource`) and holds it
for ``work / dmips`` seconds.  The model captures the two facts Section
4.1 of the paper establishes:

* per-thread speed is the measured Dhrystone DMIPS (632.3 on Edison,
  11383 on the Dell R620's Xeon), and
* hyper-threaded vcores are not full cores — an SMT efficiency factor
  scales per-thread throughput when both hardware threads of a core are
  in use, which is what makes the whole-machine gap ~100x rather than
  the nameplate 12x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..sim import Request, Resource, Simulation


@dataclass(frozen=True)
class PState:
    """One DVFS operating point of a processor.

    ``dmips_factor`` scales the nominal per-thread DMIPS (frequency is
    what Dhrystone throughput tracks), ``busy_w_factor`` scales the
    busy-above-idle power span when a core is saturated in this state
    (voltage drops with frequency, so the span shrinks faster than
    linearly — the classic ~f*V^2 story).  P0 is always ``(1.0, 1.0)``
    so the nominal tables of the paper are reproduced bit-exactly when
    no governor ever leaves it.
    """

    name: str
    dmips_factor: float
    busy_w_factor: float

    def __post_init__(self):
        if not 0 < self.dmips_factor <= 1:
            raise ValueError("dmips_factor must be in (0, 1]")
        if not 0 < self.busy_w_factor <= 1:
            raise ValueError("busy_w_factor must be in (0, 1]")


#: The implicit single-state table: nominal frequency only.
NOMINAL_PSTATE = PState("P0", 1.0, 1.0)


def derive_pstates(dmips_factors, power_exponent: float = 2.0,
                   prefix: str = "P") -> Tuple[PState, ...]:
    """Build a P-state table from relative frequencies alone.

    ``busy_w_factor = dmips_factor ** power_exponent`` models dynamic
    power ~ f * V^2 with voltage tracking frequency; the first factor
    must be exactly 1.0 so P0 reproduces the nominal Table 3 numbers
    bit-exactly (1.0 ** e == 1.0 in IEEE arithmetic).
    """
    factors = tuple(dmips_factors)
    if not factors:
        raise ValueError("need at least one dmips factor")
    if factors[0] != 1.0:
        raise ValueError("the first (P0) dmips factor must be exactly 1.0")
    if any(b >= a for a, b in zip(factors, factors[1:])):
        raise ValueError("dmips factors must be strictly decreasing")
    if power_exponent < 1.0:
        raise ValueError("power_exponent must be >= 1 (span cannot grow "
                         "as frequency drops)")
    return tuple(PState(f"{prefix}{i}", f, f ** power_exponent)
                 for i, f in enumerate(factors))


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a processor.

    Parameters
    ----------
    cores:
        Physical core count.
    threads_per_core:
        Hardware threads per core (2 = hyper-threading).
    dmips_per_thread:
        Dhrystone MIPS of a single thread running alone.
    smt_efficiency:
        Throughput retained per thread when all hardware threads are
        busy (1.0 for non-SMT parts).
    pstates:
        Discrete DVFS operating points, highest frequency first.  The
        default single-entry table pins the CPU at nominal speed, which
        is bit-identical to the pre-DVFS model; richer tables only
        matter once a :mod:`repro.dvfs` governor moves off P0.
    """

    cores: int
    threads_per_core: int
    dmips_per_thread: float
    smt_efficiency: float = 1.0
    pstates: Tuple[PState, ...] = (NOMINAL_PSTATE,)

    def __post_init__(self):
        if self.cores < 1 or self.threads_per_core < 1:
            raise ValueError("cores and threads_per_core must be >= 1")
        if self.dmips_per_thread <= 0:
            raise ValueError("dmips_per_thread must be > 0")
        if not 0 < self.smt_efficiency <= 1:
            raise ValueError("smt_efficiency must be in (0, 1]")
        pstates = tuple(self.pstates)
        object.__setattr__(self, "pstates", pstates)
        if not pstates:
            raise ValueError("pstates must hold at least one state")
        if pstates[0].dmips_factor != 1.0 or pstates[0].busy_w_factor != 1.0:
            raise ValueError("P0 must carry factors of exactly 1.0 so the "
                             "nominal tables reproduce bit-exactly")
        for a, b in zip(pstates, pstates[1:]):
            if b.dmips_factor >= a.dmips_factor:
                raise ValueError("pstates must be ordered by strictly "
                                 "decreasing dmips_factor")

    @property
    def vcores(self) -> int:
        """Schedulable virtual cores."""
        return self.cores * self.threads_per_core

    @property
    def vcore_dmips(self) -> float:
        """Sustained DMIPS of one vcore when the machine is fully loaded."""
        if self.threads_per_core == 1:
            return self.dmips_per_thread
        return self.dmips_per_thread * self.smt_efficiency

    @property
    def machine_dmips(self) -> float:
        """Aggregate DMIPS with every vcore busy."""
        return self.vcores * self.vcore_dmips


class Cpu:
    """Runtime CPU: a pool of vcores executing MI-denominated work."""

    def __init__(self, sim: Simulation, spec: CpuSpec, name: str = "cpu"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.vcores = Resource(sim, capacity=spec.vcores, name=f"{name}.vcores")
        # Flat copies of what execute() needs per burst: vcore_dmips is
        # a computed property, too hot to re-derive per CPU burst.
        self._cores = spec.cores
        self._thread_dmips = spec.dmips_per_thread
        self._loaded_dmips = spec.vcore_dmips
        # Thermal-throttle factor in (0, 1]; the fault injector scales
        # it while a cpu_throttle fault is active.  1.0 means nominal.
        self.throttle = 1.0
        # Active DVFS operating point.  A governor moves it through
        # set_pstate(); in-flight bursts are re-rated per slice exactly
        # like a cpu_throttle fault — the next slice dispatched picks
        # up the new rate — and the two factors compose multiplicatively.
        self.pstate_index = 0
        self._pstate = spec.pstates[0]
        self._dvfs_factor = 1.0

    @property
    def pstate(self) -> PState:
        """The active DVFS operating point (P0 unless a governor moved it)."""
        return self._pstate

    def set_pstate(self, index: int) -> PState:
        """Switch to ``spec.pstates[index]``; returns the new state.

        Pure field flips — no events, no RNG — so with every CPU left
        at index 0 (the default) runs are bit-identical to a build
        without P-states.  Bursts already executing keep the rate they
        dispatched with; each subsequent slice re-rates, the same
        fluid approximation ``cpu_throttle`` faults use.
        """
        states = self.spec.pstates
        if not 0 <= index < len(states):
            raise ValueError(f"pstate index {index} out of range for "
                             f"{len(states)} states")
        self.pstate_index = index
        self._pstate = states[index]
        self._dvfs_factor = states[index].dmips_factor
        return self._pstate

    def service_time(self, work_mi: float) -> float:
        """Seconds one vcore needs for ``work_mi`` MI at full machine load."""
        if work_mi < 0:
            raise ValueError(f"negative work {work_mi!r}")
        return work_mi / self.spec.vcore_dmips

    def busy_time(self, work_mi: float) -> float:
        """Like :meth:`service_time`, but at the *current* speed factors.

        The seconds a vcore is actually occupied right now — what
        energy attribution must price, since a thermally throttled or
        down-clocked core burns power for the whole stretched burst.
        """
        if work_mi < 0:
            raise ValueError(f"negative work {work_mi!r}")
        return work_mi / (self.spec.vcore_dmips * self.throttle
                          * self._dvfs_factor)

    def rate_for(self, active_vcores: int) -> float:
        """Per-vcore DMIPS when ``active_vcores`` are busy.

        While no core runs both of its hardware threads, each thread
        gets its full single-thread speed; once threads start doubling
        up, per-thread speed drops to the SMT-degraded rate.  This is
        why Dhrystone (one thread) sees 11383 DMIPS on the Dell while
        the fully loaded machine sustains only ~100x an Edison.
        """
        if active_vcores <= self.spec.cores:
            return self.spec.dmips_per_thread
        return self.spec.vcore_dmips

    def execute(self, work_mi: float):
        """Process generator: queue for a vcore, run ``work_mi``, release.

        The service rate is fixed at dispatch from the occupancy at that
        moment (a deliberate fluid approximation: re-rating mid-burst
        would add events without changing any paper-level result).
        """
        if work_mi < 0:
            raise ValueError(f"negative work {work_mi!r}")
        # try/finally rather than the context-manager sugar: execute()
        # runs once per simulated CPU burst, and __enter__/__exit__ are
        # two extra calls per burst for the same release-on-interrupt
        # guarantee.  rate_for() is likewise inlined against the live
        # holder count.
        vcores = self.vcores
        grant = Request(vcores)
        try:
            yield grant
            rate = (self._thread_dmips
                    if len(vcores.users) <= self._cores
                    else self._loaded_dmips)
            # Throttle and P-state compose multiplicatively; the guards
            # keep the nominal path free of any multiply, so untouched
            # runs stay bit-identical to the pre-DVFS model.
            throttle = self.throttle
            if self._dvfs_factor != 1.0:
                throttle *= self._dvfs_factor
            if throttle != 1.0:
                rate *= throttle
            yield work_mi / rate
        finally:
            vcores.release(grant)

    def utilization(self) -> float:
        """Instantaneous fraction of vcores that are busy."""
        return self.vcores.count / self.vcores.capacity

    def busy_vcore_seconds(self) -> float:
        """Total vcore-seconds consumed since the simulation started."""
        return self.vcores.busy_time()
