"""Memory model: capacity occupancy plus a saturating bandwidth curve.

Two independent aspects are modelled:

* **Occupancy** — megabytes reserved by OS, daemons and tasks, backed by
  a :class:`~repro.sim.Container`; the memory-utilisation curves of
  Figures 12-17 sample this.
* **Bandwidth** — Section 4.2 measures transfer rate versus block size
  and thread count.  Rate grows with block size (per-operation overhead
  amortises away, saturating around 256 KiB) and with threads up to a
  platform-specific saturation point (2 threads on Edison, 12 on the
  Dell), matching the paper's sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Container, Simulation


@dataclass(frozen=True)
class MemorySpec:
    """Static description of a memory subsystem.

    ``half_rate_block`` is the block size at which per-op overhead halves
    the streaming rate; 16 KiB reproduces "saturates from 256 KiB".
    """

    capacity_bytes: float
    peak_bandwidth_bps: float
    saturation_threads: int
    half_rate_block: float = 16 * 1024

    def __post_init__(self):
        if min(self.capacity_bytes, self.peak_bandwidth_bps) <= 0:
            raise ValueError("capacity and bandwidth must be > 0")
        if self.saturation_threads < 1:
            raise ValueError("saturation_threads must be >= 1")

    def bandwidth(self, block_bytes: float, threads: int) -> float:
        """Achievable aggregate rate for a given block size / thread count."""
        if block_bytes <= 0:
            raise ValueError("block size must be > 0")
        if threads < 1:
            raise ValueError("threads must be >= 1")
        block_factor = block_bytes / (block_bytes + self.half_rate_block)
        thread_factor = min(threads, self.saturation_threads) / self.saturation_threads
        return self.peak_bandwidth_bps * block_factor * thread_factor


class Memory:
    """Runtime memory: a byte-denominated occupancy container."""

    def __init__(self, sim: Simulation, spec: MemorySpec, name: str = "mem"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self._occupied = Container(
            sim, capacity=spec.capacity_bytes, name=f"{name}.occupied")

    @property
    def capacity_bytes(self) -> float:
        return self.spec.capacity_bytes

    @property
    def occupied_bytes(self) -> float:
        return self._occupied.level

    def reserve(self, nbytes: float):
        """Event firing once ``nbytes`` could be claimed."""
        return self._occupied.put(nbytes)

    def free(self, nbytes: float):
        """Event firing once ``nbytes`` were returned."""
        return self._occupied.get(nbytes)

    def utilization(self) -> float:
        """Fraction of capacity currently occupied."""
        return self._occupied.level / self.spec.capacity_bytes

    def transfer_time(self, nbytes: float, block_bytes: float = 1 << 20,
                      threads: int = 1) -> float:
        """Seconds to stream ``nbytes`` through the memory system."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return nbytes / self.spec.bandwidth(block_bytes, threads)
