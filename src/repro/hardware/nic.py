"""Network interface model.

The NIC itself is simple — a line rate and byte counters.  Queueing and
bandwidth *sharing* happen on :class:`repro.net.Link`, which drains each
endpoint's NIC at most at its line rate.  The byte counters feed the
power model and the per-server network-I/O figures (e.g. the 60 MB/s vs
5 MB/s web-server comparison in Section 5.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Simulation


@dataclass(frozen=True)
class NicSpec:
    """Static description of a network interface."""

    bandwidth_bps: float
    #: True for the Edison's plug-in USB adapter (the ~1 W power anomaly).
    usb_adapter: bool = False

    def __post_init__(self):
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be > 0")

    @property
    def bytes_per_second(self) -> float:
        return self.bandwidth_bps / 8.0


class Nic:
    """Runtime NIC: line rate plus cumulative traffic accounting."""

    def __init__(self, sim: Simulation, spec: NicSpec, name: str = "nic"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.bytes_sent = 0.0
        self.bytes_received = 0.0
        #: Sum of the rates of transfers currently in flight (bytes/s),
        #: maintained by the links this NIC terminates.
        self.active_rate_Bps = 0.0

    @property
    def total_bytes(self) -> float:
        return self.bytes_sent + self.bytes_received

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` at full line rate (no contention)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return nbytes / self.spec.bytes_per_second

    def utilization(self) -> float:
        """Instantaneous share of line rate claimed by in-flight transfers."""
        return min(1.0, self.active_rate_Bps / self.spec.bytes_per_second)
