"""Component-weighted power model calibrated to the paper's Table 3.

Measured servers interpolate between an idle and a busy wattage as a
function of an *effective utilisation* — a weighted blend of CPU, memory,
disk and network activity.  CPU dominates (the paper attributes the
super-linear power of brawny cores to speculation machinery), but the
blend keeps the Dell cluster's web-serving draw in the paper's observed
170-200 W band even though web-server CPU only reaches 45 %.

The Edison's USB Ethernet adapter is modelled as a constant adder —
the paper measured it at ~1 W, more than the Edison SoC itself — so the
adapter-power ablation can swap it for an integrated 0.1 W port.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

#: Default blend of component activities into effective utilisation.
#: CPU dominates; the blend is jointly calibrated against the paper's
#: web-serving power band (170-200 W for 3 Dells at 45 % web CPU,
#: Figure 4) and the MapReduce job energies of Table 8 (a pegged-CPU
#: pi job drives a Dell near its 109 W peak).
DEFAULT_WEIGHTS: Mapping[str, float] = {
    "cpu": 0.80, "mem": 0.05, "disk": 0.075, "net": 0.075,
}


@dataclass(frozen=True)
class PowerSpec:
    """Static power description of one server.

    ``idle_w``/``busy_w`` bracket the server *without* any constant
    adapter; ``adapter_w`` is added unconditionally while present.
    """

    idle_w: float
    busy_w: float
    adapter_w: float = 0.0
    weights: Mapping[str, float] = field(default_factory=lambda: dict(DEFAULT_WEIGHTS))

    def __post_init__(self):
        if self.idle_w < 0 or self.busy_w < self.idle_w:
            raise ValueError("need 0 <= idle_w <= busy_w")
        if self.adapter_w < 0:
            raise ValueError("adapter_w must be >= 0")
        total = sum(self.weights.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"weights must sum to 1, got {total}")

    @property
    def min_w(self) -> float:
        """Wall power with the server idle (adapter included)."""
        return self.idle_w + self.adapter_w

    @property
    def max_w(self) -> float:
        """Wall power with the server saturated (adapter included)."""
        return self.busy_w + self.adapter_w

    def effective_utilization(self, utilization: Mapping[str, float]) -> float:
        """Blend per-component utilisations into one dial in [0, 1].

        Components absent from ``utilization`` count as idle, but a key
        the weight blend does not know (``"network"`` for ``"net"``,
        say) raises: silently treating a typo as 0 utilisation would
        bill idle watts for a busy component and skew every
        work-per-joule figure downstream.
        """
        weights = self.weights
        for component in utilization:
            if component not in weights:
                raise ValueError(
                    f"unknown power component {component!r}; the weight "
                    f"blend knows {sorted(weights)}")
        blended = 0.0
        for component, weight in weights.items():
            value = utilization.get(component, 0.0)
            blended += weight * min(1.0, max(0.0, value))
        return blended

    def power(self, utilization: Mapping[str, float],
              pstate=None) -> float:
        """Instantaneous wall power for the given component utilisations.

        ``pstate`` (a :class:`~repro.hardware.cpu.PState`) rescales the
        *CPU share* of the busy-above-idle span by the state's
        ``busy_w_factor`` — a down-clocked core works longer per MI but
        draws less while doing it.  ``None`` or P0 takes the exact
        historical expression, so runs that never leave nominal
        frequency are bit-identical.
        """
        u = self.effective_utilization(utilization)
        if pstate is not None and pstate.busy_w_factor != 1.0:
            cpu_weight = self.weights.get("cpu", 0.0)
            if cpu_weight:
                cpu_part = cpu_weight * min(
                    1.0, max(0.0, utilization.get("cpu", 0.0)))
                u = u - cpu_part + cpu_part * pstate.busy_w_factor
        return self.idle_w + (self.busy_w - self.idle_w) * u + self.adapter_w

    def max_w_at(self, pstate) -> float:
        """Wall power saturated in ``pstate`` (adapter included)."""
        return (self.idle_w
                + (self.busy_w - self.idle_w) * pstate.busy_w_factor
                + self.adapter_w)

    def without_adapter(self) -> "PowerSpec":
        """The same server with its USB adapter removed (ablation)."""
        return PowerSpec(self.idle_w, self.busy_w, 0.0, dict(self.weights))

    def with_adapter(self, adapter_w: float) -> "PowerSpec":
        """The same server with a different constant adapter power."""
        return PowerSpec(self.idle_w, self.busy_w, adapter_w, dict(self.weights))


def cluster_power(per_node_watts: Dict[str, float]) -> float:
    """Sum per-node wall power into a cluster reading (PDU view)."""
    return sum(per_node_watts.values())
