"""Calibrated hardware profiles for the two platforms under test.

Every parameter is either read straight out of the paper or derived from
two paper numbers; each derivation is documented inline.  These profiles
are the *only* place platform capacities enter the simulation.
"""

from __future__ import annotations

from ..core import paperdata as paper
from ..sim import Simulation
from .cpu import CpuSpec, derive_pstates
from .memory import MemorySpec
from .nic import NicSpec
from .power import PowerSpec
from .server import Server, ServerSpec
from .storage import StorageSpec

# Derivation: Section 4.1 measures a single Dell thread at 11383 DMIPS and
# the whole hyper-threaded machine at 90-108x one Edison (2 x 632.3 DMIPS).
# Taking the 100x midpoint: per-vcore sustained = 100 * 1264.6 / 12
# = 10538 DMIPS, i.e. an SMT efficiency of 10538 / 11383 = 0.926.
_DELL_SMT_EFFICIENCY = 0.926

# DVFS operating points.  The Edison's Silvermont Atom steps 500 ->
# 400 -> 333 -> 250 MHz; the R620's E5-2620 walks 2.0 GHz down to
# 1.2 GHz in 200 MHz P-states.  DMIPS track frequency; the busy power
# span shrinks as f^2 (voltage riding frequency), so P0 of either
# table is bit-exactly the nominal Table 3 bracket and the deepest
# states trade ~2-4x the service time for ~4-9x less marginal power —
# which is exactly the non-monotone efficiency-vs-frequency surface
# the GreenLab replication measures on real microservices.
_EDISON_PSTATES = derive_pstates((1.0, 0.8, 0.666, 0.5))
_DELL_PSTATES = derive_pstates((1.0, 0.9, 0.8, 0.7, 0.6))

EDISON = ServerSpec(
    platform="edison",
    cpu=CpuSpec(
        cores=paper.EDISON_CORES,
        threads_per_core=1,
        dmips_per_thread=paper.S41_EDISON_DMIPS,
        pstates=_EDISON_PSTATES,
    ),
    memory=MemorySpec(
        capacity_bytes=paper.EDISON_RAM_BYTES,
        peak_bandwidth_bps=paper.S42_EDISON_MEM_BW,
        saturation_threads=paper.S42_EDISON_SATURATION_THREADS,
    ),
    storage=StorageSpec(
        write_bps=paper.T5_EDISON["write_bps"],
        buffered_write_bps=paper.T5_EDISON["buffered_write_bps"],
        read_bps=paper.T5_EDISON["read_bps"],
        buffered_read_bps=paper.T5_EDISON["buffered_read_bps"],
        write_latency_s=paper.T5_EDISON["write_latency_s"],
        read_latency_s=paper.T5_EDISON["read_latency_s"],
    ),
    nic=NicSpec(bandwidth_bps=paper.EDISON_NIC_BPS, usb_adapter=True),
    # Table 3: with the USB adapter the node spans 1.40-1.68 W.  All the
    # paper's cluster measurements include adapters, so those endpoints
    # are matched exactly: 0.36 W idle SoC + 1.04 W adapter = 1.40 W and
    # busy span 0.28 W on top.  (The bare-node busy reading of 0.75 W
    # implies the adapter sheds ~0.1 W under load; within meter noise.)
    power=PowerSpec(
        idle_w=paper.T3_EDISON_BARE_IDLE_W,
        busy_w=paper.T3_EDISON_BUSY_W - (
            paper.T3_EDISON_IDLE_W - paper.T3_EDISON_BARE_IDLE_W),
        adapter_w=paper.T3_EDISON_IDLE_W - paper.T3_EDISON_BARE_IDLE_W,
    ),
    node_cost_usd=paper.T9_EDISON_NODE_COST,
)

#: Ablation profile: the same Edison with an integrated 0.1 W Ethernet
#: port instead of the ~1 W USB adapter (Section 3.2 / FAWN comparison).
EDISON_INTEGRATED_NIC = ServerSpec(
    platform="edison",
    cpu=EDISON.cpu,
    memory=EDISON.memory,
    storage=EDISON.storage,
    nic=NicSpec(bandwidth_bps=paper.EDISON_NIC_BPS, usb_adapter=False),
    power=EDISON.power.with_adapter(paper.INTEGRATED_NIC_W),
    node_cost_usd=paper.T9_EDISON_NODE_COST - 15.0,  # minus the $15 adapter
)

DELL_R620 = ServerSpec(
    platform="dell",
    cpu=CpuSpec(
        cores=paper.DELL_CORES,
        threads_per_core=paper.DELL_THREADS_PER_CORE,
        dmips_per_thread=paper.S41_DELL_DMIPS,
        smt_efficiency=_DELL_SMT_EFFICIENCY,
        pstates=_DELL_PSTATES,
    ),
    memory=MemorySpec(
        capacity_bytes=paper.DELL_RAM_BYTES,
        peak_bandwidth_bps=paper.S42_DELL_MEM_BW,
        saturation_threads=paper.S42_DELL_SATURATION_THREADS,
    ),
    storage=StorageSpec(
        write_bps=paper.T5_DELL["write_bps"],
        buffered_write_bps=paper.T5_DELL["buffered_write_bps"],
        read_bps=paper.T5_DELL["read_bps"],
        buffered_read_bps=paper.T5_DELL["buffered_read_bps"],
        write_latency_s=paper.T5_DELL["write_latency_s"],
        read_latency_s=paper.T5_DELL["read_latency_s"],
    ),
    nic=NicSpec(bandwidth_bps=paper.DELL_NIC_BPS),
    power=PowerSpec(idle_w=paper.T3_DELL_IDLE_W, busy_w=paper.T3_DELL_BUSY_W),
    node_cost_usd=paper.T9_DELL_NODE_COST,
)

PROFILES = {"edison": EDISON, "dell": DELL_R620}


def make_server(sim: Simulation, spec: ServerSpec, name: str) -> Server:
    """Instantiate one server of the given profile inside ``sim``."""
    return Server(sim, spec, name)
