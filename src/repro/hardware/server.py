"""A server: CPU + memory + storage + NIC + power model, with probes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..sim import Simulation
from .cpu import Cpu, CpuSpec
from .memory import Memory, MemorySpec
from .nic import Nic, NicSpec
from .power import PowerSpec
from .storage import Storage, StorageSpec


@dataclass(frozen=True)
class ServerSpec:
    """Full static description of a server model."""

    platform: str                  # "edison" or "dell" (used for RTT tables)
    cpu: CpuSpec
    memory: MemorySpec
    storage: StorageSpec
    nic: NicSpec
    power: PowerSpec
    node_cost_usd: float = 0.0


class Server:
    """Runtime server instance living inside one simulation."""

    def __init__(self, sim: Simulation, spec: ServerSpec, name: str):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.cpu = Cpu(sim, spec.cpu, name=f"{name}.cpu")
        self.memory = Memory(sim, spec.memory, name=f"{name}.mem")
        self.storage = Storage(sim, spec.storage, name=f"{name}.disk")
        self.nic = Nic(sim, spec.nic, name=f"{name}.nic")
        self._probe_time = sim.now
        self._probe_cpu_busy = 0.0
        self._probe_disk_busy = 0.0
        self._probe_nic_bytes = 0.0

    @property
    def platform(self) -> str:
        return self.spec.platform

    # -- utilisation probing -------------------------------------------

    def utilization_now(self) -> Dict[str, float]:
        """Instantaneous per-component utilisation, as a pure read.

        Unlike :meth:`utilization_window` this does **not** advance the
        probe window, so any number of observers (telemetry scrapers,
        debuggers) may call it without perturbing the power meter's
        windowed averages — attaching monitoring must never change the
        energy numbers it is monitoring.
        """
        return {
            "cpu": self.cpu.utilization(),
            "mem": self.memory.utilization(),
            "disk": self.storage.utilization(),
            "net": self.nic.utilization(),
        }

    def utilization_window(self) -> Dict[str, float]:
        """Mean per-component utilisation since the previous call.

        Returns a dict with keys ``cpu``, ``mem``, ``disk``, ``net`` in
        [0, 1].  The power meter calls this once per sampling interval;
        windowed averages avoid aliasing that instantaneous probes would
        suffer at coarse sampling rates.
        """
        now = self.sim.now
        dt = now - self._probe_time
        cpu_busy = self.cpu.busy_vcore_seconds()
        disk_busy = self.storage.channel.busy_time()
        nic_bytes = self.nic.total_bytes
        if dt <= 0:
            window = self.utilization_now()
        else:
            nic_rate = (nic_bytes - self._probe_nic_bytes) / dt
            window = {
                "cpu": (cpu_busy - self._probe_cpu_busy)
                       / (self.cpu.vcores.capacity * dt),
                "mem": self.memory.utilization(),
                "disk": (disk_busy - self._probe_disk_busy) / dt,
                "net": min(1.0, nic_rate / self.nic.spec.bytes_per_second),
            }
        self._probe_time = now
        self._probe_cpu_busy = cpu_busy
        self._probe_disk_busy = disk_busy
        self._probe_nic_bytes = nic_bytes
        return window

    def power_now(self, utilization: Optional[Dict[str, float]] = None) -> float:
        """Wall power for the given (or freshly probed) utilisation.

        Prices the CPU's active P-state: a governor-parked core burns
        less per busy second (the P0 default takes the exact historical
        expression).
        """
        if utilization is None:
            utilization = self.utilization_window()
        return self.spec.power.power(utilization, self.cpu.pstate)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Server {self.name} ({self.platform})>"
