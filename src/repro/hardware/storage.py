"""Storage model reproducing the paper's Table 5 dd/ioping measurements.

The model distinguishes *direct* I/O (every block committed to the
medium, i.e. ``dd oflag=dsync``) from *buffered* I/O through the OS page
cache, because the paper measures both and MapReduce spills exercise
the buffered path while HDFS block writes are closer to direct.

A single request queue (one head / one SD controller) serialises
concurrent operations, which is what limits Hadoop on both platforms.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Request, Resource, Simulation


@dataclass(frozen=True)
class StorageSpec:
    """Static description of a disk / SD card (rates in bytes/s)."""

    write_bps: float
    buffered_write_bps: float
    read_bps: float
    buffered_read_bps: float
    write_latency_s: float
    read_latency_s: float

    def __post_init__(self):
        rates = (self.write_bps, self.buffered_write_bps,
                 self.read_bps, self.buffered_read_bps)
        if min(rates) <= 0:
            raise ValueError("all rates must be > 0")
        if min(self.write_latency_s, self.read_latency_s) < 0:
            raise ValueError("latencies must be >= 0")

    def rate(self, op: str, buffered: bool) -> float:
        """Sustained rate for ``op`` in {'read','write'}."""
        if op == "read":
            return self.buffered_read_bps if buffered else self.read_bps
        if op == "write":
            return self.buffered_write_bps if buffered else self.write_bps
        raise ValueError(f"unknown op {op!r}")

    def latency(self, op: str) -> float:
        """Per-request access latency for ``op``."""
        if op == "read":
            return self.read_latency_s
        if op == "write":
            return self.write_latency_s
        raise ValueError(f"unknown op {op!r}")


class Storage:
    """Runtime storage device with a serialised request queue."""

    def __init__(self, sim: Simulation, spec: StorageSpec, name: str = "disk"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.channel = Resource(sim, capacity=1, name=f"{name}.channel")
        self.bytes_read = 0.0
        self.bytes_written = 0.0
        #: Fault-injection multiplier on device time (1.0 = healthy).
        #: Set by repro.faults during a disk_stall window.
        self.slowdown = 1.0
        # (op, buffered) -> rate and op -> latency, flattened so the
        # per-request path skips io_time()'s string dispatch.
        self._rates = {("read", False): spec.read_bps,
                       ("read", True): spec.buffered_read_bps,
                       ("write", False): spec.write_bps,
                       ("write", True): spec.buffered_write_bps}
        self._latencies = {"read": spec.read_latency_s,
                           "write": spec.write_latency_s}

    def io_time(self, op: str, nbytes: float, buffered: bool = False) -> float:
        """Seconds of device time for one request (latency + transfer)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.spec.latency(op) + nbytes / self.spec.rate(op, buffered)

    def _io(self, op: str, nbytes: float, buffered: bool):
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        # try/finally instead of the context manager, and table lookups
        # instead of io_time()'s string dispatch: _io runs once per
        # simulated disk request, which MapReduce issues by the
        # thousand (spills, merges, HDFS block reads).
        channel = self.channel
        grant = Request(channel)
        try:
            yield grant
            device_s = (self._latencies[op]
                        + nbytes / self._rates[op, buffered])
            if self.slowdown != 1.0:   # exact no-op when healthy
                device_s *= self.slowdown
            yield device_s
        finally:
            channel.release(grant)
        if op == "read":
            self.bytes_read += nbytes
        else:
            self.bytes_written += nbytes

    def read(self, nbytes: float, buffered: bool = False):
        """Process generator performing a read of ``nbytes``."""
        return self._io("read", nbytes, buffered)

    def write(self, nbytes: float, buffered: bool = False):
        """Process generator performing a write of ``nbytes``."""
        return self._io("write", nbytes, buffered)

    def utilization(self) -> float:
        """Instantaneous busy fraction of the device channel."""
        return self.channel.count / self.channel.capacity
