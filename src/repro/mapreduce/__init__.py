"""The Section 5.2 MapReduce substrate: HDFS, YARN, job runtime, jobs."""

from .config import HadoopConfig, default_config
from .costs import ALLOC_LEAD_S, JVM_START_MI, JobCosts
from .hdfs import Hdfs, HdfsBlock, HdfsFile
from .jobs import JOB_FACTORIES, TABLE8_JOBS
from .runtime import JobReport, JobRunner, JobSpec, JobTimeline, run_job
from .scaling import (
    DELL_SIZES, EDISON_SIZES, ScalingGrid, efficiency_table,
    paper_energies, paper_mean_speedup, paper_times, run_scaling_grid,
)
from .yarn import ContainerGrant, NodeManager, YarnScheduler

__all__ = [
    "ALLOC_LEAD_S", "DELL_SIZES", "EDISON_SIZES", "ScalingGrid",
    "efficiency_table", "paper_energies", "paper_mean_speedup",
    "paper_times", "run_scaling_grid", "ContainerGrant", "HadoopConfig", "Hdfs", "HdfsBlock",
    "HdfsFile", "JOB_FACTORIES", "JVM_START_MI", "JobCosts", "JobReport",
    "JobRunner", "JobSpec", "JobTimeline", "NodeManager", "TABLE8_JOBS",
    "YarnScheduler", "default_config", "run_job",
]
