"""Hadoop 2.5 (YARN) configuration as the paper tuned it (Section 5.2)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core import paperdata as paper


@dataclass(frozen=True)
class HadoopConfig:
    """Per-platform cluster-wide Hadoop settings."""

    platform: str
    block_mb: int
    replication: int
    #: Memory available to task containers per node (after OS + daemons).
    node_task_mem_mb: int
    node_vcores: int
    am_mem_mb: int
    #: NodeManager heartbeat period driving container assignment latency.
    heartbeat_s: float = 1.0
    #: Fraction of maps that must finish before reduces launch.
    slowstart: float = 0.80

    def __post_init__(self):
        if self.block_mb < 1 or self.replication < 1:
            raise ValueError("block_mb and replication must be >= 1")
        if self.node_task_mem_mb < 1 or self.node_vcores < 1:
            raise ValueError("node resources must be >= 1")
        if not 0 < self.slowstart <= 1:
            raise ValueError("slowstart must be in (0, 1]")

    @property
    def block_bytes(self) -> int:
        return self.block_mb * 1000 * 1000

    def with_block_mb(self, block_mb: int) -> "HadoopConfig":
        """The scalability-test retuning knob (Section 5.3)."""
        return replace(self, block_mb=block_mb)


def default_config(platform: str) -> HadoopConfig:
    """The paper's baseline settings for each platform."""
    if platform == "edison":
        return HadoopConfig(
            platform="edison",
            block_mb=paper.S52_EDISON_BLOCK_MB,
            replication=paper.S52_EDISON_REPLICATION,
            node_task_mem_mb=paper.S52_EDISON_TASK_MEM_MB,
            node_vcores=paper.S52_EDISON_VCORES,
            am_mem_mb=paper.S52_EDISON_AM_MEM_MB,
        )
    if platform == "dell":
        return HadoopConfig(
            platform="dell",
            block_mb=paper.S52_DELL_BLOCK_MB,
            replication=paper.S52_DELL_REPLICATION,
            node_task_mem_mb=paper.S52_DELL_TASK_MEM_MB,
            node_vcores=paper.S52_DELL_VCORES,
            am_mem_mb=paper.S52_DELL_AM_MEM_MB,
        )
    raise ValueError(f"unknown platform {platform!r}")
