"""CPU cost model for MapReduce tasks, and how it was calibrated.

Structure
---------
Each job carries per-phase CPU path lengths (MI per MB) plus a
*per-platform Java path factor*.  The factor captures what the paper
itself highlights as its most surprising finding: the measured
capability gap between the platforms is workload-dependent and far from
nameplate.  Running 24 concurrent JVM containers on two hyper-threaded
Xeons inflates per-byte path length (cache/TLB pressure, GC, NUMA
traffic) in ways a Dhrystone rating cannot predict, and differently for
a shuffle-heavy wordcount than for an arithmetic pi loop.

Calibration protocol (documented per job in jobs/*.py):

1. Phase path lengths are set from the full-scale Edison run (35
   slaves) of Table 8, with the Edison factor pinned at 1.0.
2. The Dell factor is then set from the full-scale Dell run (2 slaves).
3. Every other Table 8 cell — Edison at 17/8/4 slaves, Dell at 1 — is a
   *prediction* of the simulator, compared in the benchmark harness.

Fixed framework overheads below are shared by all jobs and platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

#: Wall-clock floor of container launch that is not CPU (fork/exec,
#: classpath scan I/O, NM bookkeeping).
TASK_LAUNCH_S = 2.0
#: Task commit/teardown wall time.
TASK_COMMIT_S = 0.8
#: CPU cost of starting a task JVM and initialising the task (MI).  A
#: Hadoop task JVM loads ~10k classes and initialises the whole
#: MapReduce runtime; tens of seconds on a 500 MHz Atom.  This constant
#: dominates the 500-container logcount job, exactly as the paper's
#: container-overhead discussion predicts.
JVM_START_MI = 16000.0

#: Per-platform growth of the Java path factor with container density
#: (concurrent containers per vcore beyond one).  Co-scheduling 24
#: heavyweight JVMs on 12 hyper-threaded Xeon threads thrashes shared
#: caches and the memory system; the Edison's two small in-order cores
#: with 150 MB heaps show no such cliff.  Calibrated from the
#: wordcount-vs-wordcount2 pair on each platform.
DENSITY_BETA: Mapping[str, float] = {"edison": 0.0, "dell": 1.0}


def effective_factor(costs: "JobCosts", platform: str,
                     containers_per_vcore: float) -> float:
    """Java path factor adjusted for container density."""
    beta = DENSITY_BETA.get(platform, 0.0)
    penalty = 1.0 + beta * max(0.0, containers_per_vcore - 1.0)
    return costs.factor(platform) * penalty

#: Job-setup lead before the first containers start computing: AM
#: launch, job init, split computation, first scheduling rounds.  Read
#: off Figures 12/15 (CPU rises at ~45 s on Edison, ~20 s on Dell; the
#: paper calls the Edison lead "about 2.3 times longer").
ALLOC_LEAD_S: Mapping[str, float] = {"edison": 38.0, "dell": 16.0}

#: Slices each CPU burst is diced into so FIFO vcore queues approximate
#: the fair sharing a kernel scheduler provides across containers.
CPU_SLICES = 8


@dataclass(frozen=True)
class JobCosts:
    """Per-phase CPU path lengths for one job."""

    #: Map-function work per MB of input.
    map_mi_per_mb: float
    #: Sort/serialise/spill work per MB of map output (pre-combine).
    sort_mi_per_mb: float
    #: Merge+reduce work per MB of reduce input.
    reduce_mi_per_mb: float
    #: Fixed per-map-task CPU (pi's sampling loop lives here).
    map_fixed_mi: float = 0.0
    #: Per-platform Java path factor (see module docstring).
    java_factor: Mapping[str, float] = field(
        default_factory=lambda: {"edison": 1.0, "dell": 1.0})

    def factor(self, platform: str) -> float:
        try:
            return self.java_factor[platform]
        except KeyError:
            raise ValueError(f"no java factor for platform {platform!r}") \
                from None
