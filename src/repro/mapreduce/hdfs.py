"""HDFS model: block placement, replication, locality, block I/O.

Files are split into blocks; each block's replicas land on distinct
datanodes (first replica spread round-robin, the rest random).  Reads
are local disk when a replica lives on the reading node, otherwise a
remote disk read plus a fluid network flow.  Writes pipeline to each
replica.  The paper's replication choices (2 on Edison, 1 on Dell) were
made so ~95 % of map tasks are data-local on both clusters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..hardware.server import Server
from ..net import Topology
from ..sim import Simulation
from ..workloads import Dataset


class BlockUnavailable(Exception):
    """Every replica of a block is on a dead node or failed disk.

    Retrying cannot help — the data is gone until the nodes return —
    so the job runtime converts this into a clean whole-job failure
    instead of burning its attempt budget.
    """


@dataclass(frozen=True)
class HdfsBlock:
    """One block of one file."""

    block_id: int
    size_bytes: int
    replicas: Tuple[str, ...]     # datanode names


@dataclass(frozen=True)
class HdfsFile:
    """A file's metadata: its blocks and their placement."""

    name: str
    size_bytes: int
    blocks: Tuple[HdfsBlock, ...]


class Hdfs:
    """The distributed filesystem over a cluster's datanodes."""

    def __init__(self, sim: Simulation, topology: Topology,
                 datanodes: Sequence[Server], block_bytes: int,
                 replication: int, rng: random.Random):
        if not datanodes:
            raise ValueError("HDFS needs at least one datanode")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        if replication > len(datanodes):
            raise ValueError("replication cannot exceed datanode count")
        if block_bytes < 1:
            raise ValueError("block_bytes must be >= 1")
        self.sim = sim
        self.topology = topology
        self.datanodes = {s.name: s for s in datanodes}
        self._node_order = [s.name for s in datanodes]
        self.block_bytes = block_bytes
        self.replication = replication
        self.rng = rng
        self.files: Dict[str, HdfsFile] = {}
        self._next_block = 0
        self._rr = 0

    # -- placement --------------------------------------------------------

    def _place_block(self, size: int) -> HdfsBlock:
        primary = self._node_order[self._rr % len(self._node_order)]
        self._rr += 1
        replicas = [primary]
        others = [n for n in self._node_order if n != primary]
        replicas.extend(self.rng.sample(others, self.replication - 1))
        block = HdfsBlock(self._next_block, size, tuple(replicas))
        self._next_block += 1
        return block

    def stage_file(self, name: str, size_bytes: int) -> HdfsFile:
        """Register a pre-existing input file (no I/O simulated)."""
        if name in self.files:
            raise ValueError(f"file {name!r} already exists")
        if size_bytes < 1:
            raise ValueError("size_bytes must be >= 1")
        blocks: List[HdfsBlock] = []
        remaining = size_bytes
        while remaining > 0:
            size = min(self.block_bytes, remaining)
            blocks.append(self._place_block(size))
            remaining -= size
        record = HdfsFile(name, size_bytes, tuple(blocks))
        self.files[name] = record
        return record

    def stage_dataset(self, dataset: Dataset) -> List[HdfsFile]:
        """Stage every file of a workload dataset."""
        return [self.stage_file(f.name, f.size_bytes) for f in dataset.files]

    # -- I/O ----------------------------------------------------------------

    def is_local(self, node: str, block: HdfsBlock) -> bool:
        return node in block.replicas

    def _alive(self, name: str) -> bool:
        faults = self.sim.faults
        return (faults is None
                or (faults.is_up(name) and not faults.disk_failed(name)))

    def _live_replicas(self, block: HdfsBlock) -> Tuple[str, ...]:
        """Replicas currently readable (all of them when fault-free)."""
        if self.sim.faults is None:
            return block.replicas
        return tuple(r for r in block.replicas if self._alive(r))

    def read_block(self, node: str, block: HdfsBlock):
        """Process generator: read one block from ``node``.

        Local reads hit the node's own disk; remote reads stream from a
        random replica's disk through the network (a fluid flow).  Dead
        replicas are skipped — the reader falls back to a surviving one
        — and :class:`BlockUnavailable` is raised when none remain.
        """
        replicas = self._live_replicas(block)
        if not replicas:
            raise BlockUnavailable(
                f"block {block.block_id}: all {len(block.replicas)} "
                f"replica(s) are on dead nodes or failed disks")
        if node in replicas:
            yield from self.datanodes[node].storage.read(block.size_bytes)
            return
        source = self.rng.choice(replicas)
        read = self.sim.process(
            self.datanodes[source].storage.read(block.size_bytes))
        flow = self.topology.network.start_flow(
            self.topology.path(source, node), block.size_bytes)
        yield self.sim.all_of([read, flow])

    def write(self, node: str, nbytes: float):
        """Process generator: write ``nbytes`` through the replica pipeline.

        The first replica is the writer's own disk; each additional
        replica costs a network flow plus a remote disk write, all in
        parallel (HDFS pipelines the stream).  A writer with a failed
        disk sends every copy remote; dead targets are skipped.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if nbytes == 0:
            return
        legs = []
        local_ok = self._alive(node)
        if local_ok:
            legs.append(self.sim.process(
                self.datanodes[node].storage.write(nbytes, buffered=True)))
        others = [n for n in self._node_order if n != node]
        if self.sim.faults is not None:
            others = [n for n in others if self._alive(n)]
        remote_copies = self.replication - 1 if local_ok else self.replication
        for target in self.rng.sample(
                others, min(remote_copies, len(others))):
            legs.append(self.sim.process(self._remote_write(node, target,
                                                            nbytes)))
        if not legs:
            raise BlockUnavailable(
                f"no live datanode can take a {nbytes:.0f}-byte write "
                f"from {node}")
        yield self.sim.all_of(legs)

    def _remote_write(self, src: str, dst: str, nbytes: float):
        yield self.topology.network.start_flow(
            self.topology.path(src, dst), nbytes)
        yield from self.datanodes[dst].storage.write(nbytes, buffered=True)
