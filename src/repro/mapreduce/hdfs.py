"""HDFS model: block placement, replication, locality, block I/O, repair.

Files are split into blocks; each block's replicas land on distinct
datanodes (first replica spread round-robin, the rest random — or, with
``rack_aware`` placement, spread across racks the way the real
NameNode's ``BlockPlacementPolicyDefault`` survives a whole-rack loss).
Reads are local disk when a replica lives on the reading node,
otherwise a remote disk read plus a fluid network flow from a same-rack
replica when one exists (crossing the trunk only when it must).  Writes
pipeline to each replica.  The paper's replication choices (2 on
Edison, 1 on Dell) were made so ~95 % of map tasks are data-local on
both clusters.

:class:`ReplicationMonitor` (opt-in via :meth:`Hdfs.enable_repair`) is
the NameNode's repair loop: on a confirmed node loss it finds every
under-replicated block and re-replicates it over the real topology
through a shared throttle segment, so repair traffic contends with
itself the way ``dfs.datanode.balance.bandwidthPerSec`` makes it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.server import Server
from ..net import Segment, Topology
from ..sim import Simulation
from ..workloads import Dataset


class BlockUnavailable(Exception):
    """Every replica of a block is on a dead node or failed disk.

    Retrying cannot help — the data is gone until the nodes return —
    so the job runtime converts this into a clean whole-job failure
    instead of burning its attempt budget.
    """


@dataclass
class HdfsBlock:
    """One block of one file.

    Mutable for one reason only: the repair loop re-homes replicas.
    Everything else treats the instance as read-only.
    """

    block_id: int
    size_bytes: int
    replicas: Tuple[str, ...]     # datanode names


@dataclass(frozen=True)
class HdfsFile:
    """A file's metadata: its blocks and their placement."""

    name: str
    size_bytes: int
    blocks: Tuple[HdfsBlock, ...]


class Hdfs:
    """The distributed filesystem over a cluster's datanodes."""

    def __init__(self, sim: Simulation, topology: Topology,
                 datanodes: Sequence[Server], block_bytes: int,
                 replication: int, rng: random.Random,
                 rack_aware: bool = False):
        if not datanodes:
            raise ValueError("HDFS needs at least one datanode")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        if replication > len(datanodes):
            raise ValueError("replication cannot exceed datanode count")
        if block_bytes < 1:
            raise ValueError("block_bytes must be >= 1")
        self.sim = sim
        self.topology = topology
        self.datanodes = {s.name: s for s in datanodes}
        self._node_order = [s.name for s in datanodes]
        self.block_bytes = block_bytes
        self.replication = replication
        self.rng = rng
        self.rack_aware = rack_aware
        self.files: Dict[str, HdfsFile] = {}
        #: Every placed block, by id — the NameNode's block map, walked
        #: by the repair loop and the durability ledger.
        self.blocks: Dict[int, HdfsBlock] = {}
        self.monitor: Optional["ReplicationMonitor"] = None
        #: Remote-read byte counters for the locality accounting: reads
        #: served inside the reader's rack vs across the trunk/ToR.
        self.same_rack_read_bytes = 0.0
        self.cross_rack_read_bytes = 0.0
        self._next_block = 0
        self._rr = 0

    # -- placement --------------------------------------------------------

    def _place_block(self, size: int) -> HdfsBlock:
        primary = self._node_order[self._rr % len(self._node_order)]
        self._rr += 1
        replicas = [primary]
        others = [n for n in self._node_order if n != primary]
        if self.rack_aware and self.replication > 1:
            replicas.extend(self._rack_aware_tail(primary, others))
        else:
            replicas.extend(self.rng.sample(others, self.replication - 1))
        block = HdfsBlock(self._next_block, size, tuple(replicas))
        self.blocks[block.block_id] = block
        self._next_block += 1
        return block

    def _rack_aware_tail(self, primary: str, others: List[str]) -> List[str]:
        """Secondary replicas spread across racks, NameNode-style: the
        second copy leaves the primary's rack when it can, further
        copies prefer racks not yet holding one."""
        rack_of = self.topology.rack_of
        tail: List[str] = []
        covered = {rack_of(primary)}
        pool = list(others)
        for _ in range(self.replication - 1):
            off_rack = [n for n in pool if rack_of(n) not in covered]
            pick_from = off_rack or pool
            choice = pick_from[self.rng.randrange(len(pick_from))]
            tail.append(choice)
            covered.add(rack_of(choice))
            pool.remove(choice)
        return tail

    def stage_file(self, name: str, size_bytes: int) -> HdfsFile:
        """Register a pre-existing input file (no I/O simulated)."""
        if name in self.files:
            raise ValueError(f"file {name!r} already exists")
        if size_bytes < 1:
            raise ValueError("size_bytes must be >= 1")
        blocks: List[HdfsBlock] = []
        remaining = size_bytes
        while remaining > 0:
            size = min(self.block_bytes, remaining)
            blocks.append(self._place_block(size))
            remaining -= size
        record = HdfsFile(name, size_bytes, tuple(blocks))
        self.files[name] = record
        return record

    def stage_dataset(self, dataset: Dataset) -> List[HdfsFile]:
        """Stage every file of a workload dataset."""
        return [self.stage_file(f.name, f.size_bytes) for f in dataset.files]

    # -- I/O ----------------------------------------------------------------

    def is_local(self, node: str, block: HdfsBlock) -> bool:
        return node in block.replicas

    def _alive(self, name: str) -> bool:
        faults = self.sim.faults
        return (faults is None
                or (faults.is_up(name) and not faults.disk_failed(name)))

    def _live_replicas(self, block: HdfsBlock,
                       reader: Optional[str] = None) -> Tuple[str, ...]:
        """Replicas currently readable (all of them when fault-free).

        With a ``reader`` given, replicas the reader cannot *reach*
        (severed by a partition) are excluded too — HDFS fails fast at
        replica selection rather than stalling into a black hole.
        """
        if self.sim.faults is None:
            return block.replicas
        live = tuple(r for r in block.replicas if self._alive(r))
        if reader is None or len(self.topology._cuts) == 0:
            return live
        reachable = self.topology.reachable
        return tuple(r for r in live if reachable(reader, r))

    def read_block(self, node: str, block: HdfsBlock):
        """Process generator: read one block from ``node``.

        Local reads hit the node's own disk; remote reads stream from a
        replica's disk through the network (a fluid flow), preferring a
        replica inside the reader's rack before crossing the ToR/trunk.
        Dead or unreachable replicas are skipped — the reader falls
        back to a surviving one — and :class:`BlockUnavailable` is
        raised when none remain.  One exception: when every remaining
        copy is *intact but severed* by an active partition, the read
        stalls until a heal and retries instead of raising — the data
        still exists, the DFSClient just cannot get at it yet; only a
        block with no intact copy anywhere is declared gone.
        """
        replicas = self._live_replicas(block, reader=node)
        while not replicas:
            if not (self.topology._cuts and self.intact_replicas(block)):
                raise BlockUnavailable(
                    f"block {block.block_id}: all {len(block.replicas)} "
                    f"replica(s) are dead, diskless or unreachable from "
                    f"{node}")
            yield self.topology._heal_barrier()
            replicas = self._live_replicas(block, reader=node)
        if node in replicas:
            yield from self.datanodes[node].storage.read(block.size_bytes)
            return
        rack_of = self.topology.rack_of
        reader_rack = rack_of(node)
        same_rack = tuple(r for r in replicas
                          if rack_of(r) == reader_rack)
        # Same-length pools draw identically from the stream, so the
        # rack preference is invisible in single-rack layouts.
        source = self.rng.choice(same_rack or replicas)
        if rack_of(source) == reader_rack:
            self.same_rack_read_bytes += block.size_bytes
        else:
            self.cross_rack_read_bytes += block.size_bytes
        read = self.sim.process(
            self.datanodes[source].storage.read(block.size_bytes))
        flow = self.topology.network.start_flow(
            self.topology.path(source, node), block.size_bytes)
        yield self.sim.all_of([read, flow])

    def write(self, node: str, nbytes: float):
        """Process generator: write ``nbytes`` through the replica pipeline.

        The first replica is the writer's own disk; each additional
        replica costs a network flow plus a remote disk write, all in
        parallel (HDFS pipelines the stream).  A writer with a failed
        disk sends every copy remote; dead targets are skipped.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if nbytes == 0:
            return
        legs = []
        local_ok = self._alive(node)
        if local_ok:
            legs.append(self.sim.process(
                self.datanodes[node].storage.write(nbytes, buffered=True)))
        others = [n for n in self._node_order if n != node]
        if self.sim.faults is not None:
            others = [n for n in others if self._alive(n)]
            if len(self.topology._cuts):
                reachable = self.topology.reachable
                others = [n for n in others if reachable(node, n)]
        remote_copies = self.replication - 1 if local_ok else self.replication
        for target in self.rng.sample(
                others, min(remote_copies, len(others))):
            legs.append(self.sim.process(self._remote_write(node, target,
                                                            nbytes)))
        if not legs:
            raise BlockUnavailable(
                f"no live datanode can take a {nbytes:.0f}-byte write "
                f"from {node}")
        yield self.sim.all_of(legs)

    def _remote_write(self, src: str, dst: str, nbytes: float):
        yield self.topology.network.start_flow(
            self.topology.path(src, dst), nbytes)
        yield from self.datanodes[dst].storage.write(nbytes, buffered=True)

    # -- block health (the durability ledger's raw material) --------------

    def intact_replicas(self, block: HdfsBlock) -> Tuple[str, ...]:
        """Homes whose *data* survives — only ``disk_fail`` destroys
        bytes; a crashed or partitioned node keeps its copy."""
        faults = self.sim.faults
        if faults is None:
            return block.replicas
        return tuple(r for r in block.replicas
                     if not faults.disk_failed(r))

    def readable_replicas(self, block: HdfsBlock) -> Tuple[str, ...]:
        """Intact homes that are also up and reachable right now."""
        faults = self.sim.faults
        if faults is None:
            return block.replicas
        return tuple(r for r in block.replicas
                     if faults.is_up(r) and faults.is_reachable(r)
                     and not faults.disk_failed(r))

    def health_summary(self) -> Dict[str, int]:
        """Block census: created == live + lost is the conservation
        invariant the durability ledger asserts at every sample.

        ``unavailable`` splits out the live blocks no reader can reach
        *right now* (every intact copy dead or severed) — the
        rack-oblivious-placement failure mode a single ``switch_down``
        exposes: not data loss, but downtime counted in block-seconds.
        """
        live = lost = under = unavailable = 0
        for block in self.blocks.values():
            if self.intact_replicas(block):
                live += 1
                readable = len(self.readable_replicas(block))
                if readable < self.replication:
                    under += 1
                if readable == 0:
                    unavailable += 1
            else:
                lost += 1
        return {"blocks_created": len(self.blocks), "blocks_live": live,
                "blocks_lost": lost, "under_replicated": under,
                "unavailable": unavailable}

    def lost_block_ids(self) -> List[int]:
        return [b.block_id for b in self.blocks.values()
                if not self.intact_replicas(b)]

    # -- repair (opt-in) --------------------------------------------------

    def enable_repair(self, confirm_s: float = 2.0,
                      throttle_bps: float = 200e6, max_streams: int = 2,
                      ledger=None, detector=None) -> "ReplicationMonitor":
        """Arm the NameNode-style re-replication loop (off by default)."""
        if self.monitor is not None:
            raise RuntimeError("repair already enabled")
        self.monitor = ReplicationMonitor(
            self, confirm_s=confirm_s, throttle_bps=throttle_bps,
            max_streams=max_streams, ledger=ledger, detector=detector)
        return self.monitor


class ReplicationMonitor:
    """The NameNode's repair loop: confirm loss, re-replicate, throttle.

    Listens on the fault plane; a ``down`` edge on a datanode starts a
    confirmation window (fixed ``confirm_s``, or the phi-accrual
    detector when one is armed) so a node that blips back is never
    repaired around.  Confirmed losses enqueue every under-replicated
    block; repairs run at most ``max_streams`` at a time and every
    repair flow carries the shared throttle segment, so repair traffic
    self-contends like ``dfs.datanode.balance.bandwidthPerSec`` instead
    of strangling the job's shuffle.

    Spawns no processes until a fault actually fires — an armed monitor
    on a quiet cluster is bit-invisible.
    """

    #: Fault kinds whose ``down`` edge can cost replicas.
    LOSS_KINDS = ("crash", "power", "partition", "switch_down",
                  "disk_fail")

    def __init__(self, hdfs: Hdfs, confirm_s: float = 2.0,
                 throttle_bps: float = 200e6, max_streams: int = 2,
                 ledger=None, detector=None):
        if confirm_s < 0:
            raise ValueError("confirm_s must be >= 0")
        if throttle_bps <= 0:
            raise ValueError("throttle_bps must be > 0")
        if max_streams < 1:
            raise ValueError("max_streams must be >= 1")
        faults = hdfs.sim.faults
        if faults is None:
            raise RuntimeError("repair needs a FaultInjector attached "
                               "(there is nothing to repair without one)")
        self.hdfs = hdfs
        self.sim = hdfs.sim
        self.faults = faults
        self.confirm_s = confirm_s
        self.max_streams = max_streams
        self.ledger = ledger
        self.detector = detector
        self.throttle = Segment("hdfs.repair.throttle", throttle_bps / 8.0)
        self._queue: List[int] = []
        self._queued: set = set()
        self._deferred: List[int] = []
        self._confirming: set = set()
        self._running = False
        self.repairs_completed = 0
        self.repair_bytes = 0.0
        self.repairs_deferred = 0
        faults.add_listener(self._on_fault_event)

    # -- fault plane hooks ------------------------------------------------

    def _on_fault_event(self, event: str, node: str, kind: str) -> None:
        if node not in self.hdfs.datanodes:
            return
        if event == "down" and kind in self.LOSS_KINDS:
            if node not in self._confirming:
                self._confirming.add(node)
                self.sim.process(self._confirm_loss(node, kind),
                                 name=f"hdfs-confirm-{node}")
        elif event == "up" and self._deferred:
            # A returning node may be the missing source or target.
            self._requeue_deferred()

    def _node_healthy(self, node: str) -> bool:
        return (self.faults.is_up(node)
                and self.faults.is_reachable(node)
                and not self.faults.disk_failed(node))

    def _confirm_loss(self, node: str, kind: str):
        try:
            if kind == "disk_fail":
                # The datanode reports its own dead disk — no silence
                # to disambiguate, confirmation is immediate.
                pass
            elif self.detector is not None:
                suspected = yield from self.detector.wait_suspect(
                    node, healthy=lambda: self._node_healthy(node))
                if not suspected:
                    return
            elif self.confirm_s > 0:
                yield self.sim.timeout(self.confirm_s)
        finally:
            self._confirming.discard(node)
        if self._node_healthy(node):
            return  # it blipped back inside the window
        self._scan_node(node)

    def _scan_node(self, node: str) -> None:
        for block in self.hdfs.blocks.values():
            if (node in block.replicas
                    and block.block_id not in self._queued
                    and self._needs_repair(block)):
                self._queue.append(block.block_id)
                self._queued.add(block.block_id)
        self._kick()

    def _needs_repair(self, block: HdfsBlock) -> bool:
        intact = self.hdfs.intact_replicas(block)
        if not intact:
            return False  # lost for good; repair cannot invent bytes
        return len(self.hdfs.readable_replicas(block)) < \
            self.hdfs.replication

    # -- the repair pipeline ----------------------------------------------

    def _kick(self) -> None:
        if self._queue and not self._running:
            self._running = True
            self.sim.process(self._run(), name="hdfs-repair")

    def _requeue_deferred(self) -> None:
        while self._deferred:
            self._queue.append(self._deferred.pop(0))
        self._kick()

    def _run(self):
        try:
            while self._queue:
                batch, self._queue = (self._queue[:self.max_streams],
                                      self._queue[self.max_streams:])
                procs = [self.sim.process(
                    self._repair_block(self.hdfs.blocks[bid]),
                    name=f"hdfs-repair-{bid}") for bid in batch]
                yield self.sim.all_of(procs)
        finally:
            self._running = False

    def _pick_target(self, block: HdfsBlock) -> Optional[str]:
        """First healthy non-replica node, preferring uncovered racks
        when placement is rack-aware.  Deterministic: no RNG, so a
        repair history replays exactly from the run seed."""
        rack_of = self.hdfs.topology.rack_of
        covered = {rack_of(r) for r in self.hdfs.readable_replicas(block)}
        candidates = [n for n in self.hdfs._node_order
                      if n not in block.replicas
                      and self._node_healthy(n)]
        if self.hdfs.rack_aware:
            for node in candidates:
                if rack_of(node) not in covered:
                    return node
        return candidates[0] if candidates else None

    def _repair_block(self, block: HdfsBlock):
        bid = block.block_id
        if not self._needs_repair(block):
            self._queued.discard(bid)
            return
        readable = self.hdfs.readable_replicas(block)
        target = self._pick_target(block)
        if not readable or target is None:
            # No live source or no room to put the copy: park the block
            # until an "up" edge makes repair possible again.
            self._deferred.append(bid)
            self.repairs_deferred += 1
            return
        source = readable[0]
        started = self.sim.now
        read = self.sim.process(
            self.hdfs.datanodes[source].storage.read(block.size_bytes))
        path = self.hdfs.topology.path(source, target) + [self.throttle]
        flow = self.hdfs.topology.network.start_flow(path,
                                                     block.size_bytes)
        yield self.sim.all_of([read, flow])
        yield from self.hdfs.datanodes[target].storage.write(
            block.size_bytes, buffered=True)
        # Re-home: keep every intact copy, invalidate one stale home if
        # the new copy would overshoot the target count.
        faults = self.faults
        keep = [r for r in block.replicas if not faults.disk_failed(r)]
        if len(keep) + 1 > self.hdfs.replication:
            now_readable = set(self.hdfs.readable_replicas(block))
            for r in keep:
                if r not in now_readable:
                    keep.remove(r)
                    break
        block.replicas = tuple(keep) + (target,)
        self._queued.discard(bid)
        self.repairs_completed += 1
        self.repair_bytes += block.size_bytes
        seconds = self.sim.now - started
        if self.ledger is not None:
            self.ledger.on_repair(block, source, target, seconds,
                                  block.size_bytes)
        if self.sim.trace is not None:
            self.sim.trace.complete("hdfs.repair", started,
                                    category="hdfs", node=target,
                                    block=bid, source=source)
