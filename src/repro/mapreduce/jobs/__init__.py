"""Job library: the six Table 8 workloads plus teragen/teravalidate.

``JOB_FACTORIES`` maps each job name to a factory
``(platform, slaves) -> (JobSpec, HadoopConfig)`` that applies the
paper's per-platform, per-cluster-size tuning.
"""

from .logcount import logcount2_job, logcount_job
from .pi import pi_job
from .terasort import teragen_job, terasort_job, teravalidate_job
from .wordcount import wordcount2_job, wordcount_job

JOB_FACTORIES = {
    "wordcount": wordcount_job,
    "wordcount2": wordcount2_job,
    "logcount": logcount_job,
    "logcount2": logcount2_job,
    "pi": pi_job,
    "terasort": terasort_job,
    "teragen": teragen_job,
    "teravalidate": teravalidate_job,
}

#: The jobs Table 8 reports on.
TABLE8_JOBS = ("wordcount", "wordcount2", "logcount", "logcount2", "pi",
               "terasort")

__all__ = [
    "JOB_FACTORIES", "TABLE8_JOBS", "logcount2_job", "logcount_job",
    "pi_job", "teragen_job", "terasort_job", "teravalidate_job",
    "wordcount2_job", "wordcount_job",
]
