"""The logcount and optimized logcount2 jobs (Section 5.2.2).

logcount extracts a ``<date level, 1>`` pair per log line — a much
lighter map than wordcount with far fewer output records.  The original
job keeps 500 input files (500 containers, the paper's worst case for
coordination overhead) but does set the combiner; logcount2 also
combines the input files down to one container per vcore.
"""

from __future__ import annotations

import math

from ...workloads import logcount_dataset
from ..config import HadoopConfig, default_config
from ..costs import JobCosts
from ..runtime import JobSpec

#: Fitted per the costs.py protocol.  logcount's wall time is dominated
#: by 500 task-JVM startups, so its per-byte path lengths are small.
LOGCOUNT_COSTS = JobCosts(
    map_mi_per_mb=546.0,
    sort_mi_per_mb=198.0,
    reduce_mi_per_mb=397.0,
    java_factor={"edison": 1.0, "dell": 2.30},
)

LOGCOUNT2_COSTS = JobCosts(
    map_mi_per_mb=808.0,
    sort_mi_per_mb=294.0,
    reduce_mi_per_mb=588.0,
    java_factor={"edison": 1.0, "dell": 4.52},
)

MAP_MEM = {"edison": 150, "dell": 500}
REDUCE_MEM = {"edison": 300, "dell": 1024}
COMBINED_MEM = {"edison": 300, "dell": 1024}


def _vcores_total(platform: str, slaves: int) -> int:
    config = default_config(platform)
    return config.node_vcores * slaves


def logcount_job(platform: str, slaves: int) -> tuple[JobSpec, HadoopConfig]:
    """The original logcount: 500 containers, combiner enabled."""
    dataset = logcount_dataset()
    spec = JobSpec(
        name="logcount",
        costs=LOGCOUNT_COSTS,
        map_tasks=dataset.file_count,
        reduce_tasks=_vcores_total(platform, slaves),
        map_mem_mb=MAP_MEM[platform],
        reduce_mem_mb=REDUCE_MEM[platform],
        dataset=dataset,
        combiner=True,
        output_ratio=0.01,
    )
    return spec, default_config(platform)


def logcount2_job(platform: str, slaves: int) -> tuple[JobSpec, HadoopConfig]:
    """The optimized logcount: combined inputs, one container per vcore."""
    dataset = logcount_dataset()
    maps = _vcores_total(platform, slaves)
    config = default_config(platform)
    split_mb = math.ceil(dataset.total_bytes / maps / 1e6)
    if split_mb > config.block_mb:
        config = config.with_block_mb(split_mb)
    spec = JobSpec(
        name="logcount2",
        costs=LOGCOUNT2_COSTS,
        map_tasks=maps,
        reduce_tasks=maps,
        map_mem_mb=COMBINED_MEM[platform],
        reduce_mem_mb=COMBINED_MEM[platform],
        dataset=dataset,
        combiner=True,
        output_ratio=0.01,
    )
    return spec, config
