"""The pi-estimation job (Section 5.2.3): pure CPU, the Edison's loss.

10 billion Monte-Carlo samples split over 70 map containers on the
Edison cluster and 24 on the Dell cluster, one reducer.  No input data:
the map cost is a fixed sampling loop.  This is the one Table 8 job
where the Edison cluster loses on work-done-per-joule.
"""

from __future__ import annotations

from ...core import paperdata as paper
from ..config import HadoopConfig, default_config
from ..costs import JobCosts
from ..runtime import JobSpec

#: CPU cost of the whole 10-billion-sample loop (MI), Edison-referenced.
#: ~480 instructions per sample: a JIT-compiled Halton-sequence point
#: plus the in-circle test (fitted per the costs.py protocol; the Dell
#: factor near 1.0 says Dhrystone predicts arithmetic loops well).
PI_TOTAL_MI = 4.791e6

PI_COSTS_TEMPLATE = {"edison": 1.0, "dell": 1.19}

MAP_MEM = {"edison": 300, "dell": 1024}


def pi_job(platform: str, slaves: int) -> tuple[JobSpec, HadoopConfig]:
    """10-billion-sample pi estimation, one container per vcore."""
    config = default_config(platform)
    full_maps = paper.PI_MAPS[platform]
    full_vcores = config.node_vcores * (35 if platform == "edison" else 2)
    # The paper uses 70/24 maps at full scale = one per vcore; smaller
    # clusters are retuned the same way.
    maps = max(1, round(full_maps * config.node_vcores * slaves
                        / full_vcores))
    costs = JobCosts(
        map_mi_per_mb=0.0,
        sort_mi_per_mb=0.0,
        reduce_mi_per_mb=0.0,
        map_fixed_mi=PI_TOTAL_MI / maps,
        java_factor=dict(PI_COSTS_TEMPLATE),
    )
    spec = JobSpec(
        name="pi",
        costs=costs,
        map_tasks=maps,
        reduce_tasks=1,
        map_mem_mb=MAP_MEM[platform],
        reduce_mem_mb=MAP_MEM[platform],
        dataset=None,
        combiner=False,
        output_ratio=0.0,
    )
    return spec, config
