"""Teragen / Terasort / Teravalidate (Section 5.2.4).

10 GB of 100-byte records (scaled down from the canonical 1 TB), 64 MB
blocks on *both* clusters for fairness, 168 map tasks, 24/70 reduce
tasks.  Terasort's map is the identity (output ratio 1.0), so the whole
input crosses the shuffle and gets written back through the HDFS
replication pipeline — the most data-movement-bound job in the paper,
and the one where Edison's aggregate disk/NIC advantage shows.

Only the Terasort stage is timed and metered, as in the paper.
"""

from __future__ import annotations

from ...core import paperdata as paper
from ...workloads import terasort_dataset
from ..config import HadoopConfig, default_config
from ..costs import JobCosts
from ..runtime import JobSpec

TERASORT_COSTS = JobCosts(
    map_mi_per_mb=167.0,
    sort_mi_per_mb=500.0,
    reduce_mi_per_mb=889.0,
    java_factor={"edison": 1.0, "dell": 2.26},
)

MAP_MEM = {"edison": 300, "dell": 1024}
REDUCE_MEM = {"edison": 300, "dell": 1024}


def _vcores_total(platform: str, slaves: int) -> int:
    config = default_config(platform)
    return config.node_vcores * slaves


def terasort_job(platform: str, slaves: int) -> tuple[JobSpec, HadoopConfig]:
    """The timed Terasort stage."""
    dataset = terasort_dataset()
    config = default_config(platform).with_block_mb(paper.TERASORT_BLOCK_MB)
    spec = JobSpec(
        name="terasort",
        costs=TERASORT_COSTS,
        map_tasks=dataset.file_count,
        reduce_tasks=_vcores_total(platform, slaves),
        map_mem_mb=MAP_MEM[platform],
        reduce_mem_mb=REDUCE_MEM[platform],
        dataset=dataset,
        combiner=False,          # sorting cannot be combined
        output_ratio=1.0,        # the sorted data is written back whole
    )
    return spec, config


def teragen_job(platform: str, slaves: int) -> tuple[JobSpec, HadoopConfig]:
    """Teragen: map-only generation of the terasort input."""
    dataset = terasort_dataset()
    config = default_config(platform).with_block_mb(paper.TERASORT_BLOCK_MB)
    costs = JobCosts(
        map_mi_per_mb=120.0, sort_mi_per_mb=0.0, reduce_mi_per_mb=0.0,
        java_factor=dict(TERASORT_COSTS.java_factor))
    spec = JobSpec(
        name="teragen",
        costs=costs,
        map_tasks=dataset.file_count,
        reduce_tasks=0,
        map_mem_mb=MAP_MEM[platform],
        reduce_mem_mb=REDUCE_MEM[platform],
        dataset=dataset,
        combiner=False,
        output_ratio=0.0,
    )
    return spec, config


def teravalidate_job(platform: str, slaves: int) -> tuple[JobSpec, HadoopConfig]:
    """Teravalidate: one map per terasort reducer output, one reducer."""
    dataset = terasort_dataset()
    config = default_config(platform).with_block_mb(paper.TERASORT_BLOCK_MB)
    costs = JobCosts(
        map_mi_per_mb=90.0, sort_mi_per_mb=0.0, reduce_mi_per_mb=10.0,
        java_factor=dict(TERASORT_COSTS.java_factor))
    spec = JobSpec(
        name="teravalidate",
        costs=costs,
        map_tasks=_vcores_total(platform, slaves),
        reduce_tasks=1,
        map_mem_mb=MAP_MEM[platform],
        reduce_mem_mb=REDUCE_MEM[platform],
        dataset=dataset,
        combiner=False,
        output_ratio=0.0,
    )
    return spec, config
