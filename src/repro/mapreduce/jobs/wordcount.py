"""The wordcount and optimized wordcount2 jobs (Section 5.2.1).

wordcount: 200 input files (1 GB total), one container per file, no
combiner — 200 small map tasks whose container overhead the paper
highlights.  wordcount2 combines inputs so each vcore gets exactly one
map container and sets the Combiner class, collapsing shuffle traffic.

Calibration (protocol in costs.py): path lengths fit the Edison-35 row
of Table 8 (310 s / 182 s), the Dell java factor fits the Dell-2 row
(213 s / 66 s); all other cluster sizes are predictions.
"""

from __future__ import annotations

import math

from ...workloads import wordcount_dataset
from ..config import HadoopConfig, default_config
from ..costs import JobCosts
from ..runtime import JobSpec

#: Per-phase CPU path lengths (MI/MB), fitted per the costs.py protocol.
#: The two variants were calibrated independently and landed on nearly
#: identical base path lengths (2235 vs 2280 MI/MB map) — evidence the
#: per-byte model is sound; their Dell factors differ because wordcount
#: co-schedules twice as many containers per vcore (density thrash).
WORDCOUNT_COSTS = JobCosts(
    map_mi_per_mb=2235.0,
    sort_mi_per_mb=838.0,
    reduce_mi_per_mb=1863.0,
    java_factor={"edison": 1.0, "dell": 2.65},
)

WORDCOUNT2_COSTS = JobCosts(
    map_mi_per_mb=2280.0,
    sort_mi_per_mb=855.0,
    reduce_mi_per_mb=1900.0,
    java_factor={"edison": 1.0, "dell": 2.11},
)

#: Map/reduce container sizes the paper sets per platform (MB).
MAP_MEM = {"edison": 150, "dell": 500}
REDUCE_MEM = {"edison": 300, "dell": 1024}
COMBINED_MEM = {"edison": 300, "dell": 1024}


def _vcores_total(platform: str, slaves: int) -> int:
    config = default_config(platform)
    return config.node_vcores * slaves


def wordcount_job(platform: str, slaves: int) -> tuple[JobSpec, HadoopConfig]:
    """The original wordcount: 200 containers, no combiner."""
    dataset = wordcount_dataset()
    spec = JobSpec(
        name="wordcount",
        costs=WORDCOUNT_COSTS,
        map_tasks=dataset.file_count,
        reduce_tasks=_vcores_total(platform, slaves),
        map_mem_mb=MAP_MEM[platform],
        reduce_mem_mb=REDUCE_MEM[platform],
        dataset=dataset,
        combiner=False,
        output_ratio=0.05,
    )
    return spec, default_config(platform)


def wordcount2_job(platform: str, slaves: int) -> tuple[JobSpec, HadoopConfig]:
    """The optimized wordcount: combined inputs + combiner class.

    Inputs are combined so each vcore gets one map container; for
    smaller clusters the paper raises the HDFS block size so this
    tuning still holds (Section 5.3).
    """
    dataset = wordcount_dataset()
    maps = _vcores_total(platform, slaves)
    config = default_config(platform)
    split_mb = math.ceil(dataset.total_bytes / maps / 1e6)
    if split_mb > config.block_mb:
        config = config.with_block_mb(split_mb)
    spec = JobSpec(
        name="wordcount2",
        costs=WORDCOUNT2_COSTS,
        map_tasks=maps,
        reduce_tasks=maps,
        map_mem_mb=COMBINED_MEM[platform],
        reduce_mem_mb=COMBINED_MEM[platform],
        dataset=dataset,
        combiner=True,
        output_ratio=0.05,
    )
    return spec, config
