"""The MapReduce job runtime: map waves, shuffle, merge, reduce.

A :class:`JobRunner` executes one job specification on a Hadoop cluster
(one Dell master + N slaves).  Every phase consumes the simulated
hardware it would on the real testbed:

* container allocation rides NodeManager heartbeats (YARN scheduler),
* JVM/task start burns CPU on the container's node,
* input splits are read from HDFS (local disk ~95 % of the time),
* map/sort CPU is diced into slices so concurrent containers share
  vcores fairly,
* map output spills to the local disk (page-cache-buffered),
* shuffle moves each node's map output to reducers as fluid flows,
* reducers merge (spilling to disk when input exceeds their heap),
  reduce, and write output through the HDFS replication pipeline.

Job wall time and the power-meter integral over it are the quantities
Table 8 reports; progress/utilisation/power time series reproduce
Figures 12-17.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math
import statistics
from typing import Dict, List, Optional

from ..cluster import Cluster, hadoop_cluster
from ..core import paperdata as paper
from ..faults.models import FaultCause, PARTITION_KINDS
from ..hardware import ServerSpec
from ..resilience.config import ResilienceConfig
from ..resilience.ledger import ResilienceLedger
from ..sim import Interrupt, RngStreams, Simulation, TimeSeries, backoff_delay
from ..workloads import Dataset
from . import costs as C
from .config import HadoopConfig, default_config
from .hdfs import BlockUnavailable, Hdfs
from .yarn import YarnScheduler

#: Concurrent fetch streams per reducer (mapreduce.reduce.shuffle.parallelcopies).
SHUFFLE_PARALLELISM = 5
#: Fraction of a reducer's heap usable for in-memory merge.
MERGE_BUFFER_FRACTION = 0.7


#: Attempts Hadoop makes per task before failing the job
#: (mapreduce.map.maxattempts).  Attempts killed by node loss are not
#: charged against this budget (Hadoop marks them KILLED, not FAILED).
MAX_TASK_ATTEMPTS = 4

#: Hard cap on container launches per task, counting node-loss kills —
#: a backstop against a cluster whose nodes keep dying under the task.
MAX_TASK_LAUNCHES = 25

#: NodeManager heartbeats the ResourceManager waits before expiring a
#: silent node: blacklisting it, reclaiming its containers and
#: re-executing the completed maps whose output died with it.  (The
#: Hadoop default is a 10-minute liveness window; scaled to the
#: simulation's second-scale heartbeats.)
NM_EXPIRY_HEARTBEATS = 2


class TaskFailed(Exception):
    """A task attempt died (failure injection or fault model)."""


class JobFailed(Exception):
    """A task exhausted its attempts; the whole job is failed."""


class SpeculationWin(Exception):
    """Interrupt cause: a speculative twin finished first; adopt it."""

    def __init__(self, node: str, out_bytes: float):
        super().__init__(f"speculative twin won on {node}")
        self.node = node
        self.out_bytes = out_bytes


class SpeculationKill(Exception):
    """Interrupt cause: the original attempt finished; twin is redundant."""


class _TaskCell:
    """Shared scoreboard entry between a map task and its speculative twin."""

    __slots__ = ("index", "board", "primary", "hdfs_file", "started_at",
                 "node", "in_attempt", "spec_process", "speculated", "done",
                 "won", "winner")

    def __init__(self, index: int, board: "_SpecBoard"):
        self.index = index
        self.board = board
        self.primary = None          # the original task's Process
        self.hdfs_file = None        # input split, once drawn
        self.started_at = None       # sim time the running attempt started
        self.node = None             # node the running attempt occupies
        self.in_attempt = False      # primary is inside _map_attempt
        self.spec_process = None     # live speculative Process, if any
        self.speculated = False      # a twin was ever launched
        self.done = False            # task completed (either attempt)
        self.won = False             # the twin finished first
        self.winner = None           # (node, out_bytes) from the twin


class _SpecBoard:
    """All of a job's task cells plus the completed-attempt durations."""

    def __init__(self):
        self.cells: List[_TaskCell] = []
        self.durations: List[float] = []


@dataclass(frozen=True)
class JobSpec:
    """Everything needed to run one MapReduce job."""

    name: str
    costs: C.JobCosts
    map_tasks: int
    reduce_tasks: int
    map_mem_mb: int
    reduce_mem_mb: int
    dataset: Optional[Dataset] = None
    combiner: bool = False
    #: Reduce-output bytes per reduce-input byte.
    output_ratio: float = 0.05
    #: Probability that any single map attempt dies mid-flight (fault
    #: injection; Hadoop retries the attempt elsewhere).
    map_failure_rate: float = 0.0
    #: Same, for reduce attempts.  Both rates draw from the job's one
    #: ``faults`` RNG stream, so seeds stay reproducible.
    reduce_failure_rate: float = 0.0

    def __post_init__(self):
        if self.map_tasks < 1 or self.reduce_tasks < 0:
            raise ValueError("map_tasks >= 1 and reduce_tasks >= 0 required")
        if self.map_mem_mb < 1 or self.reduce_mem_mb < 1:
            raise ValueError("container memories must be >= 1 MB")
        if self.output_ratio < 0:
            raise ValueError("output_ratio must be >= 0")
        for rate_field in ("map_failure_rate", "reduce_failure_rate"):
            if not 0 <= getattr(self, rate_field) < 1:
                raise ValueError(f"{rate_field} must be in [0, 1)")

    @property
    def input_bytes(self) -> int:
        return self.dataset.total_bytes if self.dataset else 0

    @property
    def map_output_bytes(self) -> float:
        """Map output volume *before* any combiner."""
        if self.dataset is None:
            return 0.0
        return self.input_bytes * self.dataset.map_output_ratio

    @property
    def shuffle_bytes(self) -> float:
        """Bytes that actually move to reducers (after the combiner)."""
        if self.dataset is None:
            return 0.0
        survival = self.dataset.combine_survival if self.combiner else 1.0
        return self.map_output_bytes * survival


@dataclass
class JobTimeline:
    """Time series behind the Figure 12-17 plots."""

    map_progress: TimeSeries = field(
        default_factory=lambda: TimeSeries("map"))
    reduce_progress: TimeSeries = field(
        default_factory=lambda: TimeSeries("reduce"))
    power_w: TimeSeries = field(default_factory=lambda: TimeSeries("power"))
    cpu: TimeSeries = field(default_factory=lambda: TimeSeries("cpu"))
    mem: TimeSeries = field(default_factory=lambda: TimeSeries("mem"))


@dataclass(frozen=True)
class JobReport:
    """Outcome of one job run — one cell of Table 8 plus its timeline."""

    job: str
    platform: str
    slaves: int
    seconds: float
    joules: float
    locality_fraction: float
    timeline: JobTimeline

    @property
    def mean_watts(self) -> float:
        return self.joules / self.seconds

    @property
    def work_per_joule(self) -> float:
        """Jobs per joule — the paper's comparison metric."""
        return 1.0 / self.joules


class JobRunner:
    """Executes MapReduce jobs on a freshly built Hadoop cluster."""

    def __init__(self, platform: str, slaves: int,
                 config: Optional[HadoopConfig] = None,
                 seed: int = 20160901,
                 edison_spec: Optional[ServerSpec] = None,
                 master_spec: Optional[ServerSpec] = None,
                 trace=None,
                 resilience: Optional[ResilienceConfig] = None,
                 racks: int = 0):
        self.platform = platform
        self.slaves = slaves
        self.config = config if config is not None \
            else default_config(platform)
        self.sim = Simulation(trace=trace)
        self.rng = RngStreams(seed)
        kwargs = {}
        if edison_spec is not None:
            kwargs["edison_spec"] = edison_spec
        if master_spec is not None:
            kwargs["master_spec"] = master_spec
        if racks:
            kwargs["racks"] = racks
        self.cluster: Cluster = hadoop_cluster(self.sim, platform, slaves,
                                               **kwargs)
        self.slave_servers = self.cluster.metered_servers
        self.hdfs = Hdfs(self.sim, self.cluster.topology, self.slave_servers,
                         self.config.block_bytes, self.config.replication,
                         self.rng.stream("hdfs"))
        self.yarn = YarnScheduler(self.sim, self.slave_servers, self.config,
                                  self.rng.stream("yarn"),
                                  master=self.cluster.servers["master"])
        self.meter = self.cluster.attach_meter(interval=1.0)
        self._fault_rng = self.rng.stream("faults")
        #: (spec, state) of the run in flight — consulted by the
        #: fault-injector listener for node-loss recovery.
        self._active = None
        #: Root SpanContext of the running job's causal tree (traced
        #: runs only; set by :meth:`run`).
        self._job_ctx = None
        # Resilience is strictly opt-in: with it off (or a disabled
        # config), nothing below exists — no extra RNG stream, no
        # ledger, no monitor process — so runs stay bit-identical.
        self.resilience = (resilience if resilience is not None
                           and resilience.any_enabled else None)
        self.resilience_ledger = None
        self._retry_rng = None
        if self.resilience is not None:
            self.resilience_ledger = ResilienceLedger()
            if self.resilience.retries:
                self._retry_rng = self.rng.stream("resilience.retry")
        # Partition-tolerance state (plain containers: no RNG, no
        # processes — a run that never partitions is bit-identical).
        # The phi detector and ledger are armed by repro.durability's
        # attach_job; they stay None otherwise.
        self._phi = None
        self.durability_ledger = None
        self._zombies: Dict[str, List] = {}
        self._partition_expired: set = set()
        self.partition_counters = {"zombies_started": 0,
                                   "duplicate_kills": 0,
                                   "reregistered": 0}
        self._reserve_daemon_memory()

    def _reserve_daemon_memory(self) -> None:
        """Pin OS + datanode + node-manager memory (Section 5.2 survey)."""
        daemon_mb = (paper.S52_EDISON_DAEMON_MEM_MB
                     if self.platform == "edison"
                     else paper.S52_DELL_DAEMON_MEM_MB)
        for server in self.slave_servers:
            server.memory.reserve(daemon_mb * 1e6)
        # The master's steady footprint (excluded from energy accounting).
        master = self.cluster.servers["master"]
        master.memory.reserve(
            paper.S52_MASTER_MEM * master.memory.capacity_bytes)

    # -- helpers -----------------------------------------------------------

    def _cpu(self, node_name: str, mi: float):
        """Process generator: run ``mi`` of job CPU on ``node_name``.

        Work is diced into slices so FIFO vcore queues approximate fair
        sharing across the containers the paper co-schedules per vcore.
        """
        execute = self.cluster.servers[node_name].cpu.execute
        slice_mi = mi / C.CPU_SLICES
        for _ in range(C.CPU_SLICES):
            yield from execute(slice_mi)

    def _task_overhead(self, node_name: str, factor: float):
        """Container launch: wall floor plus JVM start CPU."""
        yield C.TASK_LAUNCH_S
        yield from self._cpu(node_name, C.JVM_START_MI * factor)

    # -- the job ------------------------------------------------------------

    def run(self, spec: JobSpec, sample_interval: float = 1.0,
            deadline_s: float = 100_000.0) -> JobReport:
        """Run ``spec`` to completion and report time, energy, timeline.

        ``deadline_s`` is a watchdog: the periodic samplers keep the
        event calendar alive indefinitely, so a stalled job would spin
        forever; exceeding the deadline raises instead.
        """
        timeline = JobTimeline()
        state = _JobState(self.sim, spec, self.config.slowstart)
        trace = self.sim.trace
        job_start = self.sim.now
        # Root of the job's causal tree: every task attempt, HDFS read
        # and shuffle leg below hangs off this context.
        self._job_ctx = trace.root_context() if trace is not None else None
        if self.sim.faults is not None:
            # Wire failure detection/recovery: node loss blacklists the
            # NodeManager, reclaims its containers and re-executes the
            # completed maps whose output died with it.
            self._active = (spec, state)
            self.sim.faults.add_listener(self._on_fault_event)
        input_files = self._stage_input(spec)
        done = self.sim.process(self._job(spec, state, input_files),
                                name=f"job-{spec.name}")
        self.meter.start()
        self.sim.process(self._sampler(state, timeline, sample_interval,
                                       done))
        self.sim.run(until=self.sim.any_of([done,
                                            self.sim.timeout(deadline_s)]))
        if not done.processed:
            raise RuntimeError(
                f"job {spec.name!r} still running at the {deadline_s} s "
                f"watchdog deadline: {state.maps_done}/{spec.map_tasks} "
                f"maps, {state.reduces_done}/{spec.reduce_tasks} reduces")
        end = self.sim.now
        self.meter.sample()                      # close the energy integral
        timeline.power_w.record(end, self.meter.series.values[-1])
        joules = self.meter.series.integrate()
        if trace is not None:
            trace.complete("job", job_start, category="task",
                           node="master", ctx=self._job_ctx,
                           job=spec.name)
        return JobReport(
            job=spec.name, platform=self.platform, slaves=self.slaves,
            seconds=end, joules=joules,
            locality_fraction=state.locality_fraction,
            timeline=timeline)

    def _stage_input(self, spec: JobSpec) -> List:
        """Place one HDFS file per map task (the paper's split tuning)."""
        if spec.dataset is None:
            return [None] * spec.map_tasks
        split = max(1, spec.input_bytes // spec.map_tasks)
        return [self.hdfs.stage_file(f"{spec.name}-in-{i:05d}", split)
                for i in range(spec.map_tasks)]

    def _sampler(self, state: "_JobState", timeline: JobTimeline,
                 interval: float, done) -> None:
        trace = self.sim.trace
        while not done.processed:
            now = self.sim.now
            timeline.map_progress.record(
                now, state.maps_done / state.spec.map_tasks)
            reduces = max(1, state.spec.reduce_tasks)
            timeline.reduce_progress.record(now, state.reduces_done / reduces)
            if trace is not None:
                trace.counter("map_progress", timeline.map_progress.values[-1],
                              category="sample")
                trace.counter("reduce_progress",
                              timeline.reduce_progress.values[-1],
                              category="sample")
            if self.meter.series.times:
                timeline.power_w.record(now, self.meter.series.values[-1])
                timeline.cpu.record(now, self.meter.per_component["cpu"].values[-1])
                timeline.mem.record(now, self.meter.per_component["mem"].values[-1])
            yield interval

    # -- administrative suspend/resume (the carbon plane's lever) ----------
    #
    # Deliberate cluster-wide pause, riding the same machinery a crash
    # does but through the injector's *admin* power states: no
    # FaultRecord is written, no downtime accrues, and — crucially —
    # completed map output on the parked nodes' disks stays trusted
    # (the fault listener ignores "admin" edges), so a resumed job only
    # re-runs the attempts that were in flight at the suspend instant.
    # Both methods are dead code without a caller: a run that never
    # suspends is bit-identical to one built before they existed.

    def suspend_workers(self) -> None:
        """Park every slave: blacklist in YARN, then admin power-off.

        Requires an attached :class:`~repro.faults.FaultInjector` (an
        empty-plan one suffices).  Blacklisting first means the
        interrupted attempts' container releases land on an
        already-swept NodeManager (a no-op), exactly as crash expiry
        orders it; new allocation requests then wait for capacity
        instead of churning grants on parked nodes.
        """
        faults = self.sim.faults
        if faults is None:
            raise RuntimeError("suspend_workers needs a FaultInjector "
                               "attached to the cluster")
        for server in self.slave_servers:
            self.yarn.mark_node_down(server.name)
        for server in self.slave_servers:
            faults.admin_power_off(server.name)

    def resume_workers(self, boot_s: float = 0.0):
        """Process generator: wake every parked slave.

        Nodes draw idle power for ``boot_s`` (``admin_booting``), then
        return to service with a fresh container pool — capacity is
        only schedulable once it can actually run work.
        """
        if boot_s < 0:
            raise ValueError("boot_s must be >= 0")
        faults = self.sim.faults
        if faults is None:
            raise RuntimeError("resume_workers needs a FaultInjector "
                               "attached to the cluster")
        for server in self.slave_servers:
            if faults.admin_state(server.name) == "off":
                faults.admin_begin_boot(server.name)
        if boot_s > 0:
            yield boot_s
        for server in self.slave_servers:
            faults.admin_power_on(server.name)
            self.yarn.mark_node_up(server.name)

    def _density(self, mem_mb: int, tasks: int) -> float:
        """Concurrent containers per vcore during one phase."""
        per_node_slots = max(1, self.config.node_task_mem_mb // mem_mb)
        per_node_tasks = math.ceil(tasks / len(self.slave_servers))
        return min(per_node_slots, per_node_tasks) / self.config.node_vcores

    # -- failure detection and recovery -----------------------------------

    def _on_fault_event(self, event: str, node: str, kind: str) -> None:
        """Fault-injector listener: react to node down/up edges."""
        if kind in PARTITION_KINDS:
            self._on_partition_event(event, node, kind)
            return
        if kind not in ("crash", "power"):
            return
        if event == "up":
            self.yarn.mark_node_up(node)
            return
        if node not in self.yarn.nodes or self._active is None:
            return   # the master or a non-slave; allocation just stalls
        spec, state = self._active
        # Completed map output lived on the node's local disk: gone.
        # Account for it now (so shuffles stop trusting the node) and
        # re-execute once the ResourceManager expires the NodeManager.
        lost_files, counts = state.lose_node(node)
        self.sim.process(
            self._expire_and_recover(spec, state, node, lost_files, counts),
            name=f"expire-{node}")

    def _expire_and_recover(self, spec: JobSpec, state: "_JobState",
                            node: str, lost_files: List, counts: bool):
        """RM-side process: expire a silent NodeManager, re-run its maps."""
        yield NM_EXPIRY_HEARTBEATS * self.config.heartbeat_s
        faults = self.sim.faults
        if faults is not None and not faults.is_up(node):
            # Still silent after the liveness window: blacklist it.  (If
            # it rebooted in time, its containers are gone regardless.)
            self.yarn.mark_node_down(node)
        for hdfs_file in lost_files:
            self.sim.process(
                self._map_task(spec, state, None, state.map_factor,
                               recovery_from=node, fixed_file=hdfs_file,
                               counts=counts),
                name=f"remap-{node}")

    # -- split-brain: partitions and their reconciliation ------------------
    #
    # A partitioned node is *alive*: its attempts keep executing on the
    # far side while the ResourceManager's side hears only silence.
    # Nothing happens at cut time — expiry (fixed heartbeats, or the
    # phi-accrual detector when armed) decides when this side gives up,
    # and only then does the majority blacklist the node, invalidate
    # its map output and re-execute.  The original attempt keeps
    # burning the minority node's CPU as a *zombie* duplicate until the
    # heal-time reconciliation kills it and re-registers the survivor —
    # the work was never double-counted because zombies never report.

    def _on_partition_event(self, event: str, node: str,
                            kind: str) -> None:
        if node not in self.yarn.nodes:
            return
        if event == "down":
            if self._active is None:
                return
            spec, state = self._active
            self.sim.process(
                self._expire_partitioned(spec, state, node, kind),
                name=f"expire-{node}")
            return
        # Heal: kill duplicate attempts, then re-register the survivor.
        for process, started in self._zombies.pop(node, ()):
            if process.is_alive:
                process.interrupt(FaultCause("reconcile", node))
                self.partition_counters["duplicate_kills"] += 1
                self._charge_split_brain(node, self.sim.now - started)
        if node in self._partition_expired:
            self._partition_expired.discard(node)
            self.yarn.mark_node_up(node)
            self.partition_counters["reregistered"] += 1

    def _expire_partitioned(self, spec: JobSpec, state: "_JobState",
                            node: str, kind: str):
        """RM-side conviction of a silent-but-alive node."""
        faults = self.sim.faults
        if self._phi is not None:
            suspected = yield from self._phi.wait_suspect(
                node, healthy=lambda: (faults.is_reachable(node)
                                       and faults.is_up(node)))
            if not suspected:
                return
        else:
            yield NM_EXPIRY_HEARTBEATS * self.config.heartbeat_s
        if faults.is_reachable(node):
            return   # healed inside the liveness window; never expired
        self.yarn.mark_node_down(node)
        self._partition_expired.add(node)
        # This side stops trusting the node's completed map output (it
        # is unreachable for shuffle) and re-executes on the majority.
        lost_files, counts = state.lose_node(node)
        for process in faults.bound_processes(node):
            if process.is_alive:
                process.interrupt(FaultCause(kind, node))
        for hdfs_file in lost_files:
            self.sim.process(
                self._map_task(spec, state, None, state.map_factor,
                               recovery_from=node, fixed_file=hdfs_file,
                               counts=counts),
                name=f"remap-{node}")

    def _spawn_zombie(self, node: str) -> None:
        """The partitioned side's copy of an interrupted attempt."""
        self.partition_counters["zombies_started"] += 1
        process = self.sim.process(self._zombie_attempt(node),
                                   name=f"zombie-{node}")
        self._zombies.setdefault(node, []).append((process, self.sim.now))

    def _zombie_attempt(self, node: str):
        """Burn the minority node's CPU until reconciliation kills us.

        Models the orphaned container: it finishes its split, fails to
        report to an AM it cannot reach, and retries — so the node
        stays busy (and its power draw honest) for the whole partition.
        Zombies never touch job state: no output recorded, no counter
        advanced, hence no double-counted work.
        """
        faults = self.sim.faults
        process = self.sim.active_process
        faults.bind(node, process)
        try:
            while True:
                yield from self._cpu(node, C.JVM_START_MI)
        except Interrupt:
            return
        finally:
            faults.unbind(node, process)

    def _charge_split_brain(self, node: str, seconds: float) -> None:
        if self.durability_ledger is None:
            return
        server = self.cluster.servers[node]
        watts = ResilienceLedger.marginal_vcore_watts(server)
        self.durability_ledger.charge("split_brain", node, seconds, watts)

    def _job(self, spec: JobSpec, state: "_JobState",
             input_files: List):
        map_factor = C.effective_factor(
            spec.costs, self.platform,
            self._density(spec.map_mem_mb, spec.map_tasks))
        reduce_factor = C.effective_factor(
            spec.costs, self.platform,
            self._density(spec.reduce_mem_mb, max(1, spec.reduce_tasks)))
        state.map_factor = map_factor
        # Application-master spin-up + job initialisation lead.
        yield C.ALLOC_LEAD_S[self.platform]
        pool = _InputPool(input_files, self.rng.stream("am"))
        if self.resilience is not None and self.resilience.speculation:
            board = _SpecBoard()
            maps = []
            for i in range(spec.map_tasks):
                cell = _TaskCell(i, board)
                proc = self.sim.process(
                    self._map_task(spec, state, pool, map_factor, cell=cell),
                    name=f"map-{i}")
                cell.primary = proc
                board.cells.append(cell)
                maps.append(proc)
            self.sim.process(
                self._speculation_monitor(spec, state, board, map_factor),
                name="speculation-monitor")
        else:
            maps = [self.sim.process(
                self._map_task(spec, state, pool, map_factor),
                name=f"map-{i}") for i in range(spec.map_tasks)]
        reduces = []
        if spec.reduce_tasks > 0:
            yield state.slowstart_event
            # Launch at most half the reduce slots while maps still run,
            # as Hadoop's headroom limit does — otherwise reducers (which
            # block on map completion) can hold every container while the
            # map tail starves: a scheduling deadlock.
            slots = len(self.slave_servers) * max(
                1, self.config.node_task_mem_mb // spec.reduce_mem_mb)
            early = min(spec.reduce_tasks, max(1, slots // 2))
            reduces = [self.sim.process(
                self._reduce_task(spec, state, reduce_factor),
                name=f"red-{i}") for i in range(early)]
        yield self.sim.all_of(maps)
        if self.sim.faults is not None:
            # Node loss may have re-queued completed maps; the map phase
            # only ends once re-execution restores every lost output.
            yield from state.wait_maps_complete(self.sim)
        state.all_maps_done.succeed()
        if spec.reduce_tasks > 0:
            reduces.extend(self.sim.process(
                self._reduce_task(spec, state, reduce_factor),
                name=f"red-{i}") for i in range(early, spec.reduce_tasks))
        if reduces:
            yield self.sim.all_of(reduces)

    # -- map side ----------------------------------------------------------

    def _map_task(self, spec: JobSpec, state: "_JobState",
                  pool: Optional["_InputPool"], factor: float,
                  recovery_from: Optional[str] = None,
                  fixed_file=None, counts: bool = True,
                  cell: Optional[_TaskCell] = None):
        """One map task: allocate, attempt, retry; record its output.

        With ``recovery_from`` set this is a re-execution of a map whose
        completed output died with node ``recovery_from``; the input
        split is ``fixed_file`` (no locality pool draw) and completion
        settles the pending recovery instead of advancing the original
        map counter (unless ``counts``: the phase was still open when
        the node died, so the counter was decremented and must recover).

        With a ``cell`` (speculation enabled), the task publishes its
        attempt progress there and a speculative twin may race it: the
        first finisher wins, the loser is killed and its joules charged
        to the resilience ledger.
        """
        hdfs_file = fixed_file
        faults = self.sim.faults
        failures = 0
        launches = 0
        took_split = recovery_from is not None   # recoveries keep fixed_file
        win_node = None
        out_bytes = 0.0
        while True:
            launches += 1
            if launches > MAX_TASK_LAUNCHES:
                raise JobFailed(
                    f"{spec.name}: a map task was relaunched "
                    f"{MAX_TASK_LAUNCHES} times without completing "
                    f"(nodes keep failing under it)")
            # Containers are requested anonymously and the application
            # master assigns whichever pending split is local to the
            # node that answered — how Hadoop's AM achieves its ~95 %
            # data-locality, and why the paper sees it on both clusters.
            grant = yield from self.yarn.allocate(spec.map_mem_mb)
            if faults is not None and not faults.is_up(grant.node):
                # Granted on a node that died before the NodeManager
                # expiry window closed; give it back and re-request.
                self.yarn.release(grant)
                continue
            if cell is not None and cell.won:
                # The speculative twin finished while this side waited
                # for a container: adopt its output, skip the attempt.
                self.yarn.release(grant)
                win_node, out_bytes = cell.winner
                break
            # Draw the input split at the first grant that survives the
            # liveness check — not the first launch: a grant churned back
            # because its node was dead must not cost the task its split.
            if not took_split:
                took_split = True
                hdfs_file, local = pool.take(grant.node)
                if hdfs_file is not None:
                    state.placed_maps += 1
                    if local:
                        state.local_maps += 1
                if cell is not None:
                    cell.hdfs_file = hdfs_file
            attempt_start = self.sim.now
            process = self.sim.active_process
            trace = self.sim.trace
            attempt_ctx = trace.child_context(self._job_ctx) \
                if trace is not None else None
            if faults is not None:
                faults.bind(grant.node, process)
            if cell is not None:
                cell.started_at = attempt_start
                cell.node = grant.node
                cell.in_attempt = True
            try:
                out_bytes = yield from self._map_attempt(
                    spec, grant.node, hdfs_file, factor, ctx=attempt_ctx)
            except TaskFailed:
                state.failed_attempts += 1
                self._trace_attempt("map", grant.node, attempt_start,
                                    launches - 1, ok=False, ctx=attempt_ctx)
                failures += 1
                if failures >= MAX_TASK_ATTEMPTS:
                    raise JobFailed(
                        f"{spec.name}: a map task died "
                        f"{MAX_TASK_ATTEMPTS} times")
                yield from self._retry_backoff(failures)
                continue
            except Interrupt as exc:
                if cell is not None and isinstance(exc.cause, SpeculationWin):
                    # Lost the race: the twin's output stands, this
                    # attempt's partial work is the price of insurance.
                    self._charge_speculation(grant.node,
                                             self.sim.now - attempt_start)
                    self._trace_attempt("map", grant.node, attempt_start,
                                        launches - 1, ok=False, killed=True,
                                        lost_race=True, ctx=attempt_ctx)
                    win_node, out_bytes = exc.cause.node, exc.cause.out_bytes
                    break
                # The node died under the attempt; the retry allocates
                # on a surviving node and is not charged as a failure.
                # A *partition* kill is different: the node is alive on
                # the far side, so the orphaned attempt lives on as a
                # zombie duplicate until heal-time reconciliation.
                cause = exc.cause
                if (isinstance(cause, FaultCause)
                        and cause.kind in PARTITION_KINDS):
                    self._spawn_zombie(cause.node)
                state.failed_attempts += 1
                self._trace_attempt("map", grant.node, attempt_start,
                                    launches - 1, ok=False, killed=True,
                                    ctx=attempt_ctx)
                continue
            except BlockUnavailable as exc:
                # Every replica of an input block is gone: no retry can
                # help, fail the whole job cleanly.
                raise JobFailed(f"{spec.name}: {exc}") from exc
            finally:
                if cell is not None:
                    cell.in_attempt = False
                    cell.started_at = None
                if faults is not None:
                    faults.unbind(grant.node, process)
                self.yarn.release(grant)
            self._trace_attempt("map", grant.node, attempt_start,
                                launches - 1, ok=True, out_bytes=out_bytes,
                                ctx=attempt_ctx)
            if cell is not None:
                cell.board.durations.append(self.sim.now - attempt_start)
            win_node = grant.node
            break
        if cell is not None:
            cell.done = True
            if (not cell.won and cell.spec_process is not None
                    and cell.spec_process.is_alive):
                # First-finisher-wins: the twin is now redundant.
                cell.spec_process.interrupt(SpeculationKill())
        state.record_map_output(win_node, out_bytes)
        state.completed_map(win_node, hdfs_file)
        if recovery_from is None:
            state.map_finished(self.sim)
        else:
            state.recovery_completed(self.sim, recovery_from,
                                     win_node, out_bytes, counts)
        return

    def _map_attempt(self, spec: JobSpec, node: str, hdfs_file,
                     factor: float, ctx=None):
        """One attempt of one map task on ``node``; may raise TaskFailed.

        ``ctx`` is the attempt's :class:`~repro.trace.SpanContext`; the
        HDFS input read is emitted as its child span.
        """
        yield from self._task_overhead(node, factor)
        input_bytes = hdfs_file.size_bytes if hdfs_file else 0
        if hdfs_file is not None:
            read_start = self.sim.now
            for block in hdfs_file.blocks:
                yield from self.hdfs.read_block(node, block)
            trace = self.sim.trace
            if trace is not None:
                trace.complete("hdfs-read", read_start, category="task",
                               node=node,
                               ctx=trace.child_context(ctx)
                               if ctx is not None else None,
                               nbytes=input_bytes)
        if (spec.map_failure_rate > 0
                and self._fault_rng.random() < spec.map_failure_rate):
            # The attempt dies after consuming real resources.
            raise TaskFailed(f"injected failure on {node}")
        out_bytes = (input_bytes * spec.dataset.map_output_ratio
                     if spec.dataset else 0.0)
        cpu_mi = (spec.costs.map_fixed_mi
                  + spec.costs.map_mi_per_mb * input_bytes / 1e6
                  + spec.costs.sort_mi_per_mb * out_bytes / 1e6) * factor
        yield from self._cpu(node, cpu_mi)
        if spec.combiner and spec.dataset:
            out_bytes *= spec.dataset.combine_survival
        if out_bytes > 0:
            server = self.cluster.servers[node]
            yield from server.storage.write(out_bytes, buffered=True)
        yield C.TASK_COMMIT_S
        yield from self.yarn.master_commit()
        return out_bytes

    # -- speculative execution (LATE) --------------------------------------

    def _retry_backoff(self, failures: int):
        """Process generator: seeded backoff before a failed attempt retries.

        A no-op without resilience — the historical behaviour is an
        immediate re-request on the next heartbeat.
        """
        if self._retry_rng is None:
            return
        policy = self.resilience.retry_policy
        self.resilience_ledger.count("retries")
        yield backoff_delay(self._retry_rng, failures - 1,
                            policy.backoff_base_s, policy.backoff_cap_s,
                            policy.jitter)

    def _charge_speculation(self, node: str, seconds: float) -> None:
        """Bill a killed attempt's partial work to the resilience ledger."""
        ledger = self.resilience_ledger
        ledger.charge("speculation", node, seconds,
                      ledger.marginal_vcore_watts(self.cluster.servers[node]))
        ledger.count("speculative_kills")

    def _estimate_map_s(self, spec: JobSpec, factor: float) -> float:
        """Cost-model anchor for the straggler baseline.

        Used until enough attempts have completed for the running
        median to be trusted; deliberately coarse (CPU at the loaded
        vcore rate plus the launch/commit floors — I/O omitted), since
        it only has to be the right order of magnitude.
        """
        split = spec.input_bytes / spec.map_tasks if spec.dataset else 0.0
        out = (split * spec.dataset.map_output_ratio if spec.dataset else 0.0)
        mi = (spec.costs.map_fixed_mi
              + spec.costs.map_mi_per_mb * split / 1e6
              + spec.costs.sort_mi_per_mb * out / 1e6
              + C.JVM_START_MI) * factor
        # Median per-slave rate, not slave 0's: on a heterogeneous
        # Edison+Dell pool anchoring to whichever platform happens to
        # sort first would misjudge every attempt on the other one
        # (a Dell-anchored estimate flags all Edison attempts as
        # stragglers).  The median rate stands in for the median
        # completed-attempt duration this estimate replaces; on a
        # homogeneous pool it is bit-identical to the old anchor.
        rate = statistics.median(
            server.cpu.spec.vcore_dmips for server in self.slave_servers)
        return C.TASK_LAUNCH_S + C.TASK_COMMIT_S + mi / rate

    def _speculation_monitor(self, spec: JobSpec, state: "_JobState",
                             board: _SpecBoard, factor: float):
        """Job-wide straggler scan, LATE-style.

        Every ``check_interval_s`` the monitor compares each running
        attempt's elapsed time against ``late_factor`` times the median
        completed-attempt duration (cost-model estimate until
        ``min_completed`` attempts exist) and launches capped
        speculative twins for the laggards.
        """
        cfg = self.resilience.speculation_cfg
        estimate = self._estimate_map_s(spec, factor)
        while not state.all_maps_done.triggered:
            yield cfg.check_interval_s
            if state.all_maps_done.triggered:
                return
            if len(board.durations) >= cfg.min_completed:
                baseline = statistics.median(board.durations)
            else:
                baseline = estimate
            threshold = cfg.late_factor * baseline
            outstanding = sum(
                1 for c in board.cells
                if c.spec_process is not None and c.spec_process.is_alive)
            now = self.sim.now
            # LATE launches against the *worst* stragglers first: with a
            # capped twin pool, spending a slot on a 2x laggard while a
            # 10x one waits forfeits most of the tail saving.  Elapsed
            # time stands in for estimated time-to-end (same input split
            # size, so longer-running means further from done); ties keep
            # task-index order, which keeps the scan deterministic.
            laggards = sorted(
                (c for c in board.cells
                 if not (c.done or c.speculated or c.started_at is None)
                 and now - c.started_at > threshold),
                key=lambda c: now - c.started_at, reverse=True)
            for cell in laggards:
                if outstanding >= cfg.max_outstanding:
                    break
                cell.speculated = True
                outstanding += 1
                self.resilience_ledger.count("speculative_launches")
                cell.spec_process = self.sim.process(
                    self._speculative_map(spec, cell, factor),
                    name=f"spec-map-{cell.index}")
                if self.sim.trace is not None:
                    self.sim.trace.instant(
                        "speculation.launch", category="resilience",
                        task=cell.index, elapsed_s=now - cell.started_at,
                        baseline_s=baseline)

    def _speculative_map(self, spec: JobSpec, cell: _TaskCell,
                         factor: float):
        """A speculative twin of one straggling map attempt.

        Races the original: whoever finishes first wins, the loser is
        killed and its joules land on the resilience ledger.  The twin
        is deliberately second-class — its container request gives up
        after a bounded number of heartbeats so speculation never
        starves first attempts on a full cluster.
        """
        ledger = self.resilience_ledger
        cfg = self.resilience.speculation_cfg
        faults = self.sim.faults
        avoid = (cell.node,) if cell.node is not None else ()
        try:
            grant = yield from self.yarn.allocate(
                spec.map_mem_mb,
                max_heartbeats=cfg.allocation_heartbeats,
                avoid=avoid)
        except Interrupt:
            return                       # killed while still queueing: free
        if grant is None:
            ledger.count("speculative_abandoned")
            # The cluster was full; let the monitor try again later,
            # when the map tail has freed slots.
            cell.speculated = False
            return
        if cell.done or (faults is not None and not faults.is_up(grant.node)):
            self.yarn.release(grant)
            if cell.done:
                ledger.count("speculative_abandoned")
            return
        start = self.sim.now
        process = self.sim.active_process
        trace = self.sim.trace
        attempt_ctx = trace.child_context(self._job_ctx) \
            if trace is not None else None
        if faults is not None:
            faults.bind(grant.node, process)
        try:
            out_bytes = yield from self._map_attempt(
                spec, grant.node, cell.hdfs_file, factor, ctx=attempt_ctx)
        except (TaskFailed, Interrupt, BlockUnavailable):
            # Killed by the winner, lost its node, or died on its own:
            # either way the partial work is pure overhead.
            self._charge_speculation(grant.node, self.sim.now - start)
            self._trace_attempt("map", grant.node, start, 0, ok=False,
                                speculative=True, ctx=attempt_ctx)
            return
        finally:
            if faults is not None:
                faults.unbind(grant.node, process)
            self.yarn.release(grant)
        if cell.done:
            # Photo finish, original side already committed: duplicate.
            self._charge_speculation(grant.node, self.sim.now - start)
            self._trace_attempt("map", grant.node, start, 0, ok=False,
                                speculative=True, ctx=attempt_ctx)
            return
        cell.board.durations.append(self.sim.now - start)
        cell.won = True
        cell.winner = (grant.node, out_bytes)
        ledger.count("speculative_wins")
        self._trace_attempt("map", grant.node, start, 0, ok=True,
                            speculative=True, out_bytes=out_bytes,
                            ctx=attempt_ctx)
        if cell.in_attempt:
            cell.primary.interrupt(SpeculationWin(grant.node, out_bytes))

    # -- reduce side ----------------------------------------------------------

    def _reduce_task(self, spec: JobSpec, state: "_JobState", factor: float):
        faults = self.sim.faults
        failures = 0
        launches = 0
        while True:
            launches += 1
            if launches > MAX_TASK_LAUNCHES:
                raise JobFailed(
                    f"{spec.name}: a reduce task was relaunched "
                    f"{MAX_TASK_LAUNCHES} times without completing "
                    f"(nodes keep failing under it)")
            grant = yield from self.yarn.allocate(spec.reduce_mem_mb)
            if faults is not None and not faults.is_up(grant.node):
                self.yarn.release(grant)
                continue
            attempt_start = self.sim.now
            process = self.sim.active_process
            trace = self.sim.trace
            attempt_ctx = trace.child_context(self._job_ctx) \
                if trace is not None else None
            if faults is not None:
                faults.bind(grant.node, process)
            try:
                yield from self._reduce_attempt(spec, state, grant.node,
                                                factor, ctx=attempt_ctx)
            except TaskFailed:
                state.failed_attempts += 1
                self._trace_attempt("reduce", grant.node, attempt_start,
                                    launches - 1, ok=False, ctx=attempt_ctx)
                failures += 1
                if failures >= MAX_TASK_ATTEMPTS:
                    raise JobFailed(
                        f"{spec.name}: a reduce task died "
                        f"{MAX_TASK_ATTEMPTS} times")
                yield from self._retry_backoff(failures)
                continue
            except Interrupt:
                # Node loss mid-reduce: the whole attempt (shuffle
                # included) re-runs on a surviving node, uncharged.
                state.failed_attempts += 1
                self._trace_attempt("reduce", grant.node, attempt_start,
                                    launches - 1, ok=False, killed=True,
                                    ctx=attempt_ctx)
                continue
            except BlockUnavailable as exc:
                raise JobFailed(f"{spec.name}: {exc}") from exc
            finally:
                if faults is not None:
                    faults.unbind(grant.node, process)
                self.yarn.release(grant)
            self._trace_attempt("reduce", grant.node, attempt_start,
                                launches - 1, ok=True, ctx=attempt_ctx)
            state.reduces_done += 1
            return

    def _reduce_attempt(self, spec: JobSpec, state: "_JobState",
                        node: str, factor: float, ctx=None):
        """One attempt of one reduce task on ``node``.

        ``ctx`` is the attempt's :class:`~repro.trace.SpanContext`; the
        shuffle leg is emitted as its child span.
        """
        yield from self._task_overhead(node, factor)
        # Shuffle can begin once slowstart fired (we are running), but
        # the tail of map output only exists when all maps are done.
        yield state.all_maps_done
        shuffle_start = self.sim.now
        input_bytes = yield from self._shuffle(spec, state, node)
        trace = self.sim.trace
        if trace is not None:
            trace.complete("shuffle", shuffle_start,
                           category="task", node=node,
                           ctx=trace.child_context(ctx)
                           if ctx is not None else None,
                           nbytes=input_bytes)
        if (spec.reduce_failure_rate > 0
                and self._fault_rng.random() < spec.reduce_failure_rate):
            # The attempt dies after shuffling real bytes — the costly
            # place for a reducer to die, as on the real cluster.
            raise TaskFailed(f"injected failure on {node}")
        buffer_bytes = spec.reduce_mem_mb * 1e6 * MERGE_BUFFER_FRACTION
        server = self.cluster.servers[node]
        if input_bytes > buffer_bytes:
            # On-disk merge round: spill and re-read what overflows.
            overflow = input_bytes - buffer_bytes
            yield from server.storage.write(overflow, buffered=True)
            yield from server.storage.read(overflow, buffered=True)
        yield from self._cpu(
            node,
            spec.costs.reduce_mi_per_mb * input_bytes / 1e6 * factor)
        out = input_bytes * spec.output_ratio
        if out > 0:
            yield from self.hdfs.write(node, out)
        yield C.TASK_COMMIT_S
        yield from self.yarn.master_commit()

    def _trace_attempt(self, kind: str, node: str, start: float,
                       attempt: int, ok: bool, ctx=None, **attrs) -> None:
        """Emit one task-attempt lifecycle span (no-op when untraced)."""
        if self.sim.trace is not None:
            self.sim.trace.complete(f"{kind}-attempt", start,
                                    category="task", node=node, ctx=ctx,
                                    attempt=attempt, ok=ok, **attrs)

    def _shuffle(self, spec: JobSpec, state: "_JobState",
                 node: str) -> float:
        """Fetch this reducer's partition from every map-output node."""
        faults = self.sim.faults
        if faults is not None:
            # Never snapshot the output ledger while lost maps are being
            # re-executed — wait until it is whole again.
            yield from state.wait_recoveries(self.sim)
        snapshot_t = self.sim.now
        share = 1.0 / spec.reduce_tasks
        fetches = [(source, nbytes * share)
                   for source, nbytes in state.map_output_by_node.items()
                   if nbytes > 0]
        total = 0.0
        for start in range(0, len(fetches), SHUFFLE_PARALLELISM):
            batch = fetches[start:start + SHUFFLE_PARALLELISM]
            if len(batch) == 1:
                # A lone leg needs no concurrency: run it inline and
                # skip the process-spawn + AllOf event chain.
                source, nbytes = batch[0]
                total += nbytes
                yield from self._fetch(source, node, nbytes)
                continue
            legs = []
            for source, nbytes in batch:
                total += nbytes
                legs.append(self.sim.process(
                    self._fetch(source, node, nbytes)))
            yield self.sim.all_of(legs)
        if faults is not None:
            # A source that started an outage during the window served
            # suspect bytes: its local map output died with it, even if
            # it has already rebooted.  Re-fetch those partitions from
            # the re-executed maps' new homes.  ``total`` is unchanged —
            # the fresh bytes replace the already-counted partition.
            for source, _ in fetches:
                if not faults.went_down_since(source, snapshot_t):
                    continue
                yield from state.wait_recoveries(self.sim)
                for new_node, out_bytes in state.recovered_from.get(
                        source, ()):
                    yield from self._fetch(new_node, node,
                                           out_bytes * share)
        return total

    def _fetch(self, source: str, dest: str, nbytes: float):
        server = self.cluster.servers[source]
        yield from server.storage.read(nbytes, buffered=True)
        if source != dest:
            yield self.cluster.topology.network.start_flow(
                self.cluster.topology.path(source, dest), nbytes)


class _InputPool:
    """Pending map inputs, handed out locality-first to granted nodes.

    A small fraction of assignments miss locality even when a local
    split exists — grant/heartbeat races and straggler rescheduling in
    the real AM — which is why the paper reports ~95 % rather than
    100 % data-local maps on both clusters.
    """

    MISS_PROBABILITY = 1.0 - paper.S52_DATA_LOCAL_FRACTION

    def __init__(self, input_files: List, rng):
        self.pending: List = list(input_files)
        self.rng = rng

    def take(self, node: str):
        """Pop a pending input, preferring one with a replica on ``node``.

        Returns ``(hdfs_file, was_local)``; ``(None, False)`` for jobs
        without input data (pi).
        """
        if not self.pending:
            raise RuntimeError("more map workers than pending inputs")
        if self.pending[0] is None:
            return self.pending.pop(), False
        if self.rng.random() >= self.MISS_PROBABILITY:
            for index, hdfs_file in enumerate(self.pending):
                replicas = hdfs_file.blocks[0].replicas \
                    if hdfs_file.blocks else ()
                if node in replicas:
                    self.pending.pop(index)
                    return hdfs_file, True
        hdfs_file = self.pending.pop(0)
        replicas = hdfs_file.blocks[0].replicas if hdfs_file.blocks else ()
        return hdfs_file, node in replicas


class _JobState:
    """Mutable bookkeeping shared by a job's tasks."""

    def __init__(self, sim: Simulation, spec: JobSpec,
                 slowstart: float):
        self.spec = spec
        self.maps_done = 0
        self.reduces_done = 0
        self.map_output_by_node: Dict[str, float] = {}
        self.slowstart_event = sim.event()
        self.all_maps_done = sim.event()
        self.local_maps = 0
        self.placed_maps = 0
        self.failed_attempts = 0
        self._slowstart_at = max(1, round(slowstart * spec.map_tasks))
        # -- fault bookkeeping (all dormant without an injector) --------
        #: node -> input splits whose map completed there (output on its
        #: local disk; lost wholesale if the node goes down).
        self.completed_maps: Dict[str, List] = {}
        #: dead node -> [(new_node, out_bytes)] of re-executed maps.
        self.recovered_from: Dict[str, List] = {}
        #: Lost map outputs whose re-execution has not finished yet.
        self.pending_recoveries = 0
        #: Total completed maps invalidated by node loss (reporting).
        self.lost_map_count = 0
        self.map_factor = 1.0
        self._recovery_event = None

    @property
    def locality_fraction(self) -> float:
        if self.placed_maps == 0:
            return 1.0   # no placement-sensitive work (e.g. pi)
        return self.local_maps / self.placed_maps

    def record_map_output(self, node: str, nbytes: float) -> None:
        self.map_output_by_node[node] = (
            self.map_output_by_node.get(node, 0.0) + nbytes)

    def map_finished(self, sim: Simulation) -> None:
        self.maps_done += 1
        if (self.maps_done >= self._slowstart_at
                and not self.slowstart_event.triggered):
            self.slowstart_event.succeed()

    # -- node-loss recovery (only reached with a fault injector) ---------

    def completed_map(self, node: str, hdfs_file) -> None:
        """Remember which split produced output on ``node``'s disk."""
        self.completed_maps.setdefault(node, []).append(hdfs_file)

    def lose_node(self, node: str):
        """Invalidate every completed map output stored on ``node``.

        Called synchronously at the crash instant so no reducer
        snapshots a ledger that still trusts the dead node.  Returns
        ``(lost_splits, counts)``: the input splits to re-execute, and
        whether their completions should re-advance ``maps_done``
        (False once the map phase had already closed — the barrier
        event has fired and must not regress).
        """
        lost = self.completed_maps.pop(node, [])
        self.map_output_by_node.pop(node, None)
        counts = not self.all_maps_done.triggered
        if lost:
            # Stale recovery homes for an earlier incarnation of this
            # node are irrelevant now — it has no output either way.
            self.recovered_from.pop(node, None)
            self.lost_map_count += len(lost)
            self.pending_recoveries += len(lost)
            if counts:
                self.maps_done -= len(lost)
        return lost, counts

    def recovery_completed(self, sim: Simulation, old_node: str,
                           new_node: str, out_bytes: float,
                           counts: bool) -> None:
        """A lost map re-ran on ``new_node``; settle the books."""
        self.recovered_from.setdefault(old_node, []).append(
            (new_node, out_bytes))
        self.pending_recoveries -= 1
        if counts:
            self.map_finished(sim)
        self._fire_recovery_event()

    def _arm_recovery_event(self, sim: Simulation):
        if self._recovery_event is None or self._recovery_event.triggered:
            self._recovery_event = sim.event()
        return self._recovery_event

    def _fire_recovery_event(self) -> None:
        event = self._recovery_event
        if event is not None and not event.triggered:
            event.succeed()

    def wait_maps_complete(self, sim: Simulation):
        """Process generator: block until every map output exists again."""
        while self.maps_done < self.spec.map_tasks:
            yield self._arm_recovery_event(sim)

    def wait_recoveries(self, sim: Simulation):
        """Process generator: block while any re-execution is pending."""
        while self.pending_recoveries > 0:
            yield self._arm_recovery_event(sim)


def run_job(platform: str, slaves: int, spec: JobSpec,
            config: Optional[HadoopConfig] = None, seed: int = 20160901,
            edison_spec: Optional[ServerSpec] = None,
            master_spec: Optional[ServerSpec] = None,
            deadline_s: float = 100_000.0, trace=None,
            resilience: Optional[ResilienceConfig] = None) -> JobReport:
    """Convenience wrapper: build a fresh cluster and run one job."""
    runner = JobRunner(platform, slaves, config=config, seed=seed,
                       edison_spec=edison_spec, master_spec=master_spec,
                       trace=trace, resilience=resilience)
    return runner.run(spec, deadline_s=deadline_s)
