"""Section 5.3 scalability experiments: Table 8 / Figures 18-19 grids."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..core import paperdata as paper
from ..core.metrics import mean_speedup_across_jobs
from ..hardware import ServerSpec
from .jobs import JOB_FACTORIES, TABLE8_JOBS
from .runtime import JobReport, run_job

#: The cluster-size ladders of Table 8 / Figures 18-19.
EDISON_SIZES = (35, 17, 8, 4)
DELL_SIZES = (2, 1)


@dataclass(frozen=True)
class ScalingGrid:
    """All job runs for one platform ladder."""

    platform: str
    reports: Mapping[str, Mapping[int, JobReport]]   # job -> size -> report

    def times(self, job: str) -> Dict[int, float]:
        return {size: report.seconds
                for size, report in self.reports[job].items()}

    def energies(self, job: str) -> Dict[int, float]:
        return {size: report.joules
                for size, report in self.reports[job].items()}

    def mean_speedup(self) -> float:
        """Mean speed-up per cluster doubling across jobs (S5.3)."""
        return mean_speedup_across_jobs(
            {job: self.times(job) for job in self.reports})


def run_scaling_grid(platform: str,
                     sizes: Optional[Sequence[int]] = None,
                     jobs: Iterable[str] = TABLE8_JOBS,
                     seed: int = 20160901,
                     edison_spec: Optional[ServerSpec] = None) -> ScalingGrid:
    """Run every (job, cluster size) cell for one platform."""
    if sizes is None:
        sizes = EDISON_SIZES if platform == "edison" else DELL_SIZES
    reports: Dict[str, Dict[int, JobReport]] = {}
    for job in jobs:
        reports[job] = {}
        for size in sizes:
            spec, config = JOB_FACTORIES[job](platform, size)
            reports[job][size] = run_job(platform, size, spec, config=config,
                                         seed=seed, edison_spec=edison_spec)
    return ScalingGrid(platform=platform, reports=reports)


def paper_times(job: str, platform: str) -> Dict[int, float]:
    """Table 8's published run times for one job/platform."""
    return {size: result.seconds
            for size, result in paper.T8[job][platform].items()}


def paper_energies(job: str, platform: str) -> Dict[int, float]:
    """Table 8's published energies for one job/platform."""
    return {size: result.joules
            for size, result in paper.T8[job][platform].items()}


def paper_mean_speedup(platform: str) -> float:
    """S5.3's published mean speed-up recomputed from Table 8."""
    return mean_speedup_across_jobs(
        {job: paper_times(job, platform) for job in TABLE8_JOBS})


def efficiency_table(edison: ScalingGrid,
                     dell: ScalingGrid) -> Dict[str, Tuple[float, float]]:
    """Per-job (simulated, paper) full-scale energy-efficiency gains."""
    gains = {}
    for job in TABLE8_JOBS:
        simulated = dell.reports[job][2].joules / edison.reports[job][35].joules
        published = (paper.T8[job]["dell"][2].joules
                     / paper.T8[job]["edison"][35].joules)
        gains[job] = (simulated, published)
    return gains
