"""YARN resource management: NodeManagers, container allocation, locality.

YARN 2.5's DefaultResourceCalculator schedules on *memory only* — which
is how the paper runs 4 map containers on an Edison's 2 vcores ("two or
even more containers per vcore sometimes better utilizes CPU").  The
scheduler assigns requests on NodeManager heartbeats, preferring nodes
that hold a replica of the task's input (delay scheduling), and records
the achieved data-locality fraction the paper reports (~95 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence

from ..hardware.server import Server
from ..sim import Simulation, heartbeat_jitter
from .config import HadoopConfig

if TYPE_CHECKING:   # the scheduler never touches the global random module:
    import random   # all draws come through a seeded repro.sim.rng stream


@dataclass
class ContainerGrant:
    """A granted container: where it runs and what it reserved."""

    node: str
    mem_mb: int
    local: bool


class NodeManager:
    """Per-node bookkeeping of schedulable memory."""

    def __init__(self, server: Server, task_mem_mb: int):
        if task_mem_mb < 1:
            raise ValueError("task_mem_mb must be >= 1")
        self.server = server
        self.total_mem_mb = task_mem_mb
        self.free_mem_mb = task_mem_mb
        #: Blacklisted after its heartbeats stopped (node crash).
        self.down = False

    def can_fit(self, mem_mb: int) -> bool:
        return not self.down and self.free_mem_mb >= mem_mb

    def mark_down(self) -> None:
        """Blacklist the node and reclaim every container on it.

        The ResourceManager expires a NodeManager whose heartbeats stop
        and returns its containers to the pool; the memory mirror is
        freed in one sweep, so releases for grants that died with the
        node must be skipped (see :meth:`YarnScheduler.release`).
        """
        if self.down:
            return
        self.down = True
        occupied = self.total_mem_mb - self.free_mem_mb
        if occupied > 0:
            self.server.memory.free(occupied * 1e6)
        self.free_mem_mb = self.total_mem_mb

    def mark_up(self) -> None:
        """Return a rebooted node to service with a fresh container pool."""
        self.down = False

    def reserve(self, mem_mb: int) -> None:
        if not self.can_fit(mem_mb):
            raise ValueError(
                f"{self.server.name}: {mem_mb} MB > {self.free_mem_mb} free")
        self.free_mem_mb -= mem_mb
        # Mirror into the hardware memory model for the Fig 12-17 curves.
        self.server.memory.reserve(mem_mb * 1e6)

    def release(self, mem_mb: int) -> None:
        if mem_mb < 1:
            raise ValueError("mem_mb must be >= 1")
        if self.free_mem_mb + mem_mb > self.total_mem_mb:
            # An over-release means a container was returned twice (or
            # with the wrong size); clamping here would silently mask
            # the double-release and corrupt the memory mirror below.
            raise ValueError(
                f"{self.server.name}: releasing {mem_mb} MB would leave "
                f"{self.free_mem_mb + mem_mb} MB free of "
                f"{self.total_mem_mb} MB total — double release?")
        self.free_mem_mb += mem_mb
        self.server.memory.free(mem_mb * 1e6)


class YarnScheduler:
    """FIFO capacity scheduler with heartbeat-paced, locality-aware grants."""

    #: How many heartbeats a request waits for a preferred node before
    #: accepting any node (YARN's delay-scheduling behaviour).
    LOCALITY_WAIT_HEARTBEATS = 5

    #: ResourceManager CPU per scheduling round (MI): matching a request
    #: against node reports and updating cluster state.  Negligible on a
    #: Xeon master; ruinous on an Edison master with hundreds of
    #: outstanding requests — the bottleneck the paper hit when it tried
    #: an Edison namenode/RM (Section 5.2).
    RM_MI_PER_ROUND = 20.0
    #: Working set of namenode + ResourceManager heaps (bytes); a master
    #: whose RAM cannot hold it pages constantly.
    RM_WORKING_SET_BYTES = 2e9
    #: Path-length multiplier while the master is thrashing.
    RM_SWAP_PENALTY = 25.0
    #: Master-side CPU per task commit (MI): namenode rename, job
    #: history write, AM bookkeeping.  ~0.03 ms on a Xeon master;
    #: seconds on a paging Edison master — task commits serialise
    #: through the master and the job crawls.
    COMMIT_MI = 300.0

    def __init__(self, sim: Simulation, slaves: Sequence[Server],
                 config: HadoopConfig, rng: random.Random,
                 master: Optional[Server] = None):
        if not slaves:
            raise ValueError("the scheduler needs at least one NodeManager")
        self.sim = sim
        self.config = config
        self.rng = rng
        self.master = master
        self.nodes: Dict[str, NodeManager] = {
            s.name: NodeManager(s, config.node_task_mem_mb) for s in slaves}
        self.local_grants = 0
        self.total_grants = 0

    @property
    def total_vcores(self) -> int:
        return self.config.node_vcores * len(self.nodes)

    @property
    def locality_fraction(self) -> float:
        if self.total_grants == 0:
            return 0.0
        return self.local_grants / self.total_grants

    def _try_grant(self, mem_mb: int,
                   preferred: Sequence[str],
                   allow_any: bool,
                   avoid: Sequence[str] = ()) -> Optional[ContainerGrant]:
        candidates = [n for n in preferred
                      if n in self.nodes and self.nodes[n].can_fit(mem_mb)]
        local = bool(candidates)
        if not candidates and allow_any:
            candidates = [name for name, nm in self.nodes.items()
                          if nm.can_fit(mem_mb)]
        if avoid:
            candidates = [n for n in candidates if n not in avoid]
        if not candidates:
            return None
        # Least-loaded placement among the candidates.
        name = max(candidates, key=lambda n: self.nodes[n].free_mem_mb)
        self.nodes[name].reserve(mem_mb)
        if preferred:
            # The data-locality statistic covers placement-sensitive
            # requests only (map tasks); reducers have no preference.
            self.total_grants += 1
            if local:
                self.local_grants += 1
        return ContainerGrant(node=name, mem_mb=mem_mb, local=local)

    def allocate(self, mem_mb: int,
                 preferred: Sequence[str] = (),
                 max_heartbeats: Optional[int] = None,
                 avoid: Sequence[str] = ()):
        """Process generator: wait for a container, heartbeat by heartbeat.

        Returns a :class:`ContainerGrant`.  The first heartbeats insist
        on a preferred (data-local) node; afterwards any node will do.
        With ``max_heartbeats`` set, the request gives up after that
        many unsatisfied rounds and returns ``None`` — how speculative
        attempts avoid camping on a full cluster's queue.  Nodes in
        ``avoid`` are never granted (a speculative twin must not land
        beside the straggler it is insuring against).
        """
        if mem_mb < 1:
            raise ValueError("mem_mb must be >= 1")
        requested_at = self.sim.now
        heartbeats = 0
        while True:
            if max_heartbeats is not None and heartbeats >= max_heartbeats:
                return None
            # Requests ride the next NM heartbeat (jittered).
            yield heartbeat_jitter(self.rng, self.config.heartbeat_s)
            if self.master is not None:
                # The RM does real work per scheduling round; a weak
                # master serialises every waiting request through its
                # tiny CPU, and one without room for the namenode+RM
                # working set pays a paging penalty on top ("a single
                # Edison node cannot fulfill resource-intensive tasks").
                yield from self.master.cpu.execute(
                    self.RM_MI_PER_ROUND * self._master_penalty())
            allow_any = (not preferred
                         or heartbeats >= self.LOCALITY_WAIT_HEARTBEATS)
            grant = self._try_grant(mem_mb, preferred, allow_any, avoid)
            if grant is not None:
                if self.sim.trace is not None:
                    self.sim.trace.complete(
                        "container.wait", requested_at, category="yarn",
                        node=grant.node, mem_mb=grant.mem_mb,
                        local=grant.local, heartbeats=heartbeats)
                return grant
            heartbeats += 1

    def _master_penalty(self) -> float:
        if (self.master is not None
                and self.master.spec.memory.capacity_bytes
                < self.RM_WORKING_SET_BYTES):
            return self.RM_SWAP_PENALTY
        return 1.0

    def master_commit(self):
        """Process generator: the master-side share of one task commit."""
        if self.master is None:
            return
        yield from self.master.cpu.execute(
            self.COMMIT_MI * self._master_penalty())

    def release(self, grant: ContainerGrant) -> None:
        """Return a container's memory to its node.

        Releasing against a blacklisted node is a no-op: the expiry
        sweep (:meth:`mark_node_down`) already reclaimed everything, so
        honouring the release would double-free the memory mirror.
        """
        nm = self.nodes[grant.node]
        if nm.down:
            return
        nm.release(grant.mem_mb)
        if self.sim.trace is not None:
            self.sim.trace.instant("container.release", category="yarn",
                                   node=grant.node, mem_mb=grant.mem_mb)

    # -- failure detection (NodeManager heartbeat expiry) ----------------

    def mark_node_down(self, name: str) -> None:
        """Blacklist ``name`` and reclaim its containers."""
        nm = self.nodes.get(name)
        if nm is None or nm.down:
            return
        nm.mark_down()
        if self.sim.trace is not None:
            self.sim.trace.instant("node.blacklist", category="yarn",
                                   node=name)

    def mark_node_up(self, name: str) -> None:
        """Return a rebooted ``name`` to the schedulable pool."""
        nm = self.nodes.get(name)
        if nm is None or not nm.down:
            return
        nm.mark_up()
        if self.sim.trace is not None:
            self.sim.trace.instant("node.rejoin", category="yarn",
                                   node=name)
