"""Section 4 micro-benchmarks: CPU, memory, storage and network tests."""

from .dhrystone import DhrystoneResult, run_dhrystone
from .network import (
    PROTOCOL_EFFICIENCY, IperfResult, PingResult, run_iperf, run_ping,
)
from .storage import DdResult, IopingResult, run_dd, run_ioping
from .sysbench import (
    CPU_TEST_EVENTS, SysbenchCpuResult, SysbenchMemoryResult,
    run_sysbench_cpu, run_sysbench_memory,
)

__all__ = [
    "CPU_TEST_EVENTS", "DdResult", "DhrystoneResult", "IopingResult",
    "IperfResult", "PROTOCOL_EFFICIENCY", "PingResult", "SysbenchCpuResult",
    "SysbenchMemoryResult", "run_dd", "run_dhrystone", "run_ioping",
    "run_iperf", "run_ping", "run_sysbench_cpu", "run_sysbench_memory",
]
