"""Dhrystone 2.1 benchmark model (Section 4.1).

Dhrystone reports DMIPS = (runs / elapsed) / 1757.  We replicate the
procedure rather than the constant: a fixed instruction budget is
executed on one vcore of the simulated server and DMIPS is derived from
the measured elapsed simulation time.  On the calibrated profiles this
lands exactly on the paper's 632.3 (Edison) and 11383 (Dell) because
those measurements *are* the profiles' per-thread service rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.server import Server
from ..sim import Simulation

#: Dhrystone instruction cost used to convert runs to MI: the classic
#: benchmark defines 1 DMIPS = 1757 Dhrystones/s, and one Dhrystone pass
#: is ~ (1/1757) million instructions at 1 MIPS by definition.
DHRYSTONES_PER_MIPS = 1757.0


@dataclass(frozen=True)
class DhrystoneResult:
    """Outcome of one Dhrystone run."""

    runs: float
    elapsed_s: float

    @property
    def dmips(self) -> float:
        return (self.runs / self.elapsed_s) / DHRYSTONES_PER_MIPS


def run_dhrystone(sim: Simulation, server: Server,
                  runs: float = 100e6) -> DhrystoneResult:
    """Run Dhrystone on one thread of ``server`` and report DMIPS.

    Drives the simulation until the benchmark completes; intended for a
    dedicated simulation instance (as on a real machine, nothing else
    should run during the measurement).
    """
    if runs <= 0:
        raise ValueError("runs must be > 0")
    work_mi = runs / DHRYSTONES_PER_MIPS
    start = sim.now

    def bench():
        yield from server.cpu.execute(work_mi)

    done = sim.process(bench())
    sim.run(until=done)
    return DhrystoneResult(runs=runs, elapsed_s=sim.now - start)
