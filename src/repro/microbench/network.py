"""iperf3 / ping network benchmark models (Section 4.4).

iperf3 moves a bulk payload between two servers and reports goodput;
the gap between line rate and goodput is protocol overhead (headers,
ACK clocking), captured as a per-protocol efficiency calibrated from
the paper's measurements: 942/1000 Mb/s for TCP and 948/1000 for UDP on
the gigabit path, 93.9/100 and 94.8/100 on the Edison path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net import Topology
from ..sim import Simulation

#: Goodput fraction of line rate, from Section 4.4's measurements.
PROTOCOL_EFFICIENCY = {"tcp": 0.9395, "udp": 0.948}


@dataclass(frozen=True)
class IperfResult:
    """Goodput reported by one iperf3 run."""

    protocol: str
    nbytes: float
    elapsed_s: float

    @property
    def goodput_bps(self) -> float:
        return 8.0 * self.nbytes / self.elapsed_s


def run_iperf(sim: Simulation, topology: Topology, src: str, dst: str,
              nbytes: float = 1e9, protocol: str = "tcp") -> IperfResult:
    """Transfer ``nbytes`` of application payload from src to dst."""
    if protocol not in PROTOCOL_EFFICIENCY:
        raise ValueError(f"unknown protocol {protocol!r}")
    if nbytes <= 0:
        raise ValueError("nbytes must be > 0")
    # Payload plus protocol overhead rides the wire.
    wire_bytes = nbytes / PROTOCOL_EFFICIENCY[protocol]
    start = sim.now

    def bench():
        yield from topology.transfer(src, dst, wire_bytes)

    sim.run(until=sim.process(bench()))
    return IperfResult(protocol=protocol, nbytes=nbytes,
                       elapsed_s=sim.now - start)


@dataclass(frozen=True)
class PingResult:
    """Round-trip time reported by ping."""

    src: str
    dst: str
    rtt_s: float


def run_ping(sim: Simulation, topology: Topology, src: str,
             dst: str) -> PingResult:
    """Measure the round-trip time between two servers."""
    start = sim.now

    def bench():
        yield sim.timeout(topology.rtt(src, dst))

    sim.run(until=sim.process(bench()))
    return PingResult(src=src, dst=dst, rtt_s=sim.now - start)
