"""dd / ioping storage benchmark models (Section 4.3, Table 5).

``dd`` streams a large file through the device — with ``oflag=dsync``
every block hits the medium (direct), without it the page cache absorbs
writes (buffered).  ``ioping`` issues small requests one at a time and
reports mean access latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.server import Server
from ..sim import Simulation


@dataclass(frozen=True)
class DdResult:
    """Throughput reported by one dd run."""

    op: str
    buffered: bool
    nbytes: float
    elapsed_s: float

    @property
    def rate_bps(self) -> float:
        return self.nbytes / self.elapsed_s


def run_dd(sim: Simulation, server: Server, op: str, nbytes: float = 100e6,
           block_bytes: float = 1e6, buffered: bool = False) -> DdResult:
    """Stream ``nbytes`` in ``block_bytes`` chunks through the device.

    Direct I/O pays the access latency once per block (each block is
    committed before the next is issued); buffered I/O pays it once.
    """
    if nbytes <= 0 or block_bytes <= 0:
        raise ValueError("nbytes and block_bytes must be > 0")
    blocks = max(1, round(nbytes / block_bytes))
    start = sim.now

    def bench():
        if buffered:
            io = server.storage.read if op == "read" else server.storage.write
            yield from io(nbytes, buffered=True)
        else:
            for _ in range(blocks):
                io = (server.storage.read if op == "read"
                      else server.storage.write)
                yield from io(nbytes / blocks, buffered=False)

    sim.run(until=sim.process(bench()))
    return DdResult(op=op, buffered=buffered, nbytes=nbytes,
                    elapsed_s=sim.now - start)


@dataclass(frozen=True)
class IopingResult:
    """Mean access latency reported by ioping."""

    op: str
    requests: int
    mean_latency_s: float


def run_ioping(sim: Simulation, server: Server, op: str,
               requests: int = 20, request_bytes: float = 4096) -> IopingResult:
    """Issue small serialised requests and report the mean latency."""
    if requests < 1:
        raise ValueError("requests must be >= 1")
    latencies = []

    def bench():
        for _ in range(requests):
            start = sim.now
            io = server.storage.read if op == "read" else server.storage.write
            yield from io(request_bytes, buffered=False)
            latencies.append(sim.now - start)

    sim.run(until=sim.process(bench()))
    return IopingResult(op=op, requests=requests,
                        mean_latency_s=sum(latencies) / len(latencies))
