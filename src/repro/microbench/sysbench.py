"""Sysbench 0.5 models: CPU prime test and memory-transfer test.

``sysbench cpu`` computes all primes below a limit, split into a fixed
number of events executed by a thread pool; the paper's Figures 2 and 3
plot total time and mean per-event response time versus thread count.
``sysbench memory`` streams blocks through the memory system and reports
the achieved transfer rate for a (block size, thread count) grid
(Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core import paperdata as paper
from ..hardware.server import Server
from ..sim import Simulation

#: Sysbench's default number of events for the CPU test.
CPU_TEST_EVENTS = 10000

#: Calibration (documented in DESIGN.md §5): Figure 2 shows one Edison
#: thread finishing the primes-below-20000 test in ~620 s.  At the
#: Edison's measured 632.3 DMIPS that is 620 * 632.3 ~= 392,000 MI of
#: total work, i.e. ~39.2 MI per sysbench event.  The same constant
#: reproduces Figure 3's ~35 s single-thread Dell time via the measured
#: 11383 DMIPS — the paper's "15-18x faster" observation.
PRIME_TEST_TOTAL_MI = 392_000.0


@dataclass(frozen=True)
class SysbenchCpuResult:
    """One (platform, threads) cell of Figures 2/3."""

    threads: int
    total_time_s: float
    response_times_s: List[float]

    @property
    def avg_response_time_s(self) -> float:
        return sum(self.response_times_s) / len(self.response_times_s)


def run_sysbench_cpu(sim: Simulation, server: Server, threads: int,
                     prime_limit: int = paper.S41_SYSBENCH_PRIME_LIMIT,
                     events: int = CPU_TEST_EVENTS) -> SysbenchCpuResult:
    """Run the sysbench CPU test with ``threads`` worker threads.

    ``prime_limit`` scales total work relative to the paper's 20000
    (cost of trial division grows ~ n^1.5 in the sieve range used).
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    if prime_limit < 2:
        raise ValueError("prime_limit must be >= 2")
    scale = (prime_limit / paper.S41_SYSBENCH_PRIME_LIMIT) ** 1.5
    event_mi = PRIME_TEST_TOTAL_MI * scale / events
    response_times: List[float] = []
    remaining = [events]

    def worker():
        while remaining[0] > 0:
            remaining[0] -= 1
            start = sim.now
            yield from server.cpu.execute(event_mi)
            response_times.append(sim.now - start)

    start = sim.now
    workers = [sim.process(worker()) for _ in range(threads)]
    sim.run(until=sim.all_of(workers))
    return SysbenchCpuResult(threads=threads, total_time_s=sim.now - start,
                             response_times_s=response_times)


@dataclass(frozen=True)
class SysbenchMemoryResult:
    """One (block size, threads) cell of the Section 4.2 sweep."""

    block_bytes: int
    threads: int
    transferred_bytes: float
    elapsed_s: float

    @property
    def rate_bps(self) -> float:
        return self.transferred_bytes / self.elapsed_s


def run_sysbench_memory(sim: Simulation, server: Server, block_bytes: int,
                        threads: int,
                        total_bytes: float = 1e9) -> SysbenchMemoryResult:
    """Stream ``total_bytes`` through memory and report the rate."""
    if total_bytes <= 0:
        raise ValueError("total_bytes must be > 0")
    rate = server.memory.spec.bandwidth(block_bytes, threads)
    start = sim.now

    def bench():
        yield sim.timeout(total_bytes / rate)

    sim.run(until=sim.process(bench()))
    return SysbenchMemoryResult(block_bytes=block_bytes, threads=threads,
                                transferred_bytes=total_bytes,
                                elapsed_s=sim.now - start)
