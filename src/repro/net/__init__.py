"""Network substrate: fluid flows, topology, and TCP establishment."""

from .flows import Flow, FlowNetwork, Segment
from .tcp import (
    SYN_RETRY_DELAYS, ConnectionStats, ConnectTimeout, TcpListener, exchange,
)
from .topology import NetworkUnreachable, ROOM_RACKS, TRUNK_BPS, Topology

__all__ = [
    "ConnectTimeout", "ConnectionStats", "Flow", "FlowNetwork",
    "NetworkUnreachable", "ROOM_RACKS", "SYN_RETRY_DELAYS", "Segment",
    "TRUNK_BPS", "TcpListener", "Topology", "exchange",
]
