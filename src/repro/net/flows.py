"""Fluid-flow network model with max-min fair bandwidth sharing.

Long-lived transfers (HDFS writes, MapReduce shuffle, iperf streams) are
modelled as *fluid flows*: each flow traverses a set of capacity-limited
segments (source NIC transmit, destination NIC receive, optionally an
inter-rack trunk) and receives its max-min fair rate, recomputed by
progressive filling every time a flow starts or finishes.

The implementation keeps per-flow remaining bytes; when the rate
allocation changes, remaining work is rolled forward and the next
completion re-scheduled using a versioned wake-up (the kernel has no
timeout cancellation, so stale wake-ups are recognised and ignored).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..hardware.nic import Nic
from ..sim import Event, Simulation

#: Flows are considered delivered once less than this many bytes remain.
#: Sub-millibyte residues arise from float arithmetic in rate updates;
#: without the threshold a residue can imply a wake-up delay below the
#: clock's float resolution, stalling the simulation at one timestamp.
COMPLETION_THRESHOLD_BYTES = 1e-3


@dataclass
class Segment:
    """A capacity-limited network segment (a NIC direction or a trunk)."""

    name: str
    capacity_Bps: float
    #: NIC whose accounting should track traffic through this segment.
    nic: Optional[Nic] = None
    nic_direction: str = "tx"   # "tx" or "rx"

    def __post_init__(self):
        if self.capacity_Bps <= 0:
            raise ValueError("segment capacity must be > 0")
        #: Store-and-forward bookkeeping (see Topology.message): the
        #: time until which the wire is serialising earlier messages.
        #: Equivalent to a capacity-1 FIFO queue — each arrival starts
        #: at max(now, busy_until) — without an Event per hop; fluid
        #: flows ignore it.
        self.busy_until = 0.0

    def __hash__(self):
        return id(self)


@dataclass
class Flow:
    """One in-flight bulk transfer."""

    segments: Tuple[Segment, ...]
    remaining_bytes: float
    done: Event
    rate_Bps: float = 0.0
    total_bytes: float = field(default=0.0)

    def __hash__(self):
        return id(self)


class FlowNetwork:
    """Tracks active flows and allocates max-min fair rates."""

    def __init__(self, sim: Simulation):
        self.sim = sim
        self.flows: List[Flow] = []
        self._last_update = sim.now
        self._version = 0
        self._wake = None

    # -- public API -----------------------------------------------------

    def start_flow(self, segments: List[Segment], nbytes: float) -> Event:
        """Begin a transfer of ``nbytes`` across ``segments``.

        Returns an event that fires when the last byte arrives.  Zero-byte
        transfers complete immediately.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        done = self.sim.event()
        if nbytes == 0:
            done.succeed(0.0)
            return done
        if not segments:
            raise ValueError("a flow needs at least one segment")
        flow = Flow(tuple(segments), float(nbytes), done,
                    total_bytes=float(nbytes))
        self._advance_clock()
        self.flows.append(flow)
        self._reallocate()
        return done

    def transfer(self, segments: List[Segment], nbytes: float):
        """Process-generator convenience wrapper around :meth:`start_flow`."""
        yield self.start_flow(segments, nbytes)

    @property
    def active_count(self) -> int:
        return len(self.flows)

    def rescale(self) -> None:
        """Recompute fair shares after a segment capacity change.

        Fault injection mutates ``Segment.capacity_Bps`` (NIC
        degradation and repair); calling this settles bytes moved at the
        old rates, then re-runs progressive filling so every in-flight
        flow continues at the new fair share.  A no-op when idle.
        """
        self._advance_clock()
        self._reallocate()

    # -- internals --------------------------------------------------------

    def _advance_clock(self) -> None:
        """Drain bytes transferred since the last rate change."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0:
            return
        finished = []
        for flow in self.flows:
            flow.remaining_bytes -= flow.rate_Bps * dt
            self._account(flow, flow.rate_Bps * dt)
            if flow.remaining_bytes <= COMPLETION_THRESHOLD_BYTES:
                finished.append(flow)
        for flow in finished:
            self.flows.remove(flow)
            flow.done.succeed(self.sim.now)

    @staticmethod
    def _account(flow: Flow, nbytes: float) -> None:
        for segment in flow.segments:
            if segment.nic is None:
                continue
            if segment.nic_direction == "tx":
                segment.nic.bytes_sent += nbytes
            else:
                segment.nic.bytes_received += nbytes

    def _reallocate(self) -> None:
        """Progressive filling: assign max-min fair rates, reschedule."""
        # Clear NIC instantaneous-rate accounting.
        for flow in self.flows:
            for segment in flow.segments:
                if segment.nic is not None:
                    segment.nic.active_rate_Bps = 0.0
        if not self.flows:
            self._version += 1
            return
        unfrozen = set(self.flows)
        rates: Dict[Flow, float] = {flow: 0.0 for flow in self.flows}
        seg_flows: Dict[Segment, List[Flow]] = {}
        for flow in self.flows:
            for segment in flow.segments:
                seg_flows.setdefault(segment, []).append(flow)
        seg_capacity = {seg: seg.capacity_Bps for seg in seg_flows}
        while unfrozen:
            # Tightest segment determines the next fair-share increment.
            bottleneck, fair = None, float("inf")
            for segment, flows in seg_flows.items():
                active = [f for f in flows if f in unfrozen]
                if not active:
                    continue
                share = seg_capacity[segment] / len(active)
                if share < fair:
                    bottleneck, fair = segment, share
            if bottleneck is None:
                break
            for flow in [f for f in seg_flows[bottleneck] if f in unfrozen]:
                rates[flow] += fair
                unfrozen.discard(flow)
                for segment in flow.segments:
                    seg_capacity[segment] -= fair
        for flow, rate in rates.items():
            flow.rate_Bps = rate
            for segment in flow.segments:
                if segment.nic is not None:
                    segment.nic.active_rate_Bps += rate
        self._schedule_next_completion()

    def _schedule_next_completion(self) -> None:
        self._version += 1
        version = self._version
        if self._wake is not None:
            # The wake-up belonging to the previous allocation is now
            # stale; cancelling it keeps shuffle-heavy runs from
            # accumulating one dead calendar entry per rate change.
            self._wake.cancel()
            self._wake = None
        horizon = min(
            ((f.remaining_bytes - COMPLETION_THRESHOLD_BYTES / 2)
             / f.rate_Bps
             for f in self.flows if f.rate_Bps > 0),
            default=None)
        if horizon is None:
            return
        wake = self.sim.timeout(max(horizon, 0.0))
        wake.add_callback(lambda _ev: self._on_wake(version))
        self._wake = wake

    def _on_wake(self, version: int) -> None:
        if version != self._version:
            return  # a newer allocation superseded this wake-up
        self._advance_clock()
        self._reallocate()
