"""TCP connection establishment with SYN-retransmission backoff.

Section 5.1.2 of the paper traces the 1 s / 3 s / 7 s spikes in the Dell
cluster's response-delay histogram (Figure 11) to dropped SYN packets:
when a web server's accept queue overflows, the client's kernel
retransmits the SYN after 1 s, then 2 s, then 4 s — cumulative delays of
exactly 1, 3 and 7 seconds.  The Edison cluster, having 12x more web
servers, rarely overflows any single accept queue.

This module models precisely that mechanism: a listening socket with a
bounded number of *established-connection slots* (file descriptors /
worker threads / ephemeral ports — the resources the paper tuned with
``tcp_tw_reuse`` and ulimit) and a bounded SYN backlog.  Connection
attempts that find the backlog full are silently dropped and retried on
the standard exponential schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import Resource, Simulation
from .topology import Topology

#: Kernel SYN retransmission waits (seconds): retries at +1, +2, +4, ...
SYN_RETRY_DELAYS = (1.0, 2.0, 4.0, 8.0)


class ConnectTimeout(Exception):
    """All SYN retransmissions exhausted without an accept."""


@dataclass
class ConnectionStats:
    """Outcome bookkeeping for one establishment attempt."""

    syn_retries: int = 0
    connect_delay: float = 0.0


class TcpListener:
    """A server-side listening socket.

    Parameters
    ----------
    max_connections:
        Concurrently-established connections the server can hold
        (bounded by file descriptors, worker threads and ephemeral
        ports — the knobs Section 5.1.1 says were raised).
    syn_backlog:
        Half-open connections the kernel queues before dropping SYNs.
    """

    def __init__(self, sim: Simulation, name: str,
                 max_connections: int, syn_backlog: int = 128):
        if max_connections < 1 or syn_backlog < 1:
            raise ValueError("max_connections and syn_backlog must be >= 1")
        self.sim = sim
        self.name = name
        self.slots = Resource(sim, capacity=max_connections,
                              name=f"{name}.connslots")
        self.syn_backlog = syn_backlog
        self.syn_drops = 0
        self.accepted = 0

    @property
    def established(self) -> int:
        return self.slots.count

    @property
    def backlog_full(self) -> bool:
        """Would a fresh SYN be dropped right now?"""
        return self.slots.queue_length >= self.syn_backlog

    def connect(self, rtt: float, max_retries: Optional[int] = None,
                ctx=None):
        """Process generator: establish a connection to this listener.

        Returns ``(Request, ConnectionStats)``; the request must be
        released (``listener.close(request)``) when the connection ends.
        Raises :class:`ConnectTimeout` after the retry budget.

        ``ctx`` is an optional :class:`~repro.trace.SpanContext`: when
        given and tracing is on, the establishment is emitted as a
        ``connect`` child span (category ``"net"``), so handshakes show
        up in the request's causal tree.
        """
        stats = ConnectionStats()
        start = self.sim.now
        if max_retries is None:
            retries = SYN_RETRY_DELAYS
        elif max_retries <= len(SYN_RETRY_DELAYS):
            retries = SYN_RETRY_DELAYS[:max_retries]
        else:
            # Honour budgets past the kernel table by repeating the
            # final backoff step (Linux clamps at TCP_RTO_MAX the same
            # way) instead of silently capping the caller's budget.
            retries = SYN_RETRY_DELAYS + (SYN_RETRY_DELAYS[-1],) * (
                max_retries - len(SYN_RETRY_DELAYS))
        attempt = 0
        while True:
            if not self.backlog_full:
                request = self.slots.request()
                yield request
                yield rtt  # SYN -> SYN/ACK -> ACK
                self.accepted += 1
                stats.connect_delay = self.sim.now - start
                trace = self.sim.trace
                if trace is not None and ctx is not None:
                    trace.complete("connect", start, category="net",
                                   node=self.name,
                                   ctx=trace.child_context(ctx),
                                   syn_retries=stats.syn_retries)
                return request, stats
            self.syn_drops += 1
            if attempt >= len(retries):
                stats.connect_delay = self.sim.now - start
                trace = self.sim.trace
                if trace is not None and ctx is not None:
                    trace.complete("connect", start, category="net",
                                   node=self.name,
                                   ctx=trace.child_context(ctx),
                                   syn_retries=attempt,
                                   aborted="connect-timeout")
                raise ConnectTimeout(
                    f"{self.name}: SYN dropped {attempt + 1} times")
            yield retries[attempt]
            attempt += 1
            stats.syn_retries = attempt

    def close(self, request) -> None:
        """Release the connection slot held by ``request``."""
        self.slots.release(request)


def exchange(sim: Simulation, topology: Topology, client: str, server: str,
             request_bytes: float, reply_bytes: float):
    """Process generator: one request/reply exchange on an open connection.

    The request rides the client->server direction, the reply the
    reverse, both as fair-share fluid flows plus one-way latencies.
    """
    yield from topology.transfer(client, server, request_bytes)
    yield from topology.transfer(server, client, reply_bytes)
