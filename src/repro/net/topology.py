"""Cluster network topology: racks, trunks, RTTs and flow paths.

The physical layout Section 5.1.1 describes:

* the Dell servers and the client machines share one server room and a
  1 Gb/s top-of-rack fabric (RTT 0.24 ms between Dell boxes), and
* the Edison cluster sits in a different room, reached through a single
  1 Gb/s uplink (Dell-Edison RTT 0.8 ms, Edison-Edison RTT 1.3 ms).

The topology object owns one transmit and one receive
:class:`~repro.net.flows.Segment` per server plus a duplex inter-room
trunk, and produces the segment path any bulk flow must traverse.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import paperdata as paper
from ..hardware.server import Server
from ..sim import Simulation
from .flows import FlowNetwork, Segment

#: Capacity of the single uplink between the two rooms (bytes/s).
TRUNK_BPS = 1e9


class Topology:
    """Registry of servers, their NIC segments and the inter-room trunk."""

    def __init__(self, sim: Simulation, trunk_bps: float = TRUNK_BPS):
        self.sim = sim
        self.network = FlowNetwork(sim)
        self._tx: Dict[str, Segment] = {}
        self._rx: Dict[str, Segment] = {}
        self._rack: Dict[str, str] = {}
        self._servers: Dict[str, Server] = {}
        trunk_Bps = trunk_bps / 8.0
        self.trunk_up = Segment("trunk.edison->dell", trunk_Bps)
        self.trunk_down = Segment("trunk.dell->edison", trunk_Bps)
        # (src, dst) memo tables: the web tier calls rtt()/message() per
        # request, and the answers never change once servers are added.
        self._rtt_cache: Dict[tuple, float] = {}
        self._path_cache: Dict[tuple, List[Segment]] = {}
        # Fused (one-way latency, path) plan per (src, dst): message()
        # is called once per request/reply and needs both answers.
        self._msg_cache: Dict[tuple, tuple] = {}

    def add_server(self, server: Server, rack: Optional[str] = None) -> None:
        """Register ``server``; rack defaults to its platform's room."""
        if server.name in self._servers:
            raise ValueError(f"duplicate server name {server.name!r}")
        self._rtt_cache.clear()
        self._path_cache.clear()
        self._msg_cache.clear()
        rack = rack or ("edison-room" if server.platform == "edison"
                        else "dell-room")
        line_Bps = server.nic.spec.bytes_per_second
        self._servers[server.name] = server
        self._rack[server.name] = rack
        self._tx[server.name] = Segment(
            f"{server.name}.tx", line_Bps, nic=server.nic, nic_direction="tx")
        self._rx[server.name] = Segment(
            f"{server.name}.rx", line_Bps, nic=server.nic, nic_direction="rx")

    def server(self, name: str) -> Server:
        return self._servers[name]

    def nic_segments(self, name: str):
        """The (tx, rx) segment pair of one server's NIC.

        Fault injection scales their ``capacity_Bps`` to model link
        degradation; callers must :meth:`FlowNetwork.rescale` afterwards
        so in-flight fluid flows re-converge on the new rates.
        """
        return self._tx[name], self._rx[name]

    def rack_of(self, name: str) -> str:
        return self._rack[name]

    def path(self, src: str, dst: str) -> List[Segment]:
        """Segments a flow from ``src`` to ``dst`` must traverse."""
        key = (src, dst)
        segments = self._path_cache.get(key)
        if segments is None:
            if src == dst:
                segments = []  # loopback: no network segments involved
            else:
                segments = [self._tx[src]]
                if self._rack[src] != self._rack[dst]:
                    segments.append(
                        self.trunk_down if self._rack[dst] == "edison-room"
                        else self.trunk_up)
                segments.append(self._rx[dst])
            self._path_cache[key] = segments
        return segments

    def rtt(self, src: str, dst: str) -> float:
        """Measured round-trip time between two servers (Section 4.4)."""
        key = (src, dst)
        cached = self._rtt_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            value = 0.0
        else:
            pair = tuple(sorted((self._servers[src].platform,
                                 self._servers[dst].platform)))
            value = paper.S44_RTT_S.get((pair[0], pair[1]),
                                        paper.S44_RTT_S[("dell", "edison")])
        self._rtt_cache[key] = value
        return value

    def one_way_latency(self, src: str, dst: str) -> float:
        """Half the measured RTT — per-direction propagation+switching."""
        return self.rtt(src, dst) / 2.0

    def transfer(self, src: str, dst: str, nbytes: float):
        """Process generator: bulk-transfer ``nbytes`` from src to dst.

        Adds the one-way latency up front, then a max-min fair fluid flow
        across the path.  Loopback transfers cost memory-copy time only
        and are approximated as instantaneous at this layer.
        """
        latency = self.one_way_latency(src, dst)
        if latency > 0:
            yield latency
        path = self.path(src, dst)
        if path:
            yield self.network.start_flow(path, nbytes)

    def transfer_event(self, src: str, dst: str, nbytes: float):
        """Event-returning variant (no latency term) for composition."""
        return self.network.start_flow(self.path(src, dst), nbytes)

    def message(self, src: str, dst: str, nbytes: float):
        """Process generator: send one request/reply-sized message.

        The high-rate web tier cannot afford a fluid flow per message,
        so messages use a store-and-forward model instead: the message
        queues FIFO at each segment along the path and holds it for its
        serialisation time.  For multi-segment paths this is mildly
        conservative (real TCP pipelines packets across segments), an
        error bounded by 2x on the wire time of intra-room hops — small
        against the CPU service times that dominate web latency, and
        absorbed by the cost-model calibration.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        sim = self.sim
        plan = self._msg_cache.get((src, dst))
        if plan is None:
            plan = (self.one_way_latency(src, dst),
                    tuple(self.path(src, dst)))
            self._msg_cache[(src, dst)] = plan
        latency, path = plan
        if latency > 0:
            yield latency
        for segment in path:
            # FIFO store-and-forward without a queue object: a message
            # starts serialising when the wire frees up, so its
            # departure is max(now, busy_until) + wire time — the exact
            # recursion a capacity-1 FIFO resource computes, at one
            # calendar event per hop instead of a grant/hold/release
            # event chain per message.
            now = sim._now
            start = segment.busy_until
            if start < now:
                start = now
            done = start + nbytes / segment.capacity_Bps
            segment.busy_until = done
            yield done - now
            nic = segment.nic
            if nic is not None:
                if segment.nic_direction == "tx":
                    nic.bytes_sent += nbytes
                else:
                    nic.bytes_received += nbytes
