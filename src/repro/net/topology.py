"""Cluster network topology: racks, trunks, RTTs and flow paths.

The physical layout Section 5.1.1 describes:

* the Dell servers and the client machines share one server room and a
  1 Gb/s top-of-rack fabric (RTT 0.24 ms between Dell boxes), and
* the Edison cluster sits in a different room, reached through a single
  1 Gb/s uplink (Dell-Edison RTT 0.8 ms, Edison-Edison RTT 1.3 ms).

The topology object owns one transmit and one receive
:class:`~repro.net.flows.Segment` per server plus a duplex inter-room
trunk, and produces the segment path any bulk flow must traverse.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..core import paperdata as paper
from ..hardware.server import Server
from ..sim import Simulation
from .flows import FlowNetwork, Segment

#: Capacity of the single uplink between the two rooms (bytes/s).
TRUNK_BPS = 1e9

#: Rack labels that denote a whole room (the legacy two-room layout).
ROOM_RACKS = ("edison-room", "dell-room")


class NetworkUnreachable(Exception):
    """No route between two endpoints while a cut is severed.

    Raised only by callers that explicitly ask for fail-fast semantics
    (:meth:`Topology.check_reachable`); the default transport behaviour
    under a partition is to *stall* until the cut heals, which the
    surrounding timeouts then convert into application-level failures —
    the same shape real TCP traffic takes across a dead trunk.
    """


class Topology:
    """Registry of servers, their NIC segments and the inter-room trunk."""

    def __init__(self, sim: Simulation, trunk_bps: float = TRUNK_BPS,
                 tor_bps: float = TRUNK_BPS):
        self.sim = sim
        self.network = FlowNetwork(sim)
        self._tx: Dict[str, Segment] = {}
        self._rx: Dict[str, Segment] = {}
        self._rack: Dict[str, str] = {}
        self._room: Dict[str, str] = {}
        self._servers: Dict[str, Server] = {}
        trunk_Bps = trunk_bps / 8.0
        self.trunk_up = Segment("trunk.edison->dell", trunk_Bps)
        self.trunk_down = Segment("trunk.dell->edison", trunk_Bps)
        # Named (non-room) racks get an explicit ToR uplink/downlink
        # pair, created lazily so the legacy two-room layout never pays
        # for them.
        self._tor_Bps = tor_bps / 8.0
        self._tor_up: Dict[str, Segment] = {}
        self._tor_down: Dict[str, Segment] = {}
        # Reachability overlay: cut_id -> (mode, frozenset of far-side
        # nodes).  Empty in every run that injects no partition, which
        # keeps the hot paths below to a single dict-truthiness test.
        self._cuts: Dict[int, Tuple[str, frozenset]] = {}
        self._cut_seq = 0
        self._heal_event = None
        # (src, dst) memo tables: the web tier calls rtt()/message() per
        # request, and the answers never change once servers are added.
        self._rtt_cache: Dict[tuple, float] = {}
        self._path_cache: Dict[tuple, List[Segment]] = {}
        # Fused (one-way latency, path) plan per (src, dst): message()
        # is called once per request/reply and needs both answers.
        self._msg_cache: Dict[tuple, tuple] = {}

    def add_server(self, server: Server, rack: Optional[str] = None) -> None:
        """Register ``server``; rack defaults to its platform's room."""
        if server.name in self._servers:
            raise ValueError(f"duplicate server name {server.name!r}")
        self._rtt_cache.clear()
        self._path_cache.clear()
        self._msg_cache.clear()
        room = ("edison-room" if server.platform == "edison"
                else "dell-room")
        rack = rack or room
        line_Bps = server.nic.spec.bytes_per_second
        self._servers[server.name] = server
        self._rack[server.name] = rack
        self._room[server.name] = room
        if rack not in ROOM_RACKS and rack not in self._tor_up:
            self._tor_up[rack] = Segment(f"{rack}.tor-up", self._tor_Bps)
            self._tor_down[rack] = Segment(f"{rack}.tor-down", self._tor_Bps)
        self._tx[server.name] = Segment(
            f"{server.name}.tx", line_Bps, nic=server.nic, nic_direction="tx")
        self._rx[server.name] = Segment(
            f"{server.name}.rx", line_Bps, nic=server.nic, nic_direction="rx")

    def server(self, name: str) -> Server:
        return self._servers[name]

    def nic_segments(self, name: str):
        """The (tx, rx) segment pair of one server's NIC.

        Fault injection scales their ``capacity_Bps`` to model link
        degradation; callers must :meth:`FlowNetwork.rescale` afterwards
        so in-flight fluid flows re-converge on the new rates.
        """
        return self._tx[name], self._rx[name]

    def rack_of(self, name: str) -> str:
        return self._rack[name]

    def racks(self) -> List[str]:
        """Distinct rack labels, in server-registration order."""
        seen: Dict[str, None] = {}
        for rack in self._rack.values():
            seen.setdefault(rack)
        return list(seen)

    def rack_members(self, rack: str) -> List[str]:
        """Servers registered under ``rack``, in registration order."""
        return [name for name, r in self._rack.items() if r == rack]

    def path(self, src: str, dst: str) -> List[Segment]:
        """Segments a flow from ``src`` to ``dst`` must traverse."""
        key = (src, dst)
        segments = self._path_cache.get(key)
        if segments is None:
            if src == dst:
                segments = []  # loopback: no network segments involved
            else:
                segments = [self._tx[src]]
                src_rack, dst_rack = self._rack[src], self._rack[dst]
                if src_rack != dst_rack:
                    tor = self._tor_up.get(src_rack)
                    if tor is not None:
                        segments.append(tor)
                    if self._room[src] != self._room[dst]:
                        segments.append(
                            self.trunk_down
                            if self._room[dst] == "edison-room"
                            else self.trunk_up)
                    tor = self._tor_down.get(dst_rack)
                    if tor is not None:
                        segments.append(tor)
                segments.append(self._rx[dst])
            self._path_cache[key] = segments
        return segments

    # ------------------------------------------------------------------
    # Reachability overlay (partitions and switch failures)
    # ------------------------------------------------------------------

    def sever(self, nodes: Iterable[str], isolate: bool = False) -> int:
        """Cut the fabric around ``nodes``; returns a cut id for heal().

        With ``isolate=False`` the cut is a *partition*: traffic between
        the named set and the rest of the cluster is severed but nodes
        on the same side still talk to each other.  With ``isolate=True``
        (a dead ToR switch) the named nodes lose all connectivity,
        including to each other — every path through the switch is gone.
        """
        members = frozenset(nodes)
        if not members:
            raise ValueError("cannot sever an empty node set")
        unknown = members - self._servers.keys()
        if unknown:
            raise ValueError(f"unknown servers in cut: {sorted(unknown)}")
        self._cut_seq += 1
        self._cuts[self._cut_seq] = (
            "isolate" if isolate else "cut", members)
        return self._cut_seq

    def heal(self, cut_id: int) -> None:
        """Remove a cut; wakes every transfer stalled on reachability."""
        if cut_id not in self._cuts:
            raise ValueError(f"unknown cut id {cut_id}")
        del self._cuts[cut_id]
        event, self._heal_event = self._heal_event, None
        if event is not None and not event.triggered:
            event.succeed()

    def reachable(self, src: str, dst: str) -> bool:
        """True when no active cut separates ``src`` from ``dst``."""
        if not self._cuts or src == dst:
            return True
        for mode, members in self._cuts.values():
            if mode == "isolate":
                if src in members or dst in members:
                    return False
            elif (src in members) != (dst in members):
                return False
        return True

    def check_reachable(self, src: str, dst: str) -> None:
        """Fail-fast probe: raise :class:`NetworkUnreachable` on a cut."""
        if not self.reachable(src, dst):
            raise NetworkUnreachable(f"{src} -> {dst}: path severed")

    def _heal_barrier(self):
        """An event fired at the next heal; shared by all stalled waits."""
        if self._heal_event is None or self._heal_event.triggered:
            self._heal_event = self.sim.event()
        return self._heal_event

    def wait_reachable(self, src: str, dst: str):
        """Process generator: stall until ``src`` can reach ``dst``.

        Models TCP retransmitting into a black hole: the conversation
        makes no progress, holds no wire resources, and resumes the
        instant the route returns.  Callers that would rather fail fast
        use :meth:`check_reachable` instead.
        """
        while not self.reachable(src, dst):
            yield self._heal_barrier()

    def rtt(self, src: str, dst: str) -> float:
        """Measured round-trip time between two servers (Section 4.4)."""
        key = (src, dst)
        cached = self._rtt_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            value = 0.0
        else:
            pair = tuple(sorted((self._servers[src].platform,
                                 self._servers[dst].platform)))
            value = paper.S44_RTT_S.get((pair[0], pair[1]),
                                        paper.S44_RTT_S[("dell", "edison")])
        self._rtt_cache[key] = value
        return value

    def one_way_latency(self, src: str, dst: str) -> float:
        """Half the measured RTT — per-direction propagation+switching."""
        return self.rtt(src, dst) / 2.0

    def transfer(self, src: str, dst: str, nbytes: float):
        """Process generator: bulk-transfer ``nbytes`` from src to dst.

        Adds the one-way latency up front, then a max-min fair fluid flow
        across the path.  Loopback transfers cost memory-copy time only
        and are approximated as instantaneous at this layer.
        """
        if self._cuts:
            yield from self.wait_reachable(src, dst)
        latency = self.one_way_latency(src, dst)
        if latency > 0:
            yield latency
        path = self.path(src, dst)
        if path:
            yield self.network.start_flow(path, nbytes)

    def transfer_event(self, src: str, dst: str, nbytes: float):
        """Event-returning variant (no latency term) for composition."""
        return self.network.start_flow(self.path(src, dst), nbytes)

    def message(self, src: str, dst: str, nbytes: float):
        """Process generator: send one request/reply-sized message.

        The high-rate web tier cannot afford a fluid flow per message,
        so messages use a store-and-forward model instead: the message
        queues FIFO at each segment along the path and holds it for its
        serialisation time.  For multi-segment paths this is mildly
        conservative (real TCP pipelines packets across segments), an
        error bounded by 2x on the wire time of intra-room hops — small
        against the CPU service times that dominate web latency, and
        absorbed by the cost-model calibration.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if self._cuts:
            yield from self.wait_reachable(src, dst)
        sim = self.sim
        plan = self._msg_cache.get((src, dst))
        if plan is None:
            plan = (self.one_way_latency(src, dst),
                    tuple(self.path(src, dst)))
            self._msg_cache[(src, dst)] = plan
        latency, path = plan
        if latency > 0:
            yield latency
        for segment in path:
            # FIFO store-and-forward without a queue object: a message
            # starts serialising when the wire frees up, so its
            # departure is max(now, busy_until) + wire time — the exact
            # recursion a capacity-1 FIFO resource computes, at one
            # calendar event per hop instead of a grant/hold/release
            # event chain per message.
            now = sim._now
            start = segment.busy_until
            if start < now:
                start = now
            done = start + nbytes / segment.capacity_Bps
            segment.busy_until = done
            yield done - now
            nic = segment.nic
            if nic is not None:
                if segment.nic_direction == "tx":
                    nic.bytes_sent += nbytes
                else:
                    nic.bytes_received += nbytes
