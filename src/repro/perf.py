"""Kernel-scale performance harness: measured sweeps with fidelity digests.

The ROADMAP's north star is a simulator that "runs as fast as the
hardware allows" and scales past the paper's 35-node ceiling, the way
SBC-cluster follow-ups evaluate 20+-node deployments end to end.  This
module is the measurement side of that promise: it drives the web tier
at 35/70/140/280 total nodes and Terasort across a slave ladder,
recording three things per cell:

* **wall-clock** and **events/second** — the optimisation target,
* **heap peak** — the event-calendar footprint, and
* a **fidelity digest** — every observable result field, bit-exact.

The digest is the contract that performance work must not buy speed
with behaviour: an optimised kernel run is only accepted when its
digest equals the unoptimised kernel's digest float-for-float (same
seeds, same Table 7 decomposition, same web delay stats, same
MapReduce job outputs).  ``scripts/run_perf_baseline.py`` records the
pre/post phases into ``BENCH_kernel_scale.json``;
``benchmarks/bench_kernel_scale.py`` re-asserts the invariants.
"""

from __future__ import annotations

import platform as _platform
import sys
import time
from dataclasses import asdict, dataclass
from typing import Dict, Tuple

#: One web cell per total node count: (total, "<web>x<cache>" layout,
#: httperf concurrency).  24 web + 11 cache is the paper's full Edison
#: layout (35 nodes); larger cells scale both roles proportionally and
#: offer ~4 concurrent connections per web server.
WEB_LADDER: Tuple[Tuple[int, str, int], ...] = (
    (35, "24x11", 96),
    (70, "48x22", 192),
    (140, "96x44", 384),
    (280, "192x88", 768),
)

#: The 70-node cell carries the headline ">= 1.5x events/sec" bar.
HEADLINE_NODES = 35 * 2

#: Terasort slave-count ladder (Edison platform).
TERASORT_LADDER: Tuple[int, ...] = (4, 8, 17)

#: Table 7 delay-decomposition cells: (platform, offered rate req/s).
TABLE7_CELLS: Tuple[Tuple[str, int], ...] = (
    ("edison", 480), ("edison", 7680), ("dell", 480), ("dell", 7680),
)

WEB_DURATION = 2.0
WEB_WARMUP = 0.5
SEED = 20160901


@dataclass(frozen=True)
class PerfSample:
    """One measured cell: speed numbers plus its fidelity digest."""

    wall_s: float
    scheduled: int
    processed: int
    events_per_s: float
    heap_peak: int
    digest: Dict

    def to_dict(self) -> Dict:
        return asdict(self)


def _sample(sim, wall_s: float, digest: Dict) -> PerfSample:
    stats = sim.calendar_stats()
    return PerfSample(
        wall_s=wall_s,
        scheduled=stats["scheduled"],
        processed=stats["processed"],
        events_per_s=stats["processed"] / wall_s if wall_s > 0 else 0.0,
        heap_peak=stats["heap_peak"],
        digest=digest,
    )


# -- the measured workloads ---------------------------------------------------

def measure_web_level(scale: str, concurrency: int,
                      duration: float = WEB_DURATION,
                      warmup: float = WEB_WARMUP,
                      seed: int = SEED, trace=None) -> PerfSample:
    """One web concurrency level on an Edison layout; digest = LevelResult."""
    from .web import WebServiceDeployment
    deployment = WebServiceDeployment("edison", scale, seed=seed, trace=trace)
    for node in deployment.web_nodes:
        node.record_log_enabled = False
    t0 = time.perf_counter()
    result = deployment.run_level(concurrency, duration=duration,
                                  warmup=warmup)
    wall = time.perf_counter() - t0
    return _sample(deployment.sim, wall, asdict(result))


def measure_table7_cell(platform: str, rate: int,
                        duration: float = WEB_DURATION,
                        warmup: float = WEB_WARMUP,
                        seed: int = SEED) -> PerfSample:
    """One Table 7 row; digest = the exact delay decomposition."""
    from .web import measure_delay_decomposition
    t0 = time.perf_counter()
    decomp = measure_delay_decomposition(platform, rate, duration=duration,
                                         warmup=warmup, seed=seed)
    wall = time.perf_counter() - t0
    # measure_delay_decomposition owns its simulation; the digest is the
    # decomposition itself (events are re-measured by the web ladder).
    return PerfSample(wall_s=wall, scheduled=0, processed=0,
                      events_per_s=0.0, heap_peak=0, digest=asdict(decomp))


def measure_terasort(slaves: int, seed: int = SEED) -> PerfSample:
    """One Terasort run on ``slaves`` Edison nodes; digest = job outputs."""
    from .mapreduce.jobs.terasort import terasort_job
    from .mapreduce.runtime import JobRunner
    spec, config = terasort_job("edison", slaves)
    runner = JobRunner("edison", slaves, config=config, seed=seed)
    t0 = time.perf_counter()
    report = runner.run(spec)
    wall = time.perf_counter() - t0
    digest = {"seconds": report.seconds, "joules": report.joules,
              "locality_fraction": report.locality_fraction}
    return _sample(runner.sim, wall, digest)


# -- suite --------------------------------------------------------------------

def run_suite(quick: bool = False, emit=None) -> Dict:
    """Run every cell (or the quick subset) and bundle the samples.

    Quick mode keeps one cell per workload *with identical parameters*
    to the full suite, so its numbers remain comparable against a full
    committed baseline.
    """
    def say(text: str) -> None:
        if emit is not None:
            emit(text)

    web_ladder = [c for c in WEB_LADDER if not quick
                  or c[0] == HEADLINE_NODES]
    terasort_ladder = TERASORT_LADDER[:1] if quick else TERASORT_LADDER
    table7_cells = TABLE7_CELLS[:1] if quick else TABLE7_CELLS

    bundle: Dict = {"web_scale": {}, "table7": {}, "terasort": {}}
    for total, scale, concurrency in web_ladder:
        sample = measure_web_level(scale, concurrency)
        bundle["web_scale"][str(total)] = {
            "scale": scale, "concurrency": concurrency,
            **sample.to_dict()}
        say(f"web {total:>3} nodes ({scale}): "
            f"{sample.events_per_s:,.0f} events/s, "
            f"heap peak {sample.heap_peak}, {sample.wall_s:.2f}s wall")
    for platform, rate in table7_cells:
        sample = measure_table7_cell(platform, rate)
        bundle["table7"][f"{platform}@{rate}"] = sample.to_dict()
        say(f"table7 {platform}@{rate}: {sample.wall_s:.2f}s wall")
    for slaves in terasort_ladder:
        sample = measure_terasort(slaves)
        bundle["terasort"][str(slaves)] = sample.to_dict()
        say(f"terasort {slaves} slaves: {sample.events_per_s:,.0f} events/s, "
            f"{sample.wall_s:.2f}s wall")
    return bundle


def host_info() -> Dict:
    return {"python": sys.version.split()[0],
            "implementation": _platform.python_implementation(),
            "machine": _platform.machine(),
            "system": _platform.system()}


# -- digests and comparison ---------------------------------------------------

def fidelity_digest(bundle: Dict) -> Dict:
    """The behaviour-only view of a bundle (no timings, no footprints)."""
    return {section: {cell: data["digest"]
                      for cell, data in bundle.get(section, {}).items()}
            for section in ("web_scale", "table7", "terasort")}


def digest_mismatches(old: Dict, new: Dict) -> list:
    """Cells present in both digests whose values differ (bit-exact)."""
    mismatches = []
    for section, cells in fidelity_digest(old).items():
        new_cells = fidelity_digest(new).get(section, {})
        for cell, digest in cells.items():
            if cell in new_cells and new_cells[cell] != digest:
                mismatches.append(f"{section}/{cell}")
    return mismatches


def speedup_report(pre: Dict, post: Dict) -> Dict:
    """events/sec and wall-clock ratios for cells present in both phases."""
    report: Dict = {}
    for section in ("web_scale", "terasort"):
        for cell, data in pre.get(section, {}).items():
            after = post.get(section, {}).get(cell)
            if after is None or not data.get("events_per_s"):
                continue
            report[f"{section}/{cell}"] = {
                "events_per_s_ratio":
                    after["events_per_s"] / data["events_per_s"],
                "wall_s_ratio": data["wall_s"] / after["wall_s"]
                    if after["wall_s"] > 0 else 0.0,
                "heap_peak_ratio": after["heap_peak"] / data["heap_peak"]
                    if data.get("heap_peak") else 0.0,
            }
    for cell, data in pre.get("table7", {}).items():
        after = post.get("table7", {}).get(cell)
        if after is not None and after.get("wall_s"):
            report[f"table7/{cell}"] = {
                "wall_s_ratio": data["wall_s"] / after["wall_s"]}
    return report
