"""Graceful degradation under gray failures — and its energy price.

Gray failures (a throttled CPU, a lossy NIC) don't kill nodes, they
make them *slow*, which is worse: detectors tuned for silence never
fire, and one limping server drags a whole tier's tail latency past
the paper's 3-second QoS bound.  This package holds the mitigations
the systems literature grew for exactly that — LATE-style speculative
execution for MapReduce stragglers, circuit breakers, request hedging,
capped-backoff retries and queue-depth load shedding for the web tier
— plus the part evaluations usually omit: a ledger that prices every
duplicated or discarded byte of work in joules, so the paper's
work-done-per-joule metric can be quoted *net of the resilience tax*.

Everything here is strictly opt-in.  With no :class:`ResilienceConfig`
attached (or a disabled one), every run is bit-identical to a build
without this package — the same hard guarantee `repro.trace`,
`repro.telemetry` and `repro.faults` make.
"""

from .breaker import CircuitBreaker
from .config import (AdmissionConfig, BreakerConfig, HedgeConfig,
                     ResilienceConfig, RetryPolicy, SpeculationConfig)
from .ledger import ResilienceLedger

__all__ = [
    "AdmissionConfig", "BreakerConfig", "CircuitBreaker", "HedgeConfig",
    "ResilienceArm", "ResilienceConfig", "ResilienceLedger",
    "ResilienceTaxReport", "RetryPolicy", "SpeculationConfig",
    "job_gray_plan", "job_resilience_experiment", "web_gray_plan",
    "web_resilience_experiment",
]

_REPORT_NAMES = ("ResilienceArm", "ResilienceTaxReport", "job_gray_plan",
                 "job_resilience_experiment", "web_gray_plan",
                 "web_resilience_experiment")


def __getattr__(name):
    # Deferred: report builds on repro.web / repro.mapreduce, which
    # import this package's config and ledger — a cycle if done eagerly.
    if name in _REPORT_NAMES:
        from . import report
        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
