"""Per-backend circuit breaker.

The classic three-state machine, driven entirely by simulated time:

* **closed** — requests flow; consecutive failures are counted and the
  breaker trips open at ``failure_threshold``.
* **open** — requests are refused outright (the load balancer routes
  around the backend) until ``cooldown_s`` has elapsed.
* **half-open** — exactly one probe request is admitted; success closes
  the breaker, failure re-opens it and restarts the cooldown.

The breaker is latency-aware: :meth:`record_success` given a duration
past ``slow_call_s`` counts as a failure, so slow-but-alive backends
(the defining shape of a gray failure) trip it too.

The breaker holds no timers of its own: state is resolved lazily from
``sim.now`` inside :meth:`allow`, so an idle breaker costs nothing and
the machinery adds zero events to the simulation.
"""

from __future__ import annotations

from ..sim import Simulation
from .config import BreakerConfig

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-counting breaker guarding one backend."""

    __slots__ = ("sim", "name", "cfg", "state", "failures", "opened_at",
                 "open_count", "_probe_in_flight")

    def __init__(self, sim: Simulation, name: str, cfg: BreakerConfig):
        self.sim = sim
        self.name = name
        self.cfg = cfg
        self.state = CLOSED
        self.failures = 0
        self.opened_at = -float("inf")
        self.open_count = 0
        self._probe_in_flight = False

    def allow(self) -> bool:
        """May a request be sent to this backend right now?

        Calling this while half-open claims the single probe slot, so
        callers must follow through with exactly one request and report
        its outcome.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.sim.now - self.opened_at < self.cfg.cooldown_s:
                return False
            self.state = HALF_OPEN
            self._probe_in_flight = False
        # Half-open: admit a single probe at a time.
        if self._probe_in_flight:
            return False
        self._probe_in_flight = True
        return True

    def record_success(self, duration_s: float = None) -> None:
        """Report a successful answer (optionally with its latency).

        A success slower than ``cfg.slow_call_s`` is treated as a
        failure: gray failures answer correctly but late, and a breaker
        counting only error codes would never open on them.
        """
        if duration_s is not None and duration_s >= self.cfg.slow_call_s:
            self.record_failure()
            return
        if self.state == HALF_OPEN:
            self.state = CLOSED
            self._probe_in_flight = False
        self.failures = 0

    def record_failure(self) -> None:
        if self.state == HALF_OPEN:
            # The probe failed: back to a full cooldown.
            self._trip()
            return
        if self.state == OPEN:
            return
        self.failures += 1
        if self.failures >= self.cfg.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self.state = OPEN
        self.opened_at = self.sim.now
        self.failures = 0
        self.open_count += 1
        self._probe_in_flight = False
