"""Knobs for every mitigation, grouped per mechanism.

Everything is a frozen dataclass so a config can be hashed into an
experiment manifest, and every mechanism can be switched off
independently — an all-defaults :class:`ResilienceConfig` enables the
full suite, ``ResilienceConfig.disabled()`` is the explicit "none"
marker used by paired tax experiments.

The defaults are deliberately conservative: LATE's 1.5x-the-median
straggler rule, a two-wide speculation pool, a single hedge per request
fired at the in-flight p~90 trigger, and admission control that sheds
only once the queue passes 3/4 of the configured overload limit.  They
are meant to survive the committed gray-failure plan, not to win every
possible benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SpeculationConfig:
    """LATE-style speculative execution for MapReduce map tasks.

    Parameters
    ----------
    check_interval_s:
        How often the job's speculation monitor scans running attempts.
    late_factor:
        An attempt is a straggler once its elapsed time exceeds
        ``late_factor`` times the running median of completed attempts.
    min_completed:
        Completed attempts needed before the median is trusted; below
        this the cost-model estimate anchors the baseline instead.
    max_outstanding:
        Speculative attempts allowed in flight at once (the capped
        duplicate pool — speculation must not starve first attempts).
    allocation_heartbeats:
        Heartbeat rounds a speculative attempt may wait for a container
        before giving up; first attempts keep waiting forever.
    """

    check_interval_s: float = 2.0
    late_factor: float = 1.5
    min_completed: int = 3
    max_outstanding: int = 2
    allocation_heartbeats: int = 10

    def __post_init__(self):
        if self.check_interval_s <= 0:
            raise ValueError("check_interval_s must be > 0")
        if self.late_factor <= 1.0:
            raise ValueError("late_factor must be > 1")
        if self.min_completed < 1:
            raise ValueError("min_completed must be >= 1")
        if self.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        if self.allocation_heartbeats < 1:
            raise ValueError("allocation_heartbeats must be >= 1")


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic (seeded) jitter."""

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s <= 0 or self.backoff_cap_s <= 0:
            raise ValueError("backoff base and cap must be > 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")


@dataclass(frozen=True)
class BreakerConfig:
    """Per-backend circuit breaker (closed -> open -> half-open).

    ``slow_call_s`` makes the breaker latency-aware: a *successful*
    answer slower than this counts as a failure.  Gray failures — a
    throttled CPU, a lossy NIC — produce slow 200s, not error codes;
    a breaker that only counts errors never sees them.
    """

    failure_threshold: int = 5
    cooldown_s: float = 1.0
    slow_call_s: float = 2.0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_s <= 0:
            raise ValueError("cooldown_s must be > 0")
        if self.slow_call_s <= 0:
            raise ValueError("slow_call_s must be > 0")


@dataclass(frozen=True)
class HedgeConfig:
    """Request hedging: duplicate a call that outlives the trigger."""

    enabled: bool = True
    trigger_s: float = 0.75

    def __post_init__(self):
        if self.trigger_s <= 0:
            raise ValueError("trigger_s must be > 0")


@dataclass(frozen=True)
class AdmissionConfig:
    """Queue-depth admission control on each web server.

    ``queue_fraction`` of the overload limit (``call_queue_limit``) is
    the shed threshold: beyond it new calls get a cheap fast-fail
    rather than queueing toward the client's timeout.  It sits high
    enough that redispatched + hedged traffic bursts on the healthy
    survivors do not themselves trigger shedding.
    """

    queue_fraction: float = 0.75

    def __post_init__(self):
        if not 0.0 < self.queue_fraction <= 1.0:
            raise ValueError("queue_fraction must be in (0, 1]")


@dataclass(frozen=True)
class ResilienceConfig:
    """Top-level switchboard; each mechanism toggles independently."""

    speculation: bool = True
    retries: bool = True
    breakers: bool = True
    hedging: bool = True
    shedding: bool = True
    speculation_cfg: SpeculationConfig = field(default_factory=SpeculationConfig)
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_cfg: BreakerConfig = field(default_factory=BreakerConfig)
    hedge_cfg: HedgeConfig = field(default_factory=HedgeConfig)
    admission_cfg: AdmissionConfig = field(default_factory=AdmissionConfig)

    @property
    def any_enabled(self) -> bool:
        return (self.speculation or self.retries or self.breakers
                or self.hedging or self.shedding)

    @classmethod
    def disabled(cls) -> "ResilienceConfig":
        """Every mechanism off — the unmitigated arm of a tax experiment."""
        return cls(speculation=False, retries=False, breakers=False,
                   hedging=False, shedding=False)
