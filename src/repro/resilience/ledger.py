"""The resilience ledger: what every mitigation cost in joules.

Mitigations buy availability with duplicated or discarded work — a
killed speculative attempt, the losing leg of a hedged request, the
cheap error reply sent to a shed call.  None of that work reaches the
throughput numerator, but all of it reaches the energy meter, so the
paper's work-done-per-joule metric silently pays for it.  The ledger
makes that price explicit: every mechanism charges its waste here, by
category and by node, and the tax report reads it back out.

Waste is priced at the *marginal* vcore rate — the slope of the linear
power model, ``(max_w - min_w) / vcores`` — because the node's idle
floor is burned whether or not the duplicate work runs.  That matches
how :mod:`repro.energy` already attributes incremental load.
"""

from __future__ import annotations

from typing import Dict

from ..energy.account import MitigationCosts

#: Ledger charge categories.
CATEGORIES = ("speculation", "hedge", "shed", "retry")


class ResilienceLedger:
    """Counters and joule charges accumulated by every mitigation."""

    def __init__(self):
        self.counters: Dict[str, int] = {
            "speculative_launches": 0,
            "speculative_wins": 0,
            "speculative_kills": 0,
            "speculative_abandoned": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "sheds": 0,
            "retries": 0,
            "breaker_opens": 0,
        }
        self.waste_joules: Dict[str, float] = {c: 0.0 for c in CATEGORIES}
        self.waste_seconds: Dict[str, float] = {c: 0.0 for c in CATEGORIES}
        self.node_joules: Dict[str, float] = {}

    def count(self, counter: str, n: int = 1) -> None:
        self.counters[counter] += n

    def charge(self, category: str, node: str, seconds: float,
               watts: float) -> None:
        """Attribute ``seconds`` of wasted work on ``node`` at ``watts``."""
        if category not in self.waste_joules:
            raise ValueError(f"unknown ledger category {category!r}")
        if seconds < 0 or watts < 0:
            raise ValueError("seconds and watts must be >= 0")
        joules = seconds * watts
        self.waste_joules[category] += joules
        self.waste_seconds[category] += seconds
        self.node_joules[node] = self.node_joules.get(node, 0.0) + joules

    @staticmethod
    def marginal_vcore_watts(server) -> float:
        """Marginal power of one busy vcore under the linear power model.

        Priced at the CPU's active P-state: wasted seconds on a
        down-clocked core cost fewer joules per second (they also last
        longer — the caller bills the stretched duration).
        """
        power = server.spec.power
        watts = (power.max_w - power.min_w) / server.cpu.spec.vcores
        factor = server.cpu.pstate.busy_w_factor
        if factor != 1.0:
            watts *= factor
        return watts

    @property
    def total_waste_joules(self) -> float:
        return sum(self.waste_joules.values())

    def to_mitigation_costs(self) -> MitigationCosts:
        return MitigationCosts(
            speculative_j=self.waste_joules["speculation"],
            hedge_j=self.waste_joules["hedge"],
            shed_j=self.waste_joules["shed"],
            retry_j=self.waste_joules["retry"],
        )

    def summary(self) -> Dict[str, object]:
        return {
            "counters": dict(self.counters),
            "waste_joules": {k: round(v, 6)
                             for k, v in self.waste_joules.items()},
            "waste_seconds": {k: round(v, 6)
                              for k, v in self.waste_seconds.items()},
            "node_joules": {k: round(v, 6)
                            for k, v in sorted(self.node_joules.items())},
            "total_waste_joules": round(self.total_waste_joules, 6),
        }
