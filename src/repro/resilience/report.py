"""The resilience energy tax: what surviving gray failures costs.

Two paired experiments run the *same* seeded gray-failure plan twice —
once with every mitigation off (the historical, bit-identical path) and
once with a :class:`~repro.resilience.ResilienceConfig` armed — and
report both arms side by side:

* :func:`web_resilience_experiment` — a throttled/lossy/crashing web
  tier under steady load.  The unmitigated arm piles calls onto the
  limping backends (slow 200s, 500 cliffs, dead connections); the
  mitigated arm routes around them with breakers, retries, hedges and
  admission control, and the ledger meters every joule those
  mitigations burn.
* :func:`job_resilience_experiment` — a MapReduce job with straggling
  and crashing slaves.  The unmitigated arm waits out every straggler
  and re-runs crashed attempts from scratch; the mitigated arm
  speculates around them (LATE) and backs its retries off.

The punchline mirrors the paper's own currency: work-done-per-joule,
now measured *under failure* — with the mitigation waste (killed
speculative twins, losing hedge legs, shed replies) broken out so the
tax is visible, not hidden inside the total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..faults.models import (FaultPlan, cpu_throttle, node_crash,
                             packet_loss)
from .config import ResilienceConfig

#: Seed of the committed gray-failure experiment (CI smoke + docs).
GRAY_SEED = 42


# -- committed gray-failure plans ----------------------------------------


def web_gray_plan(nodes: Sequence[str]) -> FaultPlan:
    """The committed web-tier gray-failure plan over ``nodes``.

    Needs at least five web servers: three get thermally throttled to
    8 % of nominal DMIPS, one gets 30 % packet loss, and one crashes
    outright (repaired after 8 s) — every failure mode is *gray* except
    the one clean crash, which exercises detection-based failover next
    to the mitigation-based kind.
    """
    if len(nodes) < 5:
        raise ValueError("the gray plan needs at least 5 target nodes")
    return FaultPlan(faults=(
        cpu_throttle(nodes[0], at=2.0, duration=26.0, factor=0.08),
        cpu_throttle(nodes[1], at=2.0, duration=26.0, factor=0.08),
        cpu_throttle(nodes[2], at=2.0, duration=26.0, factor=0.08),
        node_crash(nodes[3], at=3.0, repair_s=8.0),
        packet_loss(nodes[4], at=2.0, duration=26.0, loss=0.3),
    ))


def job_gray_plan(nodes: Sequence[str]) -> FaultPlan:
    """The committed MapReduce gray-failure plan over ``nodes``.

    One slave drops to 8 % DMIPS *permanently* — a stuck P-state or a
    failed fan, the canonical gray failure: the NodeManager still
    heartbeats, so nothing evicts it, and on a single-wave job every
    map it holds becomes an unbounded straggler.  A second slave
    throttles more mildly for ~6 minutes (a passing thermal event), and
    a third crashes mid-map and comes back — so the unmitigated run
    both *fails task attempts* (the crash) and waits on the limping
    node for most of its makespan, burning idle watts on every healthy
    slave meanwhile.
    """
    if len(nodes) < 3:
        raise ValueError("the gray plan needs at least 3 target nodes")
    return FaultPlan(faults=(
        cpu_throttle(nodes[0], at=30.0, duration=1e9, factor=0.08),
        cpu_throttle(nodes[1], at=30.0, duration=385.0, factor=0.35),
        node_crash(nodes[2], at=60.0, repair_s=45.0),
    ))


# -- the two-arm report --------------------------------------------------


@dataclass(frozen=True)
class ResilienceArm:
    """One arm (mitigated or unmitigated) of a paired gray-failure run."""

    label: str
    completed: bool
    #: Successful calls (web) or jobs finished (MapReduce).
    work_done: float
    seconds: float
    joules: float
    errors: int = 0
    client_failures: int = 0
    task_failures: int = 0
    p95_s: Optional[float] = None
    availability: Optional[float] = None
    availability_met: Optional[bool] = None
    latency_met: Optional[bool] = None
    #: Ledger counters (mitigated arm only; empty when unmitigated).
    counters: Mapping[str, int] = field(default_factory=dict)
    #: Ledger waste joules per category (speculation/hedge/shed/retry).
    waste_joules: Mapping[str, float] = field(default_factory=dict)

    @property
    def work_per_joule(self) -> float:
        """The paper's currency, measured under failure."""
        if self.joules <= 0:
            return 0.0
        return self.work_done / self.joules

    @property
    def total_waste_joules(self) -> float:
        return sum(self.waste_joules.values())

    def to_dict(self) -> Dict:
        return {
            "label": self.label, "completed": self.completed,
            "work_done": self.work_done, "seconds": self.seconds,
            "joules": self.joules, "errors": self.errors,
            "client_failures": self.client_failures,
            "task_failures": self.task_failures, "p95_s": self.p95_s,
            "availability": self.availability,
            "availability_met": self.availability_met,
            "latency_met": self.latency_met,
            "work_per_joule": self.work_per_joule,
            "counters": dict(self.counters),
            "waste_joules": dict(self.waste_joules),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ResilienceArm":
        return cls(label=data["label"], completed=data["completed"],
                   work_done=data["work_done"], seconds=data["seconds"],
                   joules=data["joules"], errors=data.get("errors", 0),
                   client_failures=data.get("client_failures", 0),
                   task_failures=data.get("task_failures", 0),
                   p95_s=data.get("p95_s"),
                   availability=data.get("availability"),
                   availability_met=data.get("availability_met"),
                   latency_met=data.get("latency_met"),
                   counters=dict(data.get("counters", {})),
                   waste_joules=dict(data.get("waste_joules", {})))


@dataclass(frozen=True)
class ResilienceTaxReport:
    """Mitigated vs unmitigated under one seeded gray-failure plan."""

    kind: str                   # "web" or "job"
    platform: str
    detail: str                 # scale / job name, for display
    unmitigated: ResilienceArm
    mitigated: ResilienceArm

    @property
    def energy_overhead_fraction(self) -> float:
        """Total joules of the mitigated arm relative to unmitigated."""
        if self.unmitigated.joules <= 0:
            return 0.0
        return self.mitigated.joules / self.unmitigated.joules - 1.0

    @property
    def waste_fraction(self) -> float:
        """Share of the mitigated arm's joules burned by mitigation."""
        if self.mitigated.joules <= 0:
            return 0.0
        return self.mitigated.total_waste_joules / self.mitigated.joules

    @property
    def work_per_joule_ratio(self) -> float:
        """>1: mitigation pays for itself even in the paper's currency."""
        base = self.unmitigated.work_per_joule
        if base <= 0:
            return float("inf") if self.mitigated.work_per_joule > 0 else 1.0
        return self.mitigated.work_per_joule / base

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "platform": self.platform,
                "detail": self.detail,
                "unmitigated": self.unmitigated.to_dict(),
                "mitigated": self.mitigated.to_dict(),
                "energy_overhead_fraction": self.energy_overhead_fraction,
                "waste_fraction": self.waste_fraction,
                "work_per_joule_ratio": self.work_per_joule_ratio}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ResilienceTaxReport":
        return cls(kind=data["kind"], platform=data["platform"],
                   detail=data["detail"],
                   unmitigated=ResilienceArm.from_dict(data["unmitigated"]),
                   mitigated=ResilienceArm.from_dict(data["mitigated"]))

    def lines(self) -> List[str]:
        """The mitigated-vs-unmitigated table, CLI/docs-ready."""
        unit = "ok calls" if self.kind == "web" else "jobs"
        out = [f"Resilience energy tax — {self.kind} "
               f"({self.platform}, {self.detail})"]
        header = (f"  {'':24s} {'unmitigated':>14s} {'mitigated':>14s}")
        out.append(header)

        def row(name, a, b):
            out.append(f"  {name:24s} {a:>14s} {b:>14s}")

        u, m = self.unmitigated, self.mitigated
        row("completed", str(u.completed), str(m.completed))
        row(f"work done ({unit})", f"{u.work_done:.0f}", f"{m.work_done:.0f}")
        row("errors", str(u.errors), str(m.errors))
        if self.kind == "web":
            row("client failures", str(u.client_failures),
                str(m.client_failures))

            def fmt_p95(arm):
                return ("n/a" if arm.p95_s is None
                        else f"{arm.p95_s * 1000:.0f} ms")
            row("p95 delay", fmt_p95(u), fmt_p95(m))

            def fmt_avail(arm):
                if arm.availability is None:
                    return "n/a"
                verdict = "met" if arm.availability_met else "MISSED"
                return f"{arm.availability:.4%} {verdict}"
            row("availability SLO", fmt_avail(u), fmt_avail(m))
        else:
            row("failed task attempts", str(u.task_failures),
                str(m.task_failures))
            row("makespan", f"{u.seconds:.0f} s", f"{m.seconds:.0f} s")
        row("energy", f"{u.joules:.0f} J", f"{m.joules:.0f} J")
        row("work per kilojoule", f"{u.work_per_joule * 1000:.2f}",
            f"{m.work_per_joule * 1000:.2f}")
        out.append(f"  mitigation waste: {m.total_waste_joules:.1f} J "
                   f"({self.waste_fraction:.1%} of mitigated energy)")
        for category, joules in sorted(m.waste_joules.items()):
            if joules > 0:
                out.append(f"    {category}: {joules:.1f} J")
        interesting = {k: v for k, v in m.counters.items() if v}
        if interesting:
            out.append("  mitigation activity: " + ", ".join(
                f"{k}={v}" for k, v in sorted(interesting.items())))
        out.append(f"  energy overhead: "
                   f"{self.energy_overhead_fraction:+.1%}; "
                   f"work/joule ratio: {self.work_per_joule_ratio:.2f}x")
        return out


# -- web experiment ------------------------------------------------------


def web_resilience_experiment(platform: str = "edison", scale: str = "1/4",
                              concurrency: int = 24,
                              duration: float = 30.0, warmup: float = 1.0,
                              seed: int = GRAY_SEED,
                              plan: Optional[FaultPlan] = None,
                              config: Optional[ResilienceConfig] = None,
                              trace=None) -> ResilienceTaxReport:
    """Run the committed web gray plan twice and report the tax.

    Both arms share the seed, the plan and the offered load; the only
    difference is the :class:`ResilienceConfig`.  Telemetry rides along
    on each arm for the SLO verdicts (its attachment is bit-neutral).
    """
    from ..telemetry import Telemetry     # deferred: import cycle
    from ..web import WebServiceDeployment
    if config is None:
        config = ResilienceConfig()

    def arm(label: str, resilience: Optional[ResilienceConfig]):
        deployment = WebServiceDeployment(platform, scale, seed=seed,
                                          resilience=resilience,
                                          trace=trace)
        telemetry = Telemetry()
        telemetry.attach_web(deployment, until=duration)
        the_plan = plan if plan is not None else web_gray_plan(
            [w.server.name for w in deployment.web_nodes])
        deployment.attach_faults(the_plan)
        level = deployment.run_level(concurrency, duration=duration,
                                     warmup=warmup, collect_delays=True)
        slo = telemetry.slo_report()
        ledger = deployment.resilience_ledger
        return ResilienceArm(
            label=label, completed=True,
            work_done=float(level.ok_calls),
            seconds=level.window_s, joules=level.energy_joules,
            errors=level.error_calls + level.failed_connections,
            client_failures=slo.client_failures,
            p95_s=slo.p95_s, availability=slo.availability,
            availability_met=slo.availability_met,
            latency_met=slo.latency_met,
            counters=dict(ledger.counters) if ledger is not None else {},
            waste_joules=(dict(ledger.waste_joules)
                          if ledger is not None else {}))

    unmitigated = arm("unmitigated", None)
    mitigated = arm("mitigated", config)
    return ResilienceTaxReport(kind="web", platform=platform,
                               detail=f"scale {scale}, "
                                      f"{concurrency} conn/s",
                               unmitigated=unmitigated,
                               mitigated=mitigated)


# -- MapReduce experiment ------------------------------------------------


def job_resilience_experiment(job: str = "wordcount2",
                              platform: str = "edison", slaves: int = 8,
                              seed: int = GRAY_SEED,
                              plan: Optional[FaultPlan] = None,
                              config: Optional[ResilienceConfig] = None,
                              deadline_s: float = 100_000.0,
                              trace=None) -> ResilienceTaxReport:
    """Run one Table 8 job under the gray plan, with and without LATE."""
    from ..faults import FaultInjector    # deferred: import cycle
    from ..mapreduce import JOB_FACTORIES, JobRunner
    from ..mapreduce.runtime import JobFailed
    if config is None:
        config = ResilienceConfig()

    def arm(label: str, resilience: Optional[ResilienceConfig]):
        spec, hadoop_config = JOB_FACTORIES[job](platform, slaves)
        runner = JobRunner(platform, slaves, config=hadoop_config,
                           seed=seed, resilience=resilience, trace=trace)
        the_plan = plan if plan is not None else job_gray_plan(
            [s.name for s in runner.slave_servers])
        FaultInjector(runner.cluster, the_plan)
        completed = True
        report = None
        try:
            report = runner.run(spec, deadline_s=deadline_s)
        except JobFailed:
            completed = False
        state = runner._active[1] if runner._active is not None else None
        ledger = runner.resilience_ledger
        return ResilienceArm(
            label=label, completed=completed,
            work_done=1.0 if completed else 0.0,
            seconds=report.seconds if report is not None else deadline_s,
            joules=report.joules if report is not None else 0.0,
            task_failures=(state.failed_attempts
                           if state is not None else 0),
            counters=dict(ledger.counters) if ledger is not None else {},
            waste_joules=(dict(ledger.waste_joules)
                          if ledger is not None else {}))

    unmitigated = arm("unmitigated", None)
    mitigated = arm("mitigated", config)
    return ResilienceTaxReport(kind="job", platform=platform,
                               detail=f"{job}, {slaves} slaves",
                               unmitigated=unmitigated,
                               mitigated=mitigated)
