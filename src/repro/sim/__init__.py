"""From-scratch discrete-event simulation kernel used by all substrates."""

from .errors import EmptySchedule, Interrupt, SimulationError
from .kernel import AllOf, AnyOf, Event, Process, Simulation, Timeout
from .monitor import TimeSeries, periodic_sampler
from .resources import Container, Request, Resource, Store
from .rng import RngStreams, backoff_delay, derive_seed, heartbeat_jitter

__all__ = [
    "AllOf", "AnyOf", "Container", "EmptySchedule", "Event", "Interrupt",
    "Process", "Request", "Resource", "RngStreams", "Simulation",
    "SimulationError", "Store", "TimeSeries", "Timeout", "backoff_delay",
    "derive_seed", "heartbeat_jitter", "periodic_sampler",
]
