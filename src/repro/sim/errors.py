"""Exception types raised by the discrete-event simulation kernel."""


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Simulation.step` when no events remain."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Simulation.run` at an until-event.

    Carries the value of the event that terminated the run.
    """

    def __init__(self, value):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The interrupting party may attach an arbitrary ``cause`` describing
    why the interruption happened (e.g. a node failure injected by a
    fault-injection test).
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause
