"""A compact, from-scratch discrete-event simulation (DES) kernel.

The kernel follows the classic event-calendar design: a binary heap of
``(time, priority, sequence, event)`` entries is drained in order, and each
popped event runs its callbacks.  Simulated entities are *processes* —
plain Python generators that ``yield`` events (timeouts, resource requests,
other processes) and are resumed when the yielded event fires.

A process may also yield a bare ``float``/``int`` delay — shorthand for
``Timeout(sim, delay)`` with identical semantics and ordering, but
object-free: the calendar entry carries the process itself, so the hot
paths (network hops, CPU bursts, device time) allocate no Event at all.
Use a real :class:`Timeout` when the wait must be cancellable or shared.

The design is intentionally close to the well-known SimPy API so the rest
of the codebase reads naturally to anyone who has simulated systems
before, but it is implemented here from scratch and trimmed to exactly
what the reproduction needs: events, timeouts, processes, interrupts and
``AnyOf``/``AllOf`` conditions.

Example
-------
>>> sim = Simulation()
>>> def hello(sim, log):
...     yield sim.timeout(5.0)
...     log.append(sim.now)
>>> log = []
>>> _ = sim.process(hello(sim, log))
>>> sim.run()
>>> log
[5.0]
"""

from __future__ import annotations

import heapq
from heapq import heappush
from itertools import count
from math import isfinite
from typing import Any, Callable, Generator, Iterable, List, Optional

from .errors import EmptySchedule, Interrupt, SimulationError, StopSimulation

#: Priority used for ordinary events.
NORMAL = 1
#: Priority used for events that must fire before ordinary ones at the
#: same timestamp (used by the kernel when resuming interrupted processes).
URGENT = 0

# Sentinel distinguishing "no value yet" from an event value of ``None``.
_PENDING = object()

#: Fresh events start with this shared immutable tuple instead of a new
#: list: most events collect at most one callback, and the empty-list
#: allocation (plus its GC tracking) is pure overhead for the hundreds
#: of thousands of events a sweep creates.  The first real callback
#: swaps in a list; ``callbacks is None`` still means "processed".
_NO_CALLBACKS = ()


class Event:
    """A happening that processes can wait on.

    An event starts *pending*, becomes *triggered* once scheduled with a
    value (or an exception), and *processed* after its callbacks ran.

    Events are the unit the hot loop allocates by the hundred thousand,
    so the whole hierarchy uses ``__slots__``: no per-instance dict, and
    the flag fields (``_defused``, ``_cancelled``) are plain attributes
    the kernel can read without ``getattr`` fallbacks.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused",
                 "_cancelled")

    def __init__(self, sim: "Simulation"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = \
            _NO_CALLBACKS
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or will be) scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only valid once triggered)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # _schedule inlined: succeed() fires once per grant/completion
        # on every hot path, always at the current time.
        sim = self.sim
        heap = sim._heap
        heappush(heap, (sim._now, NORMAL, next(sim._seq), self))
        if len(heap) > sim._heap_peak:
            sim._heap_peak = len(heap)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed."""
        callbacks = self.callbacks
        if callbacks is None:
            # Already processed: run immediately so late waiters still wake.
            callback(self)
        elif callbacks is _NO_CALLBACKS:
            self.callbacks = [callback]
        else:
            callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


# The value delivered to a process resumed from a plain-number yield.
# A shared, inert, pre-processed Event: _resume() only reads ``_ok`` and
# ``_value`` from it, so one immutable instance serves every wake.
_DELAY_FIRED = Event.__new__(Event)
_DELAY_FIRED.sim = None
_DELAY_FIRED.callbacks = None
_DELAY_FIRED._value = None
_DELAY_FIRED._ok = True
_DELAY_FIRED._defused = True
_DELAY_FIRED._cancelled = False


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulation", delay: float, value: Any = None):
        # Timeouts are the single most-allocated object in any sweep;
        # this constructor inlines Event.__init__ and _schedule (one
        # C-level heappush instead of two method calls per event).
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        if delay and not isfinite(delay):
            # NaN eludes the < 0 test (every comparison is False) and
            # poisons heap ordering; infinities wedge the calendar.
            raise ValueError(f"non-finite delay {delay!r}")
        self.sim = sim
        self.callbacks = _NO_CALLBACKS
        self._ok = True
        self._value = value
        self._defused = False
        self._cancelled = False
        self.delay = delay
        heap = sim._heap
        heappush(heap, (sim._now + delay, NORMAL, next(sim._seq), self))
        if len(heap) > sim._heap_peak:
            sim._heap_peak = len(heap)

    def cancel(self) -> None:
        """Withdraw a pending timeout: its callbacks will never run.

        The calendar entry stays in the heap as a tombstone that the
        drain loop discards (and bulk-compacts when tombstones crowd
        the heap).  Racing patterns — client timeouts superseded by a
        response, bandwidth-share wake-ups superseded by reallocation —
        otherwise leave thousands of dead entries inflating every
        heap operation.  A timeout that already fired is left alone.
        """
        if self.callbacks is None or self._cancelled:
            return
        self._cancelled = True
        self.sim._cancel_scheduled()


class Process(Event):
    """A running generator; itself an event that fires on termination."""

    __slots__ = ("generator", "name", "_target", "_trace_started",
                 "_resume_cb", "_wait_token")

    def __init__(self, sim: "Simulation", generator: Generator,
                 name: Optional[str] = None):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Wake token for bare-number delays (see _resume): bumped by
        # interrupt() so a superseded calendar entry is skipped at pop.
        self._wait_token = 0
        self._trace_started = sim._now if sim.trace is not None else None
        # One bound method for the process's whole life: every wait
        # otherwise materialises a fresh ``self._resume`` object.
        self._resume_cb = self._resume
        # Kick off the generator at the current time (initial event
        # built inline — one per process spawn on the hot path).
        init = Event(sim)
        init._ok = True
        init._value = None
        init.callbacks = [self._resume_cb]
        heap = sim._heap
        heappush(heap, (sim._now, URGENT, next(sim._seq), init))
        if len(heap) > sim._heap_peak:
            sim._heap_peak = len(heap)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self.name} already terminated")
        if self._target is self:
            raise SimulationError("a process cannot interrupt itself")
        wakeup = Event(self.sim)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup._defused = True
        wakeup.callbacks = [self._resume_cb]
        self.sim._schedule(wakeup, priority=URGENT)
        # Invalidate any pending bare-delay calendar entry: the wake it
        # carries has been superseded by this interrupt.
        self._wait_token += 1
        # Detach from whatever it was waiting for.
        if self._target is not None and self._target.callbacks:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._target = None

    def _resume(self, event: Event) -> None:
        # Runs once per event with a waiting process — the single
        # hottest function in any sweep; locals are cached accordingly.
        sim = self.sim
        generator = self.generator
        resume = self._resume_cb
        sim._active_process = self
        while True:
            try:
                if event._ok:
                    target = generator.send(event._value)
                else:
                    # Mark the failure as handled: it is being delivered.
                    event._defused = True
                    target = generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                sim._schedule(self)
                self._trace_end()
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                sim._schedule(self)
                self._trace_end()
                break
            cls = type(target)
            if cls is float or cls is int:
                # Bare-number yield: an object-free timeout.  The
                # calendar entry carries the process and a wake token
                # directly — no Timeout, no callbacks list — which
                # matters because bare delays (network hops, CPU
                # bursts, device time) are the majority of all events
                # in a sweep.  Sequence numbers are consumed at the
                # same point a Timeout would consume them, so event
                # ordering is identical to ``yield Timeout(sim, d)``.
                if target < 0 or (target and not isfinite(target)):
                    exc = ValueError(
                        f"negative delay {target!r}" if target < 0
                        else f"non-finite delay {target!r}")
                    event = Event(sim)
                    event._ok = False
                    event._value = exc
                    continue
                heap = sim._heap
                heappush(heap, (sim._now + target, NORMAL,
                                next(sim._seq), self, self._wait_token))
                if len(heap) > sim._heap_peak:
                    sim._heap_peak = len(heap)
                self._target = None
                break
            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}")
                event = Event(sim)
                event._ok = False
                event._value = exc
                continue
            if target.sim is not sim:
                exc = SimulationError("yielded event from a foreign simulation")
                event = Event(sim)
                event._ok = False
                event._value = exc
                continue
            callbacks = target.callbacks
            if callbacks is not None:
                # Pending or triggered-but-unprocessed: wait for it.
                if callbacks is _NO_CALLBACKS:
                    target.callbacks = [resume]
                else:
                    callbacks.append(resume)
                self._target = target
                break
            # Already processed: loop around and deliver immediately.
            event = target
        sim._active_process = None

    def _trace_end(self) -> None:
        trace = self.sim.trace
        started = self._trace_started
        if trace is None or started is None:
            return
        trace.complete(f"process:{self.name}", started, category="kernel",
                       ok=bool(self._ok))


class Condition(Event):
    """Base for ``AnyOf``/``AllOf`` composite events."""

    __slots__ = ("events", "_unfired")

    def __init__(self, sim: "Simulation", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._unfired = len(self.events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("condition mixes simulations")
            event.add_callback(self._check)
        if not self.events:
            self.succeed({})

    def _collect(self) -> dict:
        # Only *processed* events count: a Timeout is born triggered but
        # has not happened until the calendar reaches it.
        return {e: e._value for e in self.events if e.processed and e._ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(Condition):
    """Fires when the first of its sub-events fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(Condition):
    """Fires when all of its sub-events have fired."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._unfired -= 1
        if self._unfired == 0:
            self.succeed(self._collect())


class Simulation:
    """The event calendar and clock.

    Parameters
    ----------
    start:
        Initial value of the simulated clock (seconds).
    trace:
        Optional :class:`repro.trace.Tracer`.  When given, the kernel
        (and every instrumented layer reaching it as ``sim.trace``)
        emits structured events: process lifecycle spans and
        event-calendar statistics.  ``None`` (the default) keeps every
        instrumented path at a single None-check — no events are
        created and simulation results are bit-identical.
    """

    def __init__(self, start: float = 0.0, trace: Optional[Any] = None):
        self._now = float(start)
        if not isfinite(self._now):
            raise ValueError(f"non-finite start time {start!r}")
        self._heap: list = []
        self._seq = count()
        self._active_process: Optional[Process] = None
        self.trace = trace
        #: Attached fault injector (set by repro.faults.FaultInjector).
        #: ``None`` keeps every fault-aware path at a single None-check,
        #: exactly like ``trace`` — untouched runs stay bit-identical.
        self.faults = None
        self._heap_peak = 0
        # Cancelled-timeout tombstones: live count still in the heap,
        # and the total discarded (popped or compacted away) so
        # calendar_stats can report true processed-event counts.
        self._ncancelled = 0
        self._dropped = 0
        if trace is not None:
            trace.bind(self)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Register ``generator`` as a new process starting now."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all of ``events`` fired."""
        return AllOf(self, events)

    # -- scheduling & execution -----------------------------------------

    def _schedule(self, event: Event, priority: int = NORMAL,
                  delay: float = 0.0) -> None:
        if delay and not isfinite(delay):
            # NaN delays poison heap ordering (every comparison is
            # False) and visibly run the clock backwards; infinities
            # wedge the calendar.  Refuse them at the single choke
            # point every scheduling path funnels through.
            raise ValueError(f"non-finite delay {delay!r}")
        heap = self._heap
        heapq.heappush(heap, (self._now + delay, priority,
                              next(self._seq), event))
        if len(heap) > self._heap_peak:
            self._heap_peak = len(heap)

    def _cancel_scheduled(self) -> None:
        """Account one new tombstone; compact when they crowd the heap.

        Compaction is amortised O(heap): it only triggers once
        tombstones are both numerous (> 512) and the majority of the
        heap, so each discarded entry pays O(1) on average and the
        heap stays near its live size under cancel-heavy workloads.
        """
        self._ncancelled += 1
        heap = self._heap
        if self._ncancelled > 512 and self._ncancelled * 2 > len(heap):
            live = [entry for entry in heap if not entry[3]._cancelled]
            self._dropped += len(heap) - len(live)
            # In-place: run()'s drain loop holds an alias to this list.
            heap[:] = live
            heapq.heapify(heap)
            self._ncancelled = 0

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        heap = self._heap
        while heap:
            head = heap[0]
            if len(head) == 5:
                if head[4] == head[3]._wait_token:
                    break
                heapq.heappop(heap)  # superseded bare-delay wake
                self._dropped += 1
                continue
            if not head[3]._cancelled:
                break
            heapq.heappop(heap)
            self._ncancelled -= 1
            self._dropped += 1
        return heap[0][0] if heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        heap = self._heap
        while True:
            try:
                entry = heapq.heappop(heap)
            except IndexError:
                raise EmptySchedule("no scheduled events") from None
            self._now = entry[0]
            event = entry[3]
            if len(entry) == 5:
                # Bare-delay wake (see Process._resume): resume the
                # process directly unless an interrupt superseded it.
                if entry[4] == event._wait_token:
                    event._resume(_DELAY_FIRED)
                    return
                self._dropped += 1
                continue
            if not event._cancelled:
                break
            self._ncancelled -= 1
            self._dropped += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An un-waited-for failure must not pass silently.
            raise event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until the schedule drains, a time is reached, or an event fires.

        ``until`` may be ``None`` (drain everything), a number (stop when
        the clock reaches it), or an :class:`Event` (stop when it fires and
        return its value).
        """
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    return stop_event._value
                stop_event.add_callback(self._stop_callback)
            else:
                at = float(until)
                if not isfinite(at):
                    raise ValueError(f"non-finite until={until!r}")
                if at < self._now:
                    raise ValueError(
                        f"until={at} lies in the past (now={self._now})")
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                self._schedule(stop_event, priority=URGENT, delay=at - self._now)
                stop_event.callbacks = [self._stop_callback]
        # The drain below is step() inlined: one bound-method call and
        # one try/except per event add ~15% to the hot loop, and this
        # loop is where whole-cluster sweeps spend their time.  step()
        # remains the single-event entry point for external callers.
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap:
                entry = pop(heap)
                self._now = entry[0]
                event = entry[3]
                if len(entry) == 5:
                    # Bare-delay wake (see Process._resume): resume the
                    # process directly — no Event, no callbacks — unless
                    # an interrupt superseded this entry's wake token.
                    if entry[4] == event._wait_token:
                        event._resume(_DELAY_FIRED)
                    else:
                        self._dropped += 1
                    continue
                if event._cancelled:
                    self._ncancelled -= 1
                    self._dropped += 1
                    continue
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    # An un-waited-for failure must not pass silently.
                    raise event._value
        except StopSimulation as stop:
            return stop.value
        finally:
            if self.trace is not None:
                self.trace.instant("calendar", category="kernel",
                                   **self.calendar_stats())
        if stop_event is not None and not stop_event.triggered:
            raise SimulationError(
                "schedule drained before the until-event fired")
        return None

    def calendar_stats(self) -> dict:
        """Event-calendar counters, available traced or untraced.

        ``scheduled`` is read back from the sequence counter (every
        heap entry consumed one tie-break number), so the hot scheduling
        path carries no dedicated accounting; ``processed`` is what left
        the heap and ran callbacks (cancelled-timeout tombstones are
        reported separately as ``dropped``).  All exact, not sampled.
        """
        scheduled = self._seq.__reduce__()[1][0]
        return {"scheduled": scheduled,
                "processed": scheduled - len(self._heap) - self._dropped,
                "dropped": self._dropped,
                "heap_peak": self._heap_peak,
                "heap_now": len(self._heap)}

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        raise event._value
