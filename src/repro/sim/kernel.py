"""A compact, from-scratch discrete-event simulation (DES) kernel.

The kernel follows the classic event-calendar design: a binary heap of
``(time, priority, sequence, event)`` entries is drained in order, and each
popped event runs its callbacks.  Simulated entities are *processes* —
plain Python generators that ``yield`` events (timeouts, resource requests,
other processes) and are resumed when the yielded event fires.

The design is intentionally close to the well-known SimPy API so the rest
of the codebase reads naturally to anyone who has simulated systems
before, but it is implemented here from scratch and trimmed to exactly
what the reproduction needs: events, timeouts, processes, interrupts and
``AnyOf``/``AllOf`` conditions.

Example
-------
>>> sim = Simulation()
>>> def hello(sim, log):
...     yield sim.timeout(5.0)
...     log.append(sim.now)
>>> log = []
>>> _ = sim.process(hello(sim, log))
>>> sim.run()
>>> log
[5.0]
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Iterable, List, Optional

from .errors import EmptySchedule, Interrupt, SimulationError, StopSimulation

#: Priority used for ordinary events.
NORMAL = 1
#: Priority used for events that must fire before ordinary ones at the
#: same timestamp (used by the kernel when resuming interrupted processes).
URGENT = 0

# Sentinel distinguishing "no value yet" from an event value of ``None``.
_PENDING = object()


class Event:
    """A happening that processes can wait on.

    An event starts *pending*, becomes *triggered* once scheduled with a
    value (or an exception), and *processed* after its callbacks ran.
    """

    def __init__(self, sim: "Simulation"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or will be) scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only valid once triggered)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed."""
        if self.callbacks is None:
            # Already processed: run immediately so late waiters still wake.
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, sim: "Simulation", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay=delay)


class Process(Event):
    """A running generator; itself an event that fires on termination."""

    def __init__(self, sim: "Simulation", generator: Generator,
                 name: Optional[str] = None):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        if sim.trace is not None:
            self._trace_started = sim.now
        # Kick off the generator at the current time.
        init = Event(sim)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        sim._schedule(init, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self.name} already terminated")
        if self._target is self:
            raise SimulationError("a process cannot interrupt itself")
        wakeup = Event(self.sim)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup._defused = True
        wakeup.callbacks.append(self._resume)
        self.sim._schedule(wakeup, priority=URGENT)
        # Detach from whatever it was waiting for.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    def _resume(self, event: Event) -> None:
        self.sim._active_process = self
        while True:
            try:
                if event._ok:
                    target = self.generator.send(event._value)
                else:
                    # Mark the failure as handled: it is being delivered.
                    event._defused = True
                    target = self.generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                self.sim._schedule(self)
                self._trace_end()
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.sim._schedule(self)
                self._trace_end()
                break
            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}")
                event = Event(self.sim)
                event._ok = False
                event._value = exc
                continue
            if target.sim is not self.sim:
                exc = SimulationError("yielded event from a foreign simulation")
                event = Event(self.sim)
                event._ok = False
                event._value = exc
                continue
            if target.callbacks is not None:
                # Pending or triggered-but-unprocessed: wait for it.
                target.callbacks.append(self._resume)
                self._target = target
                break
            # Already processed: loop around and deliver immediately.
            event = target
        self.sim._active_process = None

    def _trace_end(self) -> None:
        trace = self.sim.trace
        started = getattr(self, "_trace_started", None)
        if trace is None or started is None:
            return
        trace.complete(f"process:{self.name}", started, category="kernel",
                       ok=bool(self._ok))


class Condition(Event):
    """Base for ``AnyOf``/``AllOf`` composite events."""

    def __init__(self, sim: "Simulation", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._unfired = len(self.events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("condition mixes simulations")
            event.add_callback(self._check)
        if not self.events:
            self.succeed({})

    def _collect(self) -> dict:
        # Only *processed* events count: a Timeout is born triggered but
        # has not happened until the calendar reaches it.
        return {e: e._value for e in self.events if e.processed and e._ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(Condition):
    """Fires when the first of its sub-events fires."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(Condition):
    """Fires when all of its sub-events have fired."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._unfired -= 1
        if self._unfired == 0:
            self.succeed(self._collect())


class Simulation:
    """The event calendar and clock.

    Parameters
    ----------
    start:
        Initial value of the simulated clock (seconds).
    trace:
        Optional :class:`repro.trace.Tracer`.  When given, the kernel
        (and every instrumented layer reaching it as ``sim.trace``)
        emits structured events: process lifecycle spans and
        event-calendar statistics.  ``None`` (the default) keeps every
        instrumented path at a single None-check — no events are
        created and simulation results are bit-identical.
    """

    def __init__(self, start: float = 0.0, trace: Optional[Any] = None):
        self._now = float(start)
        self._heap: list = []
        self._seq = count()
        self._active_process: Optional[Process] = None
        self.trace = trace
        #: Attached fault injector (set by repro.faults.FaultInjector).
        #: ``None`` keeps every fault-aware path at a single None-check,
        #: exactly like ``trace`` — untouched runs stay bit-identical.
        self.faults = None
        self._events_scheduled = 0
        self._events_processed = 0
        self._heap_peak = 0
        if trace is not None:
            trace.bind(self)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Register ``generator`` as a new process starting now."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all of ``events`` fired."""
        return AllOf(self, events)

    # -- scheduling & execution -----------------------------------------

    def _schedule(self, event: Event, priority: int = NORMAL,
                  delay: float = 0.0) -> None:
        heapq.heappush(
            self._heap, (self._now + delay, priority, next(self._seq), event))
        if self.trace is not None:
            self._events_scheduled += 1
            if len(self._heap) > self._heap_peak:
                self._heap_peak = len(self._heap)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        try:
            self._now, _, _, event = heapq.heappop(self._heap)
        except IndexError:
            raise EmptySchedule("no scheduled events") from None
        if self.trace is not None:
            self._events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not getattr(event, "_defused", False):
            # An un-waited-for failure must not pass silently.
            raise event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until the schedule drains, a time is reached, or an event fires.

        ``until`` may be ``None`` (drain everything), a number (stop when
        the clock reaches it), or an :class:`Event` (stop when it fires and
        return its value).
        """
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    return stop_event._value
                stop_event.callbacks.append(self._stop_callback)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until={at} lies in the past (now={self._now})")
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                self._schedule(stop_event, priority=URGENT, delay=at - self._now)
                stop_event.callbacks.append(self._stop_callback)
        try:
            while True:
                self.step()
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            if stop_event is not None and not stop_event.triggered:
                raise SimulationError(
                    "schedule drained before the until-event fired") from None
            return None
        finally:
            if self.trace is not None:
                self.trace.instant("calendar", category="kernel",
                                   **self.calendar_stats())

    def calendar_stats(self) -> dict:
        """Event-calendar counters (collected only while tracing is on)."""
        return {"scheduled": self._events_scheduled,
                "processed": self._events_processed,
                "heap_peak": self._heap_peak,
                "heap_now": len(self._heap)}

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        raise event._value
