"""Measurement probes: time series and periodic samplers.

The paper's Figures 12-17 plot CPU/memory utilisation, power draw and
map/reduce progress over time; :class:`TimeSeries` plus
:func:`periodic_sampler` produce exactly those traces from a running
simulation.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Callable, List, Optional, Sequence, Tuple

from .kernel import Simulation


class TimeSeries:
    """An append-only ``(time, value)`` trace with simple analytics."""

    def __init__(self, name: str = "series"):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def __len__(self) -> int:
        return len(self.times)

    def record(self, time: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time went backwards: {time} < {self.times[-1]}")
        self.times.append(time)
        self.values.append(value)

    def at(self, time: float) -> float:
        """Value of the most recent sample at or before ``time``."""
        if not self.times:
            raise ValueError(f"series {self.name!r} is empty")
        index = bisect_right(self.times, time) - 1
        if index < 0:
            raise ValueError(f"no sample at or before t={time}")
        return self.values[index]

    def mean(self) -> float:
        """Unweighted mean of the sampled values."""
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return sum(self.values) / len(self.values)

    def maximum(self) -> float:
        """Largest sampled value."""
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return max(self.values)

    def integrate(self) -> float:
        """Trapezoidal integral of value dt over the sampled span.

        This is how measured power (W) becomes energy (J): the meter
        samples cluster power and the integral of those samples over
        time is the joule count the paper reports.
        """
        total = 0.0
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            total += 0.5 * (self.values[i] + self.values[i - 1]) * dt
        return total

    def pairs(self) -> Sequence[Tuple[float, float]]:
        """The trace as a list of ``(time, value)`` tuples."""
        return list(zip(self.times, self.values))

    # -- query helpers (the TSDB in repro.telemetry builds on these) ------

    def _window_start(self, window_s: Optional[float],
                      now: Optional[float]) -> Tuple[int, float]:
        """First sample index inside the trailing window, and its end."""
        if not self.times:
            raise ValueError(f"series {self.name!r} is empty")
        end = self.times[-1] if now is None else now
        if window_s is None:
            return 0, end
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        return bisect_left(self.times, end - window_s), end

    def rate(self, window_s: Optional[float] = None,
             now: Optional[float] = None) -> float:
        """Per-second increase over the trailing window, reset-aware.

        Treats the series as a cumulative counter the way PromQL's
        ``rate()`` does: a decrease is a counter reset and contributes
        the post-reset value.  ``now`` anchors the window end (default:
        the last sample).  Returns 0.0 when fewer than two samples fall
        inside the window; raises on an empty series.
        """
        first, _end = self._window_start(window_s, now)
        times = self.times[first:]
        values = self.values[first:]
        if len(times) < 2:
            return 0.0
        elapsed = times[-1] - times[0]
        if elapsed <= 0:
            return 0.0
        increase = 0.0
        for i in range(1, len(values)):
            delta = values[i] - values[i - 1]
            increase += values[i] if delta < 0 else delta
        return increase / elapsed

    def avg_over_time(self, window_s: Optional[float] = None,
                      now: Optional[float] = None) -> Optional[float]:
        """Unweighted mean of the samples in the trailing window.

        Returns ``None`` when the window holds no samples (a stale
        series queried against a later ``now``); raises on an empty
        series.
        """
        first, _end = self._window_start(window_s, now)
        values = self.values[first:]
        if not values:
            return None
        return sum(values) / len(values)

    def max_over_time(self, window_s: Optional[float] = None,
                      now: Optional[float] = None) -> Optional[float]:
        """Largest sample in the trailing window (None when empty)."""
        first, _end = self._window_start(window_s, now)
        values = self.values[first:]
        return max(values) if values else None

    def resample(self, step: float, start: Optional[float] = None,
                 end: Optional[float] = None) -> "TimeSeries":
        """Zero-order-hold samples aligned to multiples of ``step``.

        Grid points are the integer multiples of ``step`` between the
        first sample (or ``start``) and the last sample (or ``end``);
        each carries the most recent value at or before it, so two
        series resampled with the same step land on a shared timeline —
        the alignment the dashboard and the rules engine rely on.
        Raises on an empty series or a non-positive step.
        """
        if step <= 0:
            raise ValueError(f"step must be > 0, got {step}")
        if not self.times:
            raise ValueError(f"series {self.name!r} is empty")
        lo = self.times[0] if start is None else max(start, self.times[0])
        hi = self.times[-1] if end is None else end
        out = TimeSeries(self.name)
        first = self.times[0]
        # Integer grid indices avoid floating-point drift across steps.
        for k in range(math.ceil(lo / step - 1e-9),
                       math.floor(hi / step + 1e-9) + 1):
            t = k * step
            # The epsilon that admits a grid point sitting on the first
            # sample can leave t a few ulps *before* it; hold the value
            # rather than raising over float dust.
            out.record(t, self.at(t if t >= first else first))
        return out


def periodic_sampler(sim: Simulation, interval: float,
                     probe: Callable[[], float],
                     series: TimeSeries,
                     until: Optional[float] = None,
                     tracer=None, category: str = "sample"):
    """Process generator: sample ``probe()`` into ``series`` every ``interval``.

    Start it with ``sim.process(periodic_sampler(...))``.  Sampling stops
    when the simulation drains or, if given, when ``sim.now`` reaches
    ``until``.  When a :class:`repro.trace.Tracer` is passed, each sample
    is also emitted as a counter event so the series lands on the same
    timeline as the spans of a traced run; behaviour is unchanged when
    ``tracer`` is ``None``.
    """
    if interval <= 0:
        raise ValueError(f"interval must be > 0, got {interval}")
    while until is None or sim.now <= until:
        value = probe()
        series.record(sim.now, value)
        if tracer is not None:
            tracer.counter(series.name, value, category=category)
        yield sim.timeout(interval)
