"""Measurement probes: time series and periodic samplers.

The paper's Figures 12-17 plot CPU/memory utilisation, power draw and
map/reduce progress over time; :class:`TimeSeries` plus
:func:`periodic_sampler` produce exactly those traces from a running
simulation.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, List, Optional, Sequence, Tuple

from .kernel import Simulation


class TimeSeries:
    """An append-only ``(time, value)`` trace with simple analytics."""

    def __init__(self, name: str = "series"):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def __len__(self) -> int:
        return len(self.times)

    def record(self, time: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time went backwards: {time} < {self.times[-1]}")
        self.times.append(time)
        self.values.append(value)

    def at(self, time: float) -> float:
        """Value of the most recent sample at or before ``time``."""
        if not self.times:
            raise ValueError(f"series {self.name!r} is empty")
        index = bisect_right(self.times, time) - 1
        if index < 0:
            raise ValueError(f"no sample at or before t={time}")
        return self.values[index]

    def mean(self) -> float:
        """Unweighted mean of the sampled values."""
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return sum(self.values) / len(self.values)

    def maximum(self) -> float:
        """Largest sampled value."""
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return max(self.values)

    def integrate(self) -> float:
        """Trapezoidal integral of value dt over the sampled span.

        This is how measured power (W) becomes energy (J): the meter
        samples cluster power and the integral of those samples over
        time is the joule count the paper reports.
        """
        total = 0.0
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            total += 0.5 * (self.values[i] + self.values[i - 1]) * dt
        return total

    def pairs(self) -> Sequence[Tuple[float, float]]:
        """The trace as a list of ``(time, value)`` tuples."""
        return list(zip(self.times, self.values))


def periodic_sampler(sim: Simulation, interval: float,
                     probe: Callable[[], float],
                     series: TimeSeries,
                     until: Optional[float] = None,
                     tracer=None, category: str = "sample"):
    """Process generator: sample ``probe()`` into ``series`` every ``interval``.

    Start it with ``sim.process(periodic_sampler(...))``.  Sampling stops
    when the simulation drains or, if given, when ``sim.now`` reaches
    ``until``.  When a :class:`repro.trace.Tracer` is passed, each sample
    is also emitted as a counter event so the series lands on the same
    timeline as the spans of a traced run; behaviour is unchanged when
    ``tracer`` is ``None``.
    """
    if interval <= 0:
        raise ValueError(f"interval must be > 0, got {interval}")
    while until is None or sim.now <= until:
        value = probe()
        series.record(sim.now, value)
        if tracer is not None:
            tracer.counter(series.name, value, category=category)
        yield sim.timeout(interval)
