"""Shared-resource primitives built on the DES kernel.

Three primitives cover everything the reproduction needs:

:class:`Resource`
    A fixed number of identical slots with a FIFO wait queue — used for
    CPU virtual cores, disk heads, connection slots and YARN containers.
    It also integrates busy time so utilisation can be sampled for the
    paper's resource-timeline figures.

:class:`Container`
    A continuous level with bounded capacity — used for memory
    occupancy accounting.

:class:`Store`
    A FIFO queue of Python objects — used for message queues between
    simulated services.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from .errors import SimulationError
from .kernel import _NO_CALLBACKS, _PENDING, Event, Simulation


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager inside a process::

        with resource.request() as req:
            yield req
            ... hold the slot ...
        # released on exit
    """

    __slots__ = ("resource", "_in_queue", "_enqueued_at", "_granted_at")

    def __init__(self, resource: "Resource"):
        # Event.__init__ inlined: one Request per CPU burst, disk op
        # and connection slot makes this a hot allocation site.
        self.sim = resource.sim
        self.callbacks = _NO_CALLBACKS
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self._cancelled = False
        self.resource = resource
        self._in_queue = False
        self._enqueued_at = None
        self._granted_at = None
        resource._enqueue(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a request that has not been granted yet."""
        self.resource._cancel(self)


class Resource:
    """``capacity`` identical slots with a FIFO wait queue.

    Busy-time is integrated continuously, which lets monitors compute
    exact utilisation over arbitrary windows (needed for the CPU/memory
    utilisation curves of Figures 12-17).
    """

    def __init__(self, sim: Simulation, capacity: int = 1,
                 name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = int(capacity)
        self.name = name
        # Holders as an insertion-ordered dict: O(1) membership and
        # removal where a list pays an O(n) scan per release, while
        # iteration order still matches grant order.
        self.users: dict = {}
        # The wait queue stays a deque for FIFO grants; cancellations
        # flip ``request._in_queue`` and leave a tombstone that the
        # grant loop discards, so release/cancel are O(1) too.
        self.queue: Deque[Request] = deque()
        self._queued = 0
        self._busy_integral = 0.0
        self._last_change = sim.now

    # -- accounting ------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return self._queued

    def _accumulate(self) -> None:
        now = self.sim._now
        self._busy_integral += len(self.users) * (now - self._last_change)
        self._last_change = now

    def busy_time(self) -> float:
        """Total slot-seconds consumed so far."""
        self._accumulate()
        return self._busy_integral

    def utilization_since(self, t0: float, busy0: float) -> float:
        """Mean utilisation in ``[t0, now]`` given ``busy0 = busy_time()@t0``."""
        elapsed = self.sim.now - t0
        if elapsed <= 0:
            return 0.0
        return (self.busy_time() - busy0) / (self.capacity * elapsed)

    # -- request/release ---------------------------------------------------

    def request(self) -> Request:
        """Claim one slot; the returned event fires when granted."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Return the slot held by ``request`` (no-op if never granted)."""
        if request._in_queue:
            self._cancel(request)
            return
        users = self.users
        if request not in users:
            return
        # _accumulate() inlined — release runs once per CPU burst,
        # disk op and connection.
        now = self.sim._now
        self._busy_integral += len(users) * (now - self._last_change)
        self._last_change = now
        del users[request]
        trace = self.sim.trace
        if trace is not None:
            granted = request._granted_at
            if granted is not None:
                trace.complete(f"{self.name}.hold", granted,
                               category="resource")
        if self._queued:
            self._grant_waiters()

    def _enqueue(self, request: Request) -> None:
        if self.sim.trace is not None:
            request._enqueued_at = self.sim._now
        users = self.users
        if not self._queued and len(users) < self.capacity:
            # Uncontended fast path: grant in place (same accounting
            # and same succeed-at-now scheduling as _grant_waiters,
            # minus the queue round-trip every request otherwise pays).
            now = self.sim._now
            self._busy_integral += len(users) * (now - self._last_change)
            self._last_change = now
            users[request] = None
            trace = self.sim.trace
            if trace is not None:
                request._granted_at = now
            request.succeed(self)
            return
        request._in_queue = True
        self.queue.append(request)
        self._queued += 1
        self._grant_waiters()

    def _cancel(self, request: Request) -> None:
        if not request._in_queue:
            raise SimulationError("cannot cancel a granted request")
        request._in_queue = False
        self._queued -= 1
        # Tombstones normally fall out at grant time; compact if a
        # cancel-heavy burst leaves the deque mostly dead.
        if len(self.queue) > 64 and len(self.queue) > 2 * self._queued:
            self.queue = deque(r for r in self.queue if r._in_queue)

    def _grant_waiters(self) -> None:
        trace = self.sim.trace
        users = self.users
        while self._queued and len(users) < self.capacity:
            request = self.queue.popleft()
            if not request._in_queue:
                continue  # cancelled while waiting
            request._in_queue = False
            self._queued -= 1
            now = self.sim._now
            self._busy_integral += len(users) * (now - self._last_change)
            self._last_change = now
            users[request] = None
            if trace is not None:
                request._granted_at = self.sim._now
                enqueued = request._enqueued_at
                # Contended acquisitions leave a wait span; immediate
                # grants would only add zero-length noise.
                if enqueued is not None and enqueued < self.sim._now:
                    trace.complete(f"{self.name}.wait", enqueued,
                                   category="resource")
            request.succeed(self)


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"put amount must be > 0, got {amount}")
        super().__init__(container.sim)
        self.amount = amount
        container._puts.append(self)
        container._settle()


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"get amount must be > 0, got {amount}")
        super().__init__(container.sim)
        self.amount = amount
        container._gets.append(self)
        container._settle()


class Container:
    """A continuous stock between 0 and ``capacity``.

    ``put`` blocks while the container lacks headroom; ``get`` blocks
    while it lacks stock.  Used for memory-occupancy modelling where
    tasks reserve megabytes rather than discrete slots.
    """

    def __init__(self, sim: Simulation, capacity: float,
                 init: float = 0.0, name: str = "container"):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError("init outside [0, capacity]")
        self.sim = sim
        self.capacity = float(capacity)
        self.level = float(init)
        self.name = name
        self._puts: Deque[ContainerPut] = deque()
        self._gets: Deque[ContainerGet] = deque()

    def put(self, amount: float) -> ContainerPut:
        """Add ``amount``; fires once there is room."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Remove ``amount``; fires once there is stock."""
        return ContainerGet(self, amount)

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._puts and self.level + self._puts[0].amount <= self.capacity:
                put = self._puts.popleft()
                self.level += put.amount
                put.succeed()
                progressed = True
            if self._gets and self.level >= self._gets[0].amount:
                get = self._gets.popleft()
                self.level -= get.amount
                get.succeed()
                progressed = True


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.sim)
        self.item = item
        store._puts.append(self)
        store._settle()


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.sim)
        store._gets.append(self)
        store._settle()


class Store:
    """A FIFO queue of arbitrary items with optional bounded capacity."""

    def __init__(self, sim: Simulation, capacity: float = float("inf"),
                 name: str = "store"):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._puts: Deque[StorePut] = deque()
        self._gets: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Append ``item``; fires once the store has room."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Pop the oldest item; fires once one is available."""
        return StoreGet(self)

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._puts and len(self.items) < self.capacity:
                put = self._puts.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            if self._gets and self.items:
                get = self._gets.popleft()
                get.succeed(self.items.popleft())
                progressed = True
