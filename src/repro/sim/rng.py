"""Deterministic random-number streams for reproducible experiments.

Every stochastic component draws from its own named stream derived from
one root seed, so adding a new component never perturbs the draws of
existing ones — a property the calibration relies on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class RngStreams:
    """A registry of named, independently seeded ``random.Random`` streams."""

    def __init__(self, root_seed: int = 20160901):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """A child registry whose streams are all namespaced by ``name``."""
        return RngStreams(derive_seed(self.root_seed, f"spawn:{name}"))
