"""Deterministic random-number streams for reproducible experiments.

Every stochastic component draws from its own named stream derived from
one root seed, so adding a new component never perturbs the draws of
existing ones — a property the calibration relies on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def heartbeat_jitter(rng: random.Random, base_s: float,
                     low: float = 0.3, high: float = 1.0) -> float:
    """One jittered wait: ``uniform(low, high) * base_s``.

    Heartbeat-paced pollers (YARN allocation, retry probes) de-phase
    their wakeups with this draw; pulling it through the caller's named
    stream keeps every delay reproducible from the run seed.  The
    default ``(0.3, 1.0)`` window and draw order match the historical
    YARN heartbeat jitter bit-for-bit.
    """
    if base_s < 0:
        raise ValueError("base_s must be >= 0")
    if not 0 <= low <= high:
        raise ValueError("need 0 <= low <= high")
    return rng.uniform(low, high) * base_s


def backoff_delay(rng: random.Random, attempt: int, base_s: float,
                  cap_s: float, jitter: float = 0.5) -> float:
    """Capped exponential backoff with seeded jitter.

    Attempt ``n`` (0-based) waits ``min(cap_s, base_s * 2**n)`` scaled
    by a uniform factor in ``[1 - jitter, 1]`` drawn from ``rng`` — the
    "decorrelated enough" jitter that keeps retry herds from
    re-synchronising while staying reproducible from the run seed.
    """
    if attempt < 0:
        raise ValueError("attempt must be >= 0")
    if base_s <= 0 or cap_s <= 0:
        raise ValueError("base_s and cap_s must be > 0")
    if not 0 <= jitter <= 1:
        raise ValueError("jitter must be in [0, 1]")
    delay = base_s * (2.0 ** attempt)
    if delay > cap_s:
        delay = cap_s
    if jitter:
        delay *= 1.0 - jitter * rng.random()
    return delay


class RngStreams:
    """A registry of named, independently seeded ``random.Random`` streams."""

    def __init__(self, root_seed: int = 20160901):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """A child registry whose streams are all namespaced by ``name``."""
        return RngStreams(derive_seed(self.root_seed, f"spawn:{name}"))
