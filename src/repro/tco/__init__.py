"""Section 6 total-cost-of-ownership model."""

from .model import (
    DELL_TCO, EDISON_TCO, HOURS_PER_YEAR, TcoInputs, cluster_tco,
    node_energy_cost, savings_fraction, table10,
)

__all__ = ["DELL_TCO", "EDISON_TCO", "HOURS_PER_YEAR", "TcoInputs",
           "cluster_tco", "node_energy_cost", "savings_fraction", "table10"]
