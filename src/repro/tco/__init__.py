"""Section 6 total-cost-of-ownership model."""

from .model import (
    DELL_TCO, EDISON_TCO, HOURS_PER_YEAR, TcoInputs,
    amortized_hardware_usd, cluster_tco, energy_cost_usd,
    energy_cost_usd_tou, node_energy_cost, savings_fraction, table10,
    weighted_energy_rate,
)

__all__ = ["DELL_TCO", "EDISON_TCO", "HOURS_PER_YEAR", "TcoInputs",
           "amortized_hardware_usd", "cluster_tco", "energy_cost_usd",
           "energy_cost_usd_tou", "node_energy_cost", "savings_fraction",
           "table10", "weighted_energy_rate"]
