"""Section 6 total-cost-of-ownership model."""

from .model import (
    DELL_TCO, EDISON_TCO, HOURS_PER_YEAR, TcoInputs,
    amortized_hardware_usd, cluster_tco, energy_cost_usd,
    node_energy_cost, savings_fraction, table10,
)

__all__ = ["DELL_TCO", "EDISON_TCO", "HOURS_PER_YEAR", "TcoInputs",
           "amortized_hardware_usd", "cluster_tco", "energy_cost_usd",
           "node_energy_cost", "savings_fraction", "table10"]
