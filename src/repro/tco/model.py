"""Total-cost-of-ownership model (Section 6, Equation 1).

    C = Cs + Ce = Cs + Ts * Ceph * (U * Pp + (1 - U) * Pi)

with server cost Cs, electricity price Ceph ($/kWh), lifetime Ts,
utilisation U, peak power Pp and idle power Pi.  Table 9 supplies the
constants; Table 10 evaluates two scenarios (web service, big data)
at low and high utilisation for both cluster designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core import paperdata as paper

HOURS_PER_YEAR = 365.0 * 24.0


@dataclass(frozen=True)
class TcoInputs:
    """Per-node TCO parameters (one row of Table 9)."""

    node_cost_usd: float
    peak_power_w: float
    idle_power_w: float
    lifetime_years: float = paper.T9_LIFETIME_YEARS
    electricity_usd_per_kwh: float = paper.T9_ELECTRICITY_PER_KWH

    def __post_init__(self):
        if self.node_cost_usd < 0:
            raise ValueError("node_cost_usd must be >= 0")
        if self.peak_power_w < self.idle_power_w or self.idle_power_w < 0:
            raise ValueError("need 0 <= idle_power_w <= peak_power_w")
        if self.lifetime_years <= 0 or self.electricity_usd_per_kwh < 0:
            raise ValueError("lifetime and electricity price must be sane")


def node_energy_cost(inputs: TcoInputs, utilization: float) -> float:
    """Lifetime electricity cost of one node at a given utilisation."""
    if not 0 <= utilization <= 1:
        raise ValueError("utilization must be in [0, 1]")
    mean_watts = (utilization * inputs.peak_power_w
                  + (1 - utilization) * inputs.idle_power_w)
    kwh = mean_watts / 1000.0 * HOURS_PER_YEAR * inputs.lifetime_years
    return kwh * inputs.electricity_usd_per_kwh


def cluster_tco(inputs: TcoInputs, nodes: int, utilization: float) -> float:
    """Equation 1 for a whole cluster."""
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    return nodes * (inputs.node_cost_usd
                    + node_energy_cost(inputs, utilization))


def energy_cost_usd(joules: float,
                    usd_per_kwh: float = paper.T9_ELECTRICITY_PER_KWH
                    ) -> float:
    """Electricity cost of ``joules`` of measured energy.

    Equation 1 prices energy from assumed utilisation; a metered run
    has the joules themselves, so the autoscale report charges those
    directly at the Table 9 tariff.
    """
    if joules < 0:
        raise ValueError("joules must be >= 0")
    return joules / 3.6e6 * usd_per_kwh


def weighted_energy_rate(power_series, rate_points) -> float:
    """Integrate a power trace against a piecewise-constant rate.

    ``power_series`` is a sorted iterable of ``(time_s, watts)`` samples
    (a :class:`repro.sim.TimeSeries`'s ``pairs()`` works directly); the
    power between samples is interpolated linearly, exactly as
    :meth:`TimeSeries.integrate` does for plain joules.  ``rate_points``
    is a sorted iterable of ``(start_s, rate_per_kwh)`` steps: each rate
    applies from its start time until the next point's start; the first
    rate also covers any earlier samples.  Returns the rate-weighted
    energy, ``sum(kWh_i * rate_i)`` with every trapezoid split exactly
    at the rate boundaries it straddles.

    This is the common core of time-of-use electricity pricing
    (rate = $/kWh) and grid-carbon accounting (rate = gCO2/kWh).
    """
    pairs = list(power_series.pairs() if hasattr(power_series, "pairs")
                 else power_series)
    steps = list(rate_points)
    if not steps:
        raise ValueError("rate_points must contain at least one step")
    for (t0, _), (t1, _) in zip(steps, steps[1:]):
        if t1 <= t0:
            raise ValueError("rate_points must be sorted by start time")
    total = 0.0
    for (ta, wa), (tb, wb) in zip(pairs, pairs[1:]):
        if tb < ta:
            raise ValueError("power_series must be sorted by time")
        if tb == ta:
            continue
        # Split [ta, tb] at every rate boundary strictly inside it.
        cuts = [ta] + [t for t, _ in steps if ta < t < tb] + [tb]
        slope = (wb - wa) / (tb - ta)
        rate_index = 0
        for x0, x1 in zip(cuts, cuts[1:]):
            while (rate_index + 1 < len(steps)
                   and steps[rate_index + 1][0] <= x0):
                rate_index += 1
            w0 = wa + slope * (x0 - ta)
            w1 = wa + slope * (x1 - ta)
            joules = 0.5 * (w0 + w1) * (x1 - x0)
            total += joules / 3.6e6 * steps[rate_index][1]
    return total


def energy_cost_usd_tou(joules_series, tariff) -> float:
    """Time-of-use electricity cost of a metered power trace.

    The time-of-use variant of :func:`energy_cost_usd`: instead of one
    flat $/kWh, ``tariff`` is a sorted sequence of
    ``(start_s, usd_per_kwh)`` steps (e.g. off-peak/shoulder/peak
    bands), and ``joules_series`` is the power trace whose trapezoidal
    integral is the run's joules — a
    :class:`~repro.sim.TimeSeries` or ``(time_s, watts)`` pairs.
    Trapezoids straddling a tariff boundary are split exactly at it, so
    a constant tariff reproduces :func:`energy_cost_usd` to the float.
    """
    steps = list(tariff)
    for _, usd_per_kwh in steps:
        if usd_per_kwh < 0:
            raise ValueError("tariff rates must be >= 0")
    return weighted_energy_rate(joules_series, steps)


def amortized_hardware_usd(total_node_cost_usd: float, seconds: float,
                           lifetime_years: float = paper.T9_LIFETIME_YEARS
                           ) -> float:
    """The slice of Cs a run of ``seconds`` consumes.

    Straight-line amortisation of the fleet's purchase price over the
    Table 9 lifetime — the dollars a provisioning choice costs even
    while its nodes are powered off.
    """
    if total_node_cost_usd < 0 or seconds < 0:
        raise ValueError("cost and seconds must be >= 0")
    if lifetime_years <= 0:
        raise ValueError("lifetime_years must be > 0")
    lifetime_s = lifetime_years * HOURS_PER_YEAR * 3600.0
    return total_node_cost_usd * seconds / lifetime_s


EDISON_TCO = TcoInputs(
    node_cost_usd=paper.T9_EDISON_NODE_COST,
    peak_power_w=paper.T3_EDISON_BUSY_W,
    idle_power_w=paper.T3_EDISON_IDLE_W,
)

DELL_TCO = TcoInputs(
    node_cost_usd=paper.T9_DELL_NODE_COST,
    peak_power_w=paper.T3_DELL_BUSY_W,
    idle_power_w=paper.T3_DELL_IDLE_W,
)


def table10() -> Dict[tuple, Dict[str, float]]:
    """Reproduce Table 10: 3-year TCO for both scenarios and loads.

    Web service compares 35 Edisons to 3 Dells at the Section 5.1
    layout; big data compares 35 Edisons (assumed pinned at 100 %
    utilisation, as the paper argues) to 2 Dells.
    """
    results: Dict[tuple, Dict[str, float]] = {}
    for load, dell_util in (("low", paper.T9_UTIL_LOW),
                            ("high", paper.T9_UTIL_HIGH)):
        results[("web", load)] = {
            "dell": cluster_tco(DELL_TCO, 3, dell_util),
            "edison": cluster_tco(EDISON_TCO, 35, dell_util),
        }
    for load, dell_util in (("low", paper.T9_BIGDATA_DELL_UTIL_LOW),
                            ("high", paper.T9_BIGDATA_DELL_UTIL_HIGH)):
        results[("bigdata", load)] = {
            "dell": cluster_tco(DELL_TCO, 2, dell_util),
            "edison": cluster_tco(EDISON_TCO, 35, 1.0),
        }
    return results


def savings_fraction(scenario: Dict[str, float]) -> float:
    """How much of the Dell cluster's TCO the Edison cluster saves."""
    return 1.0 - scenario["edison"] / scenario["dell"]
