"""repro.telemetry — cluster monitoring, alerting and SLO reports.

The monitoring plane for the simulated clusters: per-node scrape
agents (:class:`NodeAgent`) run *inside* the simulation, sampling
hardware utilisation, web-tier counters, YARN occupancy and power into
a labeled in-memory time-series store (:class:`TimeSeriesDB`); an
:class:`AlertManager` evaluates threshold/absence/spread rules against
it with a pending→firing→resolved lifecycle; and the run ends with
availability/latency SLO accounting (:class:`SloReport`) plus
time-to-detect scored against the fault injector's ground truth
(:class:`DetectionReport`).  Exporters render the whole bundle as
Prometheus text or a self-contained HTML dashboard whose per-node
sparklines mirror the paper's Figures 12-17.

Attach before running::

    from repro.telemetry import Telemetry, default_rules

    telemetry = Telemetry(rules=default_rules())
    deployment = WebServiceDeployment("edison", "1/8", seed=3)
    telemetry.attach_web(deployment)
    deployment.run_level(64, duration=3.0)
    print(*telemetry.slo_report().lines(), sep="\\n")

Scrapes are pure reads; with no rules attached a monitored run is
bit-identical to an unmonitored one.
"""

from .export import (load_bundle, render_dashboard, save_bundle,
                     summary_lines, to_prometheus, write_dashboard,
                     write_prometheus)
from .rules import (AbsenceRule, Alert, AlertManager,
                    CorrelatedSilenceRule, SpreadRule, ThresholdRule,
                    default_rules)
from .scrapers import ClusterAgent, NodeAgent, Telemetry
from .slo import Detection, DetectionReport, SloReport, SloSpec
from .tsdb import TimeSeriesDB

__all__ = [
    "AbsenceRule", "Alert", "AlertManager", "ClusterAgent",
    "CorrelatedSilenceRule", "Detection",
    "DetectionReport", "NodeAgent", "SloReport", "SloSpec", "SpreadRule",
    "Telemetry", "ThresholdRule", "TimeSeriesDB", "default_rules",
    "load_bundle", "render_dashboard", "save_bundle", "summary_lines",
    "to_prometheus", "write_dashboard", "write_prometheus",
]
