"""Telemetry exporters: JSON bundle, Prometheus text, HTML dashboard.

The *bundle* (a plain dict, produced by
:meth:`~repro.telemetry.scrapers.Telemetry.bundle`) is the interchange
format: the CLI saves it as JSON after a monitored run, and the
``repro report`` subcommand re-loads it to print summaries, emit
Prometheus text exposition, or render a self-contained HTML dashboard
whose per-node sparkline tables mirror the paper's Figures 12-17
(utilisation and power over time, per node).  The dashboard embeds its
series as inline SVG — no JavaScript, no external assets — so the file
can be attached to a CI run and opened anywhere.
"""

from __future__ import annotations

import html
import json
import re
from typing import Dict, List, Sequence, Tuple

from .rules import Alert
from .slo import DetectionReport, SloReport

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: Sparkline geometry (pixels).
_SPARK_W, _SPARK_H = 160, 28


def save_bundle(bundle: Dict, path: str) -> None:
    """Write a telemetry bundle as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(bundle, handle, indent=1)


def load_bundle(path: str) -> Dict:
    """Load a telemetry bundle written by :func:`save_bundle`."""
    with open(path, "r", encoding="utf-8") as handle:
        bundle = json.load(handle)
    if not isinstance(bundle, dict) or "series" not in bundle:
        raise ValueError(f"{path}: not a telemetry bundle")
    return bundle


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_NAME_RE.sub("_", k)}="{v}"'
                     for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def to_prometheus(bundle: Dict) -> str:
    """Latest value of every series in Prometheus text exposition.

    A simulated run has no live scrape endpoint, so this is the
    node-exporter-style snapshot of the final state — suitable for
    ``promtool check metrics`` or pushing through a Pushgateway.
    """
    by_name: Dict[str, List[Tuple[Dict[str, str], float, float]]] = {}
    for entry in bundle.get("series", []):
        if not entry["times"]:
            continue
        by_name.setdefault(entry["name"], []).append(
            (entry.get("labels", {}), entry["times"][-1],
             entry["values"][-1]))
    lines: List[str] = []
    for name in sorted(by_name):
        prom = _prom_name(name)
        kind = "counter" if name.endswith("_total") else "gauge"
        lines.append(f"# TYPE {prom} {kind}")
        for labels, _ts, value in sorted(by_name[name],
                                         key=lambda e: sorted(e[0].items())):
            lines.append(f"{prom}{_prom_labels(labels)} {value!r}")
    return "\n".join(lines) + "\n"


def write_prometheus(bundle: Dict, path: str) -> None:
    """Write :func:`to_prometheus` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_prometheus(bundle))


# -- HTML dashboard -------------------------------------------------------

def _sparkline(times: Sequence[float], values: Sequence[float]) -> str:
    """An inline SVG polyline of the series (decimated to the width)."""
    if not times:
        return ""
    if len(times) > _SPARK_W:
        # One sample per horizontal pixel is all the polyline can show.
        step = len(times) / _SPARK_W
        indices = [int(i * step) for i in range(_SPARK_W)] + [len(times) - 1]
        times = [times[i] for i in indices]
        values = [values[i] for i in indices]
    t_lo, t_hi = times[0], times[-1]
    v_lo, v_hi = min(values), max(values)
    t_span = (t_hi - t_lo) or 1.0
    v_span = (v_hi - v_lo) or 1.0
    points = " ".join(
        f"{(t - t_lo) / t_span * _SPARK_W:.1f},"
        f"{_SPARK_H - 2 - (v - v_lo) / v_span * (_SPARK_H - 4):.1f}"
        for t, v in zip(times, values))
    return (f'<svg width="{_SPARK_W}" height="{_SPARK_H}" '
            f'viewBox="0 0 {_SPARK_W} {_SPARK_H}">'
            f'<polyline fill="none" stroke="#2b6cb0" stroke-width="1.2" '
            f'points="{points}"/></svg>')


def _stat_cells(values: Sequence[float]) -> str:
    mean = sum(values) / len(values)
    return (f"<td>{min(values):.3g}</td><td>{mean:.3g}</td>"
            f"<td>{max(values):.3g}</td><td>{values[-1]:.3g}</td>")


def _metric_section(name: str, entries: List[Dict]) -> List[str]:
    out = [f"<h3><code>{html.escape(name)}</code></h3>",
           "<table><tr><th>series</th><th>trend</th><th>min</th>"
           "<th>mean</th><th>max</th><th>last</th></tr>"]
    def sort_key(entry):
        return sorted(entry.get("labels", {}).items())
    for entry in sorted(entries, key=sort_key):
        labels = entry.get("labels", {})
        label = labels.get("node") or ",".join(
            f"{k}={v}" for k, v in sorted(labels.items())) or "cluster"
        out.append(
            f"<tr><td>{html.escape(label)}</td>"
            f"<td>{_sparkline(entry['times'], entry['values'])}</td>"
            f"{_stat_cells(entry['values'])}</tr>")
    out.append("</table>")
    return out


def _dvfs_section(dvfs: Dict) -> List[str]:
    """Energy-proportionality scorecards from ``bundle["dvfs"]``."""
    from ..dvfs.scorecard import ProportionalityScorecard
    out = ["<h2>Energy proportionality</h2>"]
    for data in dvfs.get("scorecards", []):
        card = ProportionalityScorecard.from_dict(data)
        out.append(f"<h3>{html.escape(card.platform)} {html.escape(card.scale)}"
                   f" — governor {html.escape(card.governor)}</h3>")
        out.append(f"<p>idle {card.idle_w:.2f} W, peak {card.peak_w:.2f} W, "
                   f"dynamic range {card.dynamic_range:.3f}, "
                   f"proportionality gap {card.proportionality_gap:.3f}</p>")
        out.append("<table><tr><th>load</th><th>offered rps</th>"
                   "<th>power</th><th>calls/kJ</th></tr>")
        best = card.best_point
        for point in card.points:
            marker = " &#8592; best" if point is best else ""
            out.append(f"<tr><td>{point.fraction:.0%}</td>"
                       f"<td>{point.offered_rps:.0f}</td>"
                       f"<td>{point.mean_power_w:.2f} W</td>"
                       f"<td>{point.work_per_joule * 1000:.0f}"
                       f"{marker}</td></tr>")
        out.append("</table>")
    return out


def render_dashboard(bundle: Dict) -> str:
    """The bundle as one self-contained HTML page."""
    meta = bundle.get("meta", {})
    title = "repro telemetry"
    if meta.get("kind"):
        title += f" — {meta['kind']}"
    if meta.get("platform"):
        title += f" on {meta['platform']}"
    out = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        "<style>",
        "body{font-family:sans-serif;margin:2em;color:#1a202c}",
        "table{border-collapse:collapse;margin:0.5em 0}",
        "td,th{border:1px solid #cbd5e0;padding:2px 8px;"
        "font-size:13px;text-align:left}",
        "th{background:#edf2f7}",
        ".firing{color:#c53030;font-weight:bold}",
        ".resolved{color:#718096}",
        "pre{background:#f7fafc;border:1px solid #e2e8f0;padding:0.8em}",
        "</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
    ]
    if meta:
        pairs = ", ".join(f"{html.escape(str(k))}={html.escape(str(v))}"
                          for k, v in sorted(meta.items()))
        out.append(f"<p>{pairs}</p>")

    alerts = [Alert.from_dict(a) for a in bundle.get("alerts", [])]
    out.append(f"<h2>Alerts ({len(alerts)})</h2>")
    if alerts:
        out.append("<table><tr><th>rule</th><th>node</th><th>fired</th>"
                   "<th>resolved</th><th>value</th></tr>")
        for alert in alerts:
            state = ("<span class='resolved'>"
                     f"{alert.resolved_at:.2f}s</span>"
                     if alert.resolved_at is not None
                     else "<span class='firing'>firing</span>")
            out.append(f"<tr><td>{html.escape(alert.rule)}</td>"
                       f"<td>{html.escape(alert.node or '-')}</td>"
                       f"<td>{alert.fired_at:.2f}s</td><td>{state}</td>"
                       f"<td>{alert.value:.3g}</td></tr>")
        out.append("</table>")
    else:
        out.append("<p>None fired.</p>")

    if bundle.get("slo"):
        slo = SloReport.from_dict(bundle["slo"])
        out.append("<h2>SLO</h2><pre>"
                   + html.escape("\n".join(slo.lines())) + "</pre>")
    if bundle.get("detection"):
        detection = DetectionReport.from_dict(bundle["detection"])
        out.append("<h2>Fault detection</h2><pre>"
                   + html.escape("\n".join(detection.lines())) + "</pre>")
    if bundle.get("dvfs"):
        out.extend(_dvfs_section(bundle["dvfs"]))

    by_name: Dict[str, List[Dict]] = {}
    for entry in bundle.get("series", []):
        if entry["times"]:
            by_name.setdefault(entry["name"], []).append(entry)
    out.append("<h2>Metrics</h2>")
    for name in sorted(by_name):
        out.extend(_metric_section(name, by_name[name]))
    out.append("</body></html>")
    return "\n".join(out)


def write_dashboard(bundle: Dict, path: str) -> None:
    """Render and write the HTML dashboard."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_dashboard(bundle))


def summary_lines(bundle: Dict) -> List[str]:
    """The CLI ``report`` subcommand's plain-text view of a bundle."""
    meta = bundle.get("meta", {})
    out = []
    if meta:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        out.append(f"Run: {pairs}")
    names = sorted({e["name"] for e in bundle.get("series", [])})
    total = sum(len(e["times"]) for e in bundle.get("series", []))
    out.append(f"Series: {len(bundle.get('series', []))} "
               f"({total} samples, {len(names)} metrics)")
    alerts = [Alert.from_dict(a) for a in bundle.get("alerts", [])]
    if alerts:
        out.append(f"Alerts: {len(alerts)} fired")
        for alert in alerts:
            where = f" on {alert.node}" if alert.node else ""
            state = (f"resolved t={alert.resolved_at:.2f}s"
                     if alert.resolved_at is not None else "still active")
            out.append(f"  {alert.rule}{where}: fired "
                       f"t={alert.fired_at:.2f}s, {state}")
    else:
        out.append("Alerts: none fired")
    if bundle.get("slo"):
        out.extend(SloReport.from_dict(bundle["slo"]).lines())
    if bundle.get("detection"):
        out.extend(DetectionReport.from_dict(bundle["detection"]).lines())
    if bundle.get("dvfs"):
        from ..dvfs.scorecard import ProportionalityScorecard
        for data in bundle["dvfs"].get("scorecards", []):
            out.extend(ProportionalityScorecard.from_dict(data).lines())
    return out
