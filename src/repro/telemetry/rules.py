"""Alerting: threshold / absence / spread rules and the alert lifecycle.

Rules are evaluated *inside* the simulation against the
:class:`~repro.telemetry.tsdb.TimeSeriesDB` the scrapers fill, so an
alert's firing time is a simulated timestamp directly comparable with
the fault injector's ground-truth injection times — that comparison is
the time-to-detect the detection report measures.

The lifecycle mirrors Prometheus Alertmanager's: a breached rule is
*pending* until it has breached continuously for ``for_s`` seconds,
then *firing*; once the condition clears the alert is *resolved* and
kept in the history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from .tsdb import TimeSeriesDB

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


@dataclass(frozen=True)
class ThresholdRule:
    """Fire when a metric crosses a threshold.

    ``window_s == 0`` compares the latest sample; a positive window
    compares ``avg_over_time`` over that trailing window, which rides
    out single-sample spikes.  ``labels`` restricts which series of the
    metric are considered; each matching series alerts independently
    (keyed by its ``node`` label when present).
    """

    name: str
    metric: str
    op: str
    threshold: float
    window_s: float = 0.0
    for_s: float = 0.0
    labels: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unknown op {self.op!r}; use one of "
                             f"{sorted(_OPS)}")
        if self.window_s < 0 or self.for_s < 0:
            raise ValueError("window_s and for_s must be >= 0")

    def breaches(self, db: TimeSeriesDB, now: float
                 ) -> List[Tuple[str, float]]:
        """``(subject, observed value)`` per series in breach at ``now``."""
        out = []
        compare = _OPS[self.op]
        for labels, series in db.select(self.metric, **dict(self.labels)):
            if not series.times:
                continue
            if self.window_s > 0:
                value = series.avg_over_time(window_s=self.window_s, now=now)
                if value is None:
                    continue
            else:
                value = series.values[-1]
            if compare(value, self.threshold):
                out.append((labels.get("node", ""), value))
        return out


@dataclass(frozen=True)
class AbsenceRule:
    """Fire when a series goes silent for longer than ``stale_s``.

    This is the node-down detector: every node agent records ``up=1``
    each scrape while its node is alive, so a crashed node's series
    stops advancing and the gap between ``now`` and its last sample
    grows past ``stale_s``.  The observed value reported with the alert
    is that gap in seconds.
    """

    name: str
    metric: str = "up"
    stale_s: float = 1.0
    for_s: float = 0.0

    def __post_init__(self):
        if self.stale_s <= 0:
            raise ValueError(f"stale_s must be > 0, got {self.stale_s}")
        if self.for_s < 0:
            raise ValueError("for_s must be >= 0")

    def breaches(self, db: TimeSeriesDB, now: float
                 ) -> List[Tuple[str, float]]:
        out = []
        for labels, series in db.select(self.metric):
            if not series.times:
                continue
            silence = now - series.times[-1]
            if silence > self.stale_s:
                out.append((labels.get("node", ""), silence))
        return out


@dataclass(frozen=True)
class CorrelatedSilenceRule(AbsenceRule):
    """Fire when several nodes go silent *together*: silent but alive.

    A lone stale heartbeat is the classic dead-node signature the
    plain :class:`AbsenceRule` catches.  But when a rack's uplink is
    severed, every member's series stops advancing within one scrape
    of each other — the nodes are still burning power and (in the
    split-brain window) still doing work, they just cannot push
    samples.  This rule breaches only for stale series whose *last*
    samples landed within ``correlation_s`` of at least
    ``min_silent - 1`` other stale series, so it stays quiet for
    isolated crashes and fires per-node for partitions.  The detection
    report keys off the rule name to score dead-vs-unreachable
    classification against the injector's ground truth.
    """

    min_silent: int = 2
    correlation_s: float = 0.5

    def __post_init__(self):
        super().__post_init__()
        if self.min_silent < 2:
            raise ValueError("min_silent must be >= 2 (one silent node "
                             "is AbsenceRule's job)")
        if self.correlation_s <= 0:
            raise ValueError("correlation_s must be > 0")

    def breaches(self, db: TimeSeriesDB, now: float
                 ) -> List[Tuple[str, float]]:
        stale = []
        for labels, series in db.select(self.metric):
            if not series.times:
                continue
            silence = now - series.times[-1]
            if silence > self.stale_s:
                stale.append((labels.get("node", ""), series.times[-1],
                              silence))
        out = []
        for node, last, silence in stale:
            peers = sum(1 for _node, other, _s in stale
                        if abs(other - last) <= self.correlation_s)
            if peers >= self.min_silent:
                out.append((node, silence))
        return out


@dataclass(frozen=True)
class SpreadRule:
    """Fire when a metric's max-min spread across nodes is too wide.

    The paper's scale-out experiments assume the load balancer spreads
    work evenly; this rule catches utilisation imbalance (one hot node,
    the rest idle) that would invalidate that assumption.  The subject
    of the alert is the node carrying the maximum.
    """

    name: str
    metric: str
    threshold: float
    window_s: float = 1.0
    for_s: float = 0.0

    def __post_init__(self):
        if self.threshold < 0 or self.window_s <= 0 or self.for_s < 0:
            raise ValueError("threshold/for_s must be >= 0, window_s > 0")

    def breaches(self, db: TimeSeriesDB, now: float
                 ) -> List[Tuple[str, float]]:
        readings = []
        for labels, series in db.select(self.metric):
            if not series.times:
                continue
            value = series.avg_over_time(window_s=self.window_s, now=now)
            if value is not None:
                readings.append((labels.get("node", ""), value))
        if len(readings) < 2:
            return []
        hot = max(readings, key=lambda nv: nv[1])
        cold = min(readings, key=lambda nv: nv[1])
        spread = hot[1] - cold[1]
        if spread > self.threshold:
            return [(hot[0], spread)]
        return []


@dataclass
class Alert:
    """One firing (possibly later resolved) instance of a rule."""

    rule: str
    node: str
    fired_at: float
    value: float
    resolved_at: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.resolved_at is None

    @property
    def duration_s(self) -> Optional[float]:
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.fired_at

    def to_dict(self) -> Dict:
        return {"rule": self.rule, "node": self.node,
                "fired_at": self.fired_at, "value": self.value,
                "resolved_at": self.resolved_at}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Alert":
        return cls(rule=data["rule"], node=data["node"],
                   fired_at=data["fired_at"], value=data["value"],
                   resolved_at=data.get("resolved_at"))


class AlertManager:
    """Evaluates rules periodically and tracks alert state.

    One manager per run; :meth:`run` is spawned as a simulation process
    by the telemetry facade.  Evaluation is read-only against the TSDB
    (no RNG, no resources), so attaching rules cannot perturb the
    simulated workload.
    """

    def __init__(self, db: TimeSeriesDB, rules, interval: float = 0.5,
                 trace=None):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.db = db
        self.rules = list(rules)
        self.interval = interval
        self.trace = trace
        names = [r.name for r in self.rules]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate rule names: {sorted(names)}")
        #: Every alert ever raised, in firing order (resolved in place).
        self.history: List[Alert] = []
        self._active: Dict[Tuple[str, str], Alert] = {}
        self._pending_since: Dict[Tuple[str, str], float] = {}
        self.evaluations = 0

    # -- queries ---------------------------------------------------------

    def active(self) -> List[Alert]:
        """Alerts currently firing."""
        return [a for a in self.history if a.active]

    def firings(self, rule: Optional[str] = None) -> List[Alert]:
        """All alerts of ``rule`` (or all rules), fired order."""
        if rule is None:
            return list(self.history)
        return [a for a in self.history if a.rule == rule]

    # -- evaluation ------------------------------------------------------

    def evaluate(self, now: float) -> List[Alert]:
        """One evaluation pass; returns alerts that newly fired."""
        self.evaluations += 1
        fired: List[Alert] = []
        breached_keys = set()
        for rule in self.rules:
            for_s = getattr(rule, "for_s", 0.0)
            for subject, value in rule.breaches(self.db, now):
                key = (rule.name, subject)
                breached_keys.add(key)
                if key in self._active:
                    self._active[key].value = value
                    continue
                since = self._pending_since.setdefault(key, now)
                if now - since >= for_s:
                    alert = Alert(rule=rule.name, node=subject,
                                  fired_at=now, value=value)
                    self._active[key] = alert
                    self.history.append(alert)
                    fired.append(alert)
                    del self._pending_since[key]
                    if self.trace is not None:
                        self.trace.instant(
                            "alert.fired", category="telemetry",
                            node=subject, rule=rule.name, value=value)
        # Clear pendings and resolve actives whose condition lifted.
        for key in list(self._pending_since):
            if key not in breached_keys:
                del self._pending_since[key]
        for key, alert in list(self._active.items()):
            if key not in breached_keys:
                alert.resolved_at = now
                del self._active[key]
                if self.trace is not None:
                    self.trace.instant(
                        "alert.resolved", category="telemetry",
                        node=alert.node, rule=alert.rule,
                        after_s=now - alert.fired_at)
        return fired

    def run(self, sim, until: Optional[float] = None):
        """Process generator: evaluate every ``interval`` seconds."""
        while until is None or sim.now <= until:
            self.evaluate(sim.now)
            yield sim.timeout(self.interval)


def default_rules(scrape_interval: float = 0.25,
                  latency_p95_s: Optional[float] = None,
                  imbalance: float = 0.5,
                  partitions: bool = False) -> List:
    """The stock rule set the CLI attaches with ``--telemetry``.

    * ``node_silent`` — a node agent missed ~2.5 scrapes (crash/power).
    * ``nodes_unreachable`` — several agents went silent *together*
      (rack/trunk partition symptom); only with ``partitions=True``, so
      runs that never sever anything keep their alert history (and
      pinned bundles) unchanged.
    * ``web_latency_high`` — mean web delay above the Table 7 band edge
      (only when a band is given).
    * ``cpu_imbalance`` — CPU utilisation spread across nodes beyond
      ``imbalance``.
    """
    rules: List = [
        AbsenceRule(name="node_silent", metric="up",
                    stale_s=2.5 * scrape_interval),
        SpreadRule(name="cpu_imbalance", metric="node_cpu_utilization",
                   threshold=imbalance, window_s=4 * scrape_interval,
                   for_s=2 * scrape_interval),
    ]
    if partitions:
        rules.insert(1, CorrelatedSilenceRule(
            name="nodes_unreachable", metric="up",
            stale_s=2.5 * scrape_interval,
            correlation_s=2 * scrape_interval))
    if latency_p95_s is not None:
        rules.append(ThresholdRule(
            name="web_latency_high", metric="web_mean_delay_s", op=">",
            threshold=latency_p95_s, window_s=4 * scrape_interval,
            for_s=2 * scrape_interval))
    return rules
