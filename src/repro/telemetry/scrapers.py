"""Per-node scrape agents and the :class:`Telemetry` facade.

Each simulated node gets a :class:`NodeAgent` — the stand-in for a
node_exporter/collectd daemon — running as a simulation process that
periodically samples that node's state into the shared
:class:`~repro.telemetry.tsdb.TimeSeriesDB`:

* hardware utilisation (CPU/memory/disk/NIC) and instantaneous power,
* CPU run-queue depth,
* web-tier counters (connections, in-flight calls, requests, errors,
  delays) when the node hosts a web server,
* YARN container memory occupancy when the node runs a NodeManager,
* a heartbeat ``up`` series whose *absence* is how node death is
  detected.

Scrapes are pure reads.  Agents never draw random numbers, never
acquire simulated resources, and probe utilisation through
:meth:`~repro.hardware.server.Server.utilization_now` (which does not
advance the power meter's probe windows), so attaching telemetry to a
run leaves its results bit-identical — the monitoring plane observes
the experiment without becoming part of it.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..trace.metrics import MetricsRegistry
from .rules import AlertManager
from .slo import DetectionReport, SloReport, SloSpec
from .tsdb import TimeSeriesDB

#: Default scrape cadence: matches the web meter's 0.25 s sampling.
DEFAULT_INTERVAL = 0.25


class NodeAgent:
    """The per-node scraper; one instance per simulated server."""

    def __init__(self, telemetry: "Telemetry", server,
                 web_node=None, node_manager=None):
        self.telemetry = telemetry
        self.server = server
        self.node = server.name
        self.web_node = web_node
        self.node_manager = node_manager
        self.samples = 0
        # High-water mark into the web node's append-only call log, so
        # each scrape only walks records that arrived since the last.
        self._record_index = 0
        self._errors = 0

    def run(self, sim, until: Optional[float] = None):
        """Process generator: scrape every ``telemetry.interval``."""
        interval = self.telemetry.interval
        while until is None or sim.now <= until:
            faults = sim.faults
            # A partitioned node is alive but its pushes never reach the
            # central TSDB, so it goes silent exactly like a dead one —
            # which is why dead-vs-unreachable needs the correlation
            # rule, not a smarter agent.
            if faults is None or (faults.is_up(self.node)
                                  and faults.is_reachable(self.node)):
                self.scrape(sim.now)
            yield sim.timeout(interval)

    def scrape(self, now: float) -> None:
        """Take one sample set.  Pure reads only — see module docstring."""
        db = self.telemetry.db
        node = self.node
        self.samples += 1
        db.record(now, "up", 1.0, node=node)
        utilization = self.server.utilization_now()
        db.record(now, "node_cpu_utilization", utilization["cpu"], node=node)
        db.record(now, "node_mem_utilization", utilization["mem"], node=node)
        db.record(now, "node_disk_utilization", utilization["disk"],
                  node=node)
        db.record(now, "node_net_utilization", utilization["net"], node=node)
        db.record(now, "cpu_queue_depth",
                  float(self.server.cpu.vcores.queue_length), node=node)
        db.record(now, "node_power_w",
                  self.server.spec.power.power(utilization,
                                               self.server.cpu.pstate),
                  node=node)
        if self.web_node is not None:
            self._scrape_web(now, db, node)
        if self.node_manager is not None:
            nm = self.node_manager
            db.record(now, "yarn_container_mem_mb",
                      float(nm.total_mem_mb - nm.free_mem_mb), node=node)

    def _scrape_web(self, now: float, db: TimeSeriesDB, node: str) -> None:
        web = self.web_node
        db.record(now, "web_connections", float(web.established), node=node)
        db.record(now, "web_active_calls", float(web.active_calls),
                  node=node)
        db.record(now, "web_syn_drops_total", float(web.syn_drops),
                  node=node)
        # Walk only the records appended since the previous scrape; the
        # log is append-only (reboots bump the epoch, not the list).
        fresh = web.records[self._record_index:]
        self._record_index = len(web.records)
        delays = []
        histogram = self.telemetry.metrics.histogram("web.delay_s")
        exemplars = self.telemetry.exemplars
        for record in fresh:
            if record.ok:
                delays.append(record.total_s)
                histogram.observe(record.total_s)
                if exemplars is not None and record.trace_id:
                    # Deterministic worst-per-bucket keep: no RNG, so
                    # exemplar collection can never perturb the run.
                    exemplars.observe(record.total_s, record.trace_id)
            elif not record.shed:
                # Shed 503s are deliberate backpressure the resilient
                # client retries elsewhere; they show up in
                # web_shed_total, and any call the user actually lost
                # is charged through client_failures instead.
                self._errors += 1
        db.record(now, "web_requests_total", float(self._record_index),
                  node=node)
        db.record(now, "web_errors_total", float(self._errors), node=node)
        if web.resilience is not None:
            db.record(now, "web_shed_total", float(web.shed_calls),
                      node=node)
        if delays:
            db.record(now, "web_mean_delay_s",
                      sum(delays) / len(delays), node=node)


class ClusterAgent:
    """Cluster-wide scraper: mirrors the power meter and alive count."""

    def __init__(self, telemetry: "Telemetry", cluster, meter=None):
        self.telemetry = telemetry
        self.cluster = cluster
        self.meter = meter

    def run(self, sim, until: Optional[float] = None):
        interval = self.telemetry.interval
        db = self.telemetry.db
        while until is None or sim.now <= until:
            faults = sim.faults
            names = list(self.cluster.servers)
            alive = sum(1 for n in names
                        if faults is None or faults.is_up(n))
            db.record(sim.now, "cluster_nodes_up", float(alive))
            if self.meter is not None and self.meter.series.times:
                # Re-publish the meter's latest reading rather than
                # re-probing: probing would advance the utilisation
                # windows the meter itself depends on.
                db.record(sim.now, "cluster_power_w",
                          self.meter.series.values[-1])
            yield sim.timeout(interval)


class Telemetry:
    """The monitoring plane for one run: scrapers + TSDB + alerting.

    Construct one, attach it to a deployment or job runner *before*
    running, then read reports afterwards::

        telemetry = Telemetry(rules=default_rules())
        deployment = WebServiceDeployment("edison", "1/8", seed=3)
        telemetry.attach_web(deployment)
        result = deployment.run_level(64, duration=3.0)
        print(*telemetry.slo_report().lines(), sep="\\n")

    With no rules the attachment is observation-only and the run's
    results are bit-identical to an unmonitored run (asserted by
    ``tests/test_telemetry_invariance.py``).
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL, rules=(),
                 slo: Optional[SloSpec] = None,
                 retention_samples: Optional[int] = None,
                 eval_interval: Optional[float] = None,
                 exemplars: bool = False):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.interval = interval
        self.db = TimeSeriesDB(retention_samples=retention_samples)
        self.metrics = MetricsRegistry()
        # Opt-in exemplar store: the latency histogram keeps the worst
        # trace id per bucket so SLO lines link to causal trees.  The
        # run must be traced for records to carry trace ids at all.
        if exemplars:
            from ..causality.exemplars import ExemplarStore
            self.exemplars: Optional["ExemplarStore"] = ExemplarStore()
        else:
            self.exemplars = None
        self.slo = slo if slo is not None else SloSpec()
        rules = list(rules)
        self.alerts = AlertManager(
            self.db, rules,
            interval=eval_interval if eval_interval is not None
            else interval)
        self.sim = None
        self.agents: List[NodeAgent] = []
        self.meta: Dict[str, object] = {}
        # Client-observed failures reported by the driver/probes: the
        # server never logs these (a timed-out call finishes "OK" after
        # the user has left), so they arrive by notification instead of
        # by scrape.  See SloReport.client_failures.
        self.client_timeouts = 0
        self.client_give_ups = 0

    # -- attachment ------------------------------------------------------

    def attach_web(self, deployment, until: Optional[float] = None) -> None:
        """Monitor a :class:`~repro.web.WebServiceDeployment`."""
        web_by_server = {web.server.name: web
                         for web in deployment.web_nodes}
        self.meta.update(kind="web", platform=deployment.platform,
                         scale=deployment.scale)
        # Let the deployment push client-side outcomes (timeouts,
        # give-ups) to us — they exist only at the client.
        deployment.telemetry = self
        self._attach(deployment.sim, deployment.cluster,
                     web_by_server=web_by_server,
                     meter=deployment.meter, until=until)

    def attach_job(self, runner, until: Optional[float] = None) -> None:
        """Monitor a :class:`~repro.mapreduce.JobRunner`."""
        self.meta.update(kind="job", platform=runner.platform)
        self._attach(runner.sim, runner.cluster,
                     yarn_nodes=runner.yarn.nodes,
                     meter=runner.meter, until=until)

    def _attach(self, sim, cluster, web_by_server=None, yarn_nodes=None,
                meter=None, until: Optional[float] = None) -> None:
        if self.sim is not None:
            raise RuntimeError("telemetry is already attached to a run")
        self.sim = sim
        self.alerts.trace = sim.trace
        web_by_server = web_by_server or {}
        yarn_nodes = yarn_nodes or {}
        for name, server in cluster.servers.items():
            agent = NodeAgent(self, server,
                              web_node=web_by_server.get(name),
                              node_manager=yarn_nodes.get(name))
            self.agents.append(agent)
            sim.process(agent.run(sim, until=until),
                        name=f"telemetry-agent-{name}")
        cluster_agent = ClusterAgent(self, cluster, meter=meter)
        sim.process(cluster_agent.run(sim, until=until),
                    name="telemetry-cluster")
        if self.alerts.rules:
            sim.process(self.alerts.run(sim, until=until),
                        name="telemetry-alerts")

    def note_client_outcomes(self, timeouts: int = 0,
                             give_ups: int = 0) -> None:
        """Record client-observed failures no server-side scrape sees."""
        if timeouts < 0 or give_ups < 0:
            raise ValueError("client outcome counts must be >= 0")
        self.client_timeouts += timeouts
        self.client_give_ups += give_ups

    # -- reports ---------------------------------------------------------

    def slo_report(self) -> SloReport:
        """Availability + latency SLO accounting for the observed run."""
        requests = 0
        errors = 0
        for _labels, series in self.db.select("web_requests_total"):
            if series.values:
                requests += int(series.values[-1])
        for _labels, series in self.db.select("web_errors_total"):
            if series.values:
                errors += int(series.values[-1])
        histogram = self.metrics.histogram("web.delay_s")
        p95 = histogram.percentile(95.0) if histogram.count else None
        worst = None
        if self.exemplars is not None:
            exemplar = self.exemplars.worst()
            if exemplar is not None:
                worst = exemplar.to_dict()
        return SloReport(spec=self.slo, requests=requests, errors=errors,
                         p95_s=p95,
                         client_failures=(self.client_timeouts
                                          + self.client_give_ups),
                         worst_exemplar=worst)

    def detection_report(self) -> DetectionReport:
        """Alert firings scored against the injector's ground truth."""
        records = []
        if self.sim is not None and self.sim.faults is not None:
            records = self.sim.faults.records
        return DetectionReport.match(records, self.alerts.history)

    # -- persistence -----------------------------------------------------

    def bundle(self, meta: Optional[Dict] = None) -> Dict:
        """The whole monitored run as one JSON-friendly dict."""
        merged = dict(self.meta)
        if meta:
            merged.update(meta)
        slo = self.slo_report()
        detection = self.detection_report()
        bundle = {
            "meta": merged,
            "series": self.db.to_dicts(),
            "alerts": [a.to_dict() for a in self.alerts.history],
            "slo": slo.to_dict(),
            "detection": detection.to_dict(),
            "metrics": self.metrics.snapshot(),
        }
        if self.exemplars is not None:
            bundle["exemplars"] = self.exemplars.to_dict()
        return bundle

    def save(self, path: str, meta: Optional[Dict] = None) -> None:
        """Write the telemetry bundle to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.bundle(meta), handle, indent=1)

    def alert_lines(self) -> List[str]:
        """Human-readable alert history for CLI summaries."""
        if not self.alerts.history:
            return ["Alerts: none fired"]
        out = [f"Alerts ({len(self.alerts.history)} fired)"]
        for alert in self.alerts.history:
            where = f" on {alert.node}" if alert.node else ""
            if alert.resolved_at is None:
                out.append(f"  {alert.rule}{where}: fired "
                           f"t={alert.fired_at:.2f}s, still active")
            else:
                out.append(f"  {alert.rule}{where}: fired "
                           f"t={alert.fired_at:.2f}s, resolved "
                           f"t={alert.resolved_at:.2f}s")
        return out
