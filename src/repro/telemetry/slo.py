"""SLO accounting and fault-detection scoring for a monitored run.

Two reports close the observability loop:

* :class:`SloReport` — availability (fraction of web calls answered
  200) and latency (p95 against the Table 7 interactivity band)
  service-level objectives, with classic error-budget arithmetic.
* :class:`DetectionReport` — for every ground-truth fault the injector
  recorded, the first alert that saw it and the time-to-detect.  The
  injector's :class:`~repro.faults.injector.FaultRecord` list is the
  ground truth the paper's recovery timelines (Figures 14-17) are drawn
  against, so detection latency is measured on the same clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..faults.models import NODE_DOWN_KINDS, PARTITION_KINDS

#: Which alert rules assert "silent but alive" rather than "dead".
#: Anything not listed here is read as a dead-node claim.
DEFAULT_RULE_CLASSES: Mapping[str, str] = {"nodes_unreachable": "unreachable"}


def expected_class(kind: str) -> str:
    """Ground-truth dead-vs-unreachable label for a fault kind.

    ``"down"`` for kinds that stop the node, ``"unreachable"`` for
    partitions (the node keeps running, its heartbeats just cannot get
    out), and ``""`` for gray degradations the absence rules are not
    expected to classify at all.
    """
    if kind in PARTITION_KINDS:
        return "unreachable"
    if kind in NODE_DOWN_KINDS:
        return "down"
    return ""


@dataclass(frozen=True)
class SloSpec:
    """Targets a run is held to.

    ``latency_p95_s`` defaults to the paper's 3-second interactivity
    bound (Section 5.2: the delay past which a web page no longer feels
    interactive), which is the band Table 7 peak-load columns are read
    against.
    """

    availability_target: float = 0.999
    latency_p95_s: float = 3.0

    def __post_init__(self):
        if not 0.0 < self.availability_target <= 1.0:
            raise ValueError("availability_target must be in (0, 1]")
        if self.latency_p95_s <= 0:
            raise ValueError("latency_p95_s must be > 0")


@dataclass(frozen=True)
class SloReport:
    """Measured service levels vs. an :class:`SloSpec`.

    ``client_failures`` are outcomes only the client saw: give-ups
    after exhausted SYN retries and calls abandoned at the client
    timeout.  A server-side log never records them (a timed-out call
    completes "successfully" on the server after the user left), yet
    the user experienced an outage — so each one counts as one more
    request *and* one more error in every availability figure below.

    ``worst_exemplar`` (when the run collected exemplars) is the
    slowest trace-linked observation — a ``{value, trace_id, bucket}``
    dict pointing at the causal tree to pull up when the latency line
    reads MISSED.
    """

    spec: SloSpec
    requests: int
    errors: int
    p95_s: Optional[float]
    client_failures: int = 0
    worst_exemplar: Optional[Dict] = None

    @property
    def total_requests(self) -> int:
        """Server-observed requests plus client-only failures."""
        return self.requests + self.client_failures

    @property
    def total_errors(self) -> int:
        """Server-observed errors plus client-only failures."""
        return self.errors + self.client_failures

    @property
    def availability(self) -> Optional[float]:
        if self.total_requests == 0:
            return None
        return 1.0 - self.total_errors / self.total_requests

    @property
    def error_budget(self) -> int:
        """Errors the availability target allows for this many requests."""
        return int(self.total_requests
                   * (1.0 - self.spec.availability_target))

    @property
    def budget_consumed(self) -> Optional[float]:
        """Fraction of the error budget burned (None with no budget)."""
        budget = self.error_budget
        if budget == 0:
            return None
        return self.total_errors / budget

    @property
    def availability_met(self) -> Optional[bool]:
        availability = self.availability
        if availability is None:
            return None
        return availability >= self.spec.availability_target

    @property
    def latency_met(self) -> Optional[bool]:
        if self.p95_s is None:
            return None
        return self.p95_s <= self.spec.latency_p95_s

    def to_dict(self) -> Dict:
        return {
            "availability_target": self.spec.availability_target,
            "latency_p95_target_s": self.spec.latency_p95_s,
            "requests": self.requests,
            "errors": self.errors,
            "client_failures": self.client_failures,
            "availability": self.availability,
            "p95_s": self.p95_s,
            "error_budget": self.error_budget,
            "budget_consumed": self.budget_consumed,
            "availability_met": self.availability_met,
            "latency_met": self.latency_met,
            "worst_exemplar": self.worst_exemplar,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SloReport":
        return cls(spec=SloSpec(
            availability_target=data["availability_target"],
            latency_p95_s=data["latency_p95_target_s"]),
            requests=data["requests"], errors=data["errors"],
            p95_s=data["p95_s"],
            client_failures=data.get("client_failures", 0),
            worst_exemplar=data.get("worst_exemplar"))

    def lines(self) -> List[str]:
        head = f"SLO report ({self.requests} requests, {self.errors} errors"
        if self.client_failures:
            head += f", {self.client_failures} client-side failures"
        out = [head + ")"]
        availability = self.availability
        if availability is None:
            out.append("  availability: no requests observed")
        else:
            verdict = "met" if self.availability_met else "MISSED"
            out.append(f"  availability: {availability:.4%} "
                       f"(target {self.spec.availability_target:.3%}) "
                       f"-- {verdict}")
            consumed = self.budget_consumed
            if consumed is not None:
                out.append(f"  error budget: {self.total_errors}/"
                           f"{self.error_budget} ({consumed:.0%} consumed)")
        if self.p95_s is None:
            out.append("  latency p95: no successful calls observed")
        else:
            verdict = "met" if self.latency_met else "MISSED"
            out.append(f"  latency p95: {self.p95_s * 1000:.1f} ms "
                       f"(target {self.spec.latency_p95_s * 1000:.0f} ms) "
                       f"-- {verdict}")
        if self.worst_exemplar is not None:
            ex = self.worst_exemplar
            out.append(f"  worst exemplar: {ex['value'] * 1000:.1f} ms "
                       f"-> trace {ex['trace_id']}")
        return out


@dataclass(frozen=True)
class Detection:
    """One injected fault and how the alerting plane saw it.

    ``expected`` is the ground-truth dead-vs-unreachable label from the
    fault kind (``""`` when the kind carries no expectation) and
    ``observed`` is what the covering alerts claimed; a partition seen
    only by ``node_silent`` is a *misclassification* — the operator
    would have declared a live rack dead.
    """

    kind: str
    node: str
    injected_at: float
    detected_at: Optional[float]
    rule: Optional[str]
    expected: str = ""
    observed: str = ""

    @property
    def detected(self) -> bool:
        return self.detected_at is not None

    @property
    def time_to_detect(self) -> Optional[float]:
        if self.detected_at is None:
            return None
        return self.detected_at - self.injected_at

    @property
    def classified_ok(self) -> Optional[bool]:
        """True/False when classification was expected and seen; else None."""
        if not self.expected or not self.detected:
            return None
        return self.observed == self.expected

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "node": self.node,
                "injected_at": self.injected_at,
                "detected_at": self.detected_at, "rule": self.rule,
                "expected": self.expected, "observed": self.observed,
                "time_to_detect": self.time_to_detect}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Detection":
        return cls(kind=data["kind"], node=data["node"],
                   injected_at=data["injected_at"],
                   detected_at=data.get("detected_at"),
                   rule=data.get("rule"),
                   expected=data.get("expected", ""),
                   observed=data.get("observed", ""))


@dataclass(frozen=True)
class DetectionReport:
    """Alert firings matched against ground-truth fault injections."""

    detections: Tuple[Detection, ...] = ()

    @classmethod
    def match(cls, fault_records, alerts,
              rule_classes: Optional[Mapping[str, str]] = None,
              class_window_s: float = 1.0) -> "DetectionReport":
        """Pair each fault record with the first alert that covers it.

        An alert covers a fault when it names the fault's node — or,
        for partition records that carry an explicit member set, any
        node the record :meth:`~repro.faults.injector.FaultRecord.covers`
        — and fired at or after the injection time (late alerts still
        count as detections with a large time-to-detect; the report
        makes slowness visible rather than hiding it).  Each alert is
        consumed at most once so two back-to-back faults need two
        firings.

        Classification is scored separately from consumption: every
        covering alert co-fired within ``class_window_s`` of the match
        votes, and one "silent but alive" claim (``rule_classes`` maps
        rule name to ``"unreachable"``) outvotes any number of
        dead-node claims — exactly how an operator reads a page that
        says both "8 nodes silent" and "they went silent together".
        """
        classes = (DEFAULT_RULE_CLASSES if rule_classes is None
                   else rule_classes)

        def covers(record, name):
            fn = getattr(record, "covers", None)
            return fn(name) if fn is not None else name == record.node

        remaining = sorted(alerts, key=lambda a: a.fired_at)
        used = [False] * len(remaining)
        detections = []
        for record in sorted(fault_records, key=lambda r: r.start):
            expected = expected_class(record.kind)
            hit = None
            for i, alert in enumerate(remaining):
                if used[i] or not covers(record, alert.node):
                    continue
                if alert.fired_at >= record.start:
                    hit = i
                    break
            if hit is None:
                detections.append(Detection(
                    kind=record.kind, node=record.node,
                    injected_at=record.start, detected_at=None, rule=None,
                    expected=expected))
            else:
                used[hit] = True
                alert = remaining[hit]
                votes = {classes.get(a.rule, "down") for a in remaining
                         if covers(record, a.node)
                         and record.start <= a.fired_at
                         <= alert.fired_at + class_window_s}
                observed = ("unreachable" if "unreachable" in votes
                            else "down")
                detections.append(Detection(
                    kind=record.kind, node=record.node,
                    injected_at=record.start,
                    detected_at=alert.fired_at, rule=alert.rule,
                    expected=expected, observed=observed))
        return cls(detections=tuple(detections))

    @property
    def detected_count(self) -> int:
        return sum(1 for d in self.detections if d.detected)

    @property
    def mean_time_to_detect(self) -> Optional[float]:
        ttds = [d.time_to_detect for d in self.detections if d.detected]
        if not ttds:
            return None
        return sum(ttds) / len(ttds)

    @property
    def misclassified(self) -> Tuple[Detection, ...]:
        """Detections whose dead-vs-unreachable call was wrong."""
        return tuple(d for d in self.detections
                     if d.classified_ok is False)

    @property
    def classification_accuracy(self) -> Optional[float]:
        """Fraction of scoreable detections classified correctly."""
        scored = [d.classified_ok for d in self.detections
                  if d.classified_ok is not None]
        if not scored:
            return None
        return sum(scored) / len(scored)

    def to_dict(self) -> Dict:
        return {"detections": [d.to_dict() for d in self.detections],
                "detected": self.detected_count,
                "injected": len(self.detections),
                "mean_time_to_detect": self.mean_time_to_detect,
                "classification_accuracy": self.classification_accuracy,
                "misclassified": len(self.misclassified)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "DetectionReport":
        return cls(detections=tuple(
            Detection.from_dict(d) for d in data.get("detections", ())))

    def lines(self) -> List[str]:
        if not self.detections:
            return ["Detection report: no faults were injected"]
        out = [f"Detection report ({self.detected_count}/"
               f"{len(self.detections)} faults detected)"]
        for d in self.detections:
            if d.detected:
                suffix = ""
                if d.classified_ok is True:
                    suffix = f" [classified {d.observed}]"
                elif d.classified_ok is False:
                    suffix = (f" [MISCLASSIFIED as {d.observed}, "
                              f"expected {d.expected}]")
                out.append(f"  {d.kind} on {d.node} at t={d.injected_at:.2f}s"
                           f" -> {d.rule} fired at t={d.detected_at:.2f}s"
                           f" (ttd {d.time_to_detect:.2f}s){suffix}")
            else:
                out.append(f"  {d.kind} on {d.node} at t={d.injected_at:.2f}s"
                           f" -> NOT DETECTED")
        mean = self.mean_time_to_detect
        if mean is not None:
            out.append(f"  mean time-to-detect: {mean:.2f}s")
        accuracy = self.classification_accuracy
        if accuracy is not None:
            out.append(f"  dead-vs-unreachable accuracy: {accuracy:.0%}")
        return out
