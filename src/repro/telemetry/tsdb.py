"""An in-memory time-series store with labels, retention and queries.

The monitoring plane's database: every scraped sample lands here as a
``(metric name, label set)`` series backed by the same
:class:`~repro.sim.TimeSeries` the power meter records into, so the
analytics the meter already had (trapezoidal integration, windowed
means) and the new query helpers (``rate()``, ``avg_over_time()``,
aligned resampling) apply uniformly.  Retention bounds memory per
series the way a production TSDB's retention window does, so week-long
simulated runs cannot exhaust the host.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..sim import TimeSeries

#: A frozen label set: sorted ``(key, value)`` pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def label_key(labels: Mapping[str, object]) -> LabelKey:
    """Canonical hashable form of a label mapping."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class TimeSeriesDB:
    """Labeled time series, keyed ``(name, labels)``.

    Parameters
    ----------
    retention_samples:
        When given, each series keeps only its most recent *N* samples;
        older ones are dropped on append.  ``None`` retains everything.
    """

    def __init__(self, retention_samples: Optional[int] = None):
        if retention_samples is not None and retention_samples < 1:
            raise ValueError(
                f"retention_samples must be >= 1, got {retention_samples}")
        self.retention_samples = retention_samples
        self._series: Dict[Tuple[str, LabelKey], TimeSeries] = {}
        #: Samples dropped by retention, for observability of the
        #: observability layer itself.
        self.dropped_samples = 0

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[Tuple[str, Dict[str, str], TimeSeries]]:
        for (name, key), series in self._series.items():
            yield name, dict(key), series

    # -- write side ------------------------------------------------------

    def series(self, name: str, **labels: object) -> TimeSeries:
        """Get or create the series for ``name`` with ``labels``."""
        if not name:
            raise ValueError("series name must be non-empty")
        key = (name, label_key(labels))
        found = self._series.get(key)
        if found is None:
            found = self._series[key] = TimeSeries(name)
        return found

    def record(self, time: float, name: str, value: float,
               **labels: object) -> None:
        """Append one sample, enforcing the retention limit."""
        series = self.series(name, **labels)
        series.record(time, float(value))
        limit = self.retention_samples
        if limit is not None and len(series.times) > limit:
            excess = len(series.times) - limit
            del series.times[:excess]
            del series.values[:excess]
            self.dropped_samples += excess

    # -- read side -------------------------------------------------------

    def names(self) -> List[str]:
        """All metric names present, sorted."""
        return sorted({name for name, _ in self._series})

    def select(self, name: str, **matchers: object
               ) -> List[Tuple[Dict[str, str], TimeSeries]]:
        """Series of metric ``name`` whose labels include ``matchers``."""
        wanted = {str(k): str(v) for k, v in matchers.items()}
        out = []
        for (metric, key), series in self._series.items():
            if metric != name:
                continue
            labels = dict(key)
            if all(labels.get(k) == v for k, v in wanted.items()):
                out.append((labels, series))
        return out

    def last(self, name: str, **labels: object
             ) -> Optional[Tuple[float, float]]:
        """Most recent ``(time, value)`` of one exact series, or None."""
        series = self._series.get((name, label_key(labels)))
        if series is None or not series.times:
            return None
        return series.times[-1], series.values[-1]

    def rate(self, name: str, window_s: Optional[float] = None,
             now: Optional[float] = None, **labels: object) -> float:
        """``rate()`` of one exact series (0.0 when it does not exist)."""
        series = self._series.get((name, label_key(labels)))
        if series is None or not series.times:
            return 0.0
        return series.rate(window_s=window_s, now=now)

    def avg_over_time(self, name: str, window_s: Optional[float] = None,
                      now: Optional[float] = None,
                      **labels: object) -> Optional[float]:
        """Windowed mean of one exact series (None when absent/stale)."""
        series = self._series.get((name, label_key(labels)))
        if series is None or not series.times:
            return None
        return series.avg_over_time(window_s=window_s, now=now)

    def aligned(self, name: str, step: float, **labels: object
                ) -> List[Tuple[Dict[str, str], TimeSeries]]:
        """Every series of ``name`` resampled onto the same step grid."""
        return [(found_labels, series.resample(step))
                for found_labels, series in self.select(name, **labels)
                if series.times]

    # -- (de)serialisation ----------------------------------------------

    def to_dicts(self) -> List[Dict]:
        """JSON-friendly dump, one dict per series, sorted for stability."""
        out = []
        for (name, key), series in sorted(self._series.items()):
            out.append({"name": name, "labels": dict(key),
                        "times": list(series.times),
                        "values": list(series.values)})
        return out

    @classmethod
    def from_dicts(cls, dicts: List[Dict],
                   retention_samples: Optional[int] = None
                   ) -> "TimeSeriesDB":
        """Rebuild a database from :meth:`to_dicts` output."""
        db = cls(retention_samples=retention_samples)
        for entry in dicts:
            series = db.series(entry["name"], **entry.get("labels", {}))
            for t, v in zip(entry["times"], entry["values"]):
                series.record(t, v)
        return db
