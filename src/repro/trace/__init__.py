"""repro.trace — structured tracing, metrics and profiling.

The observability subsystem for every simulated layer: a bounded
append-only :class:`TraceLog` of :class:`TraceEvent` records, a
:class:`Tracer` that layers emit spans/instants/counters through, a
:class:`MetricsRegistry` of counters/gauges/log-bucketed
:class:`Histogram` percentiles, and exporters to Chrome trace-event
JSON (Perfetto-loadable), JSON-lines and CSV.

Enable tracing by constructing the simulation with a tracer::

    from repro.sim import Simulation
    from repro.trace import Tracer

    tracer = Tracer()
    sim = Simulation(trace=tracer)
    ...  # run anything; layers emit through sim.trace
    from repro.trace import write_chrome_trace
    write_chrome_trace(tracer.log, "out.json")

When no tracer is attached (``trace=None``, the default) every
instrumented path reduces to a single None-check — no events, no
allocation, identical simulation results.
"""

from .analysis import (TraceDecomposition, delay_decomposition_from_trace,
                       span_time_by_name)
from .context import SpanContext
from .events import (PHASE_COUNTER, PHASE_INSTANT, PHASE_SPAN, TraceEvent,
                     TraceLog)
from .export import read_csv, read_jsonl, to_chrome_trace, \
    write_chrome_trace, write_csv, write_jsonl
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "PHASE_COUNTER",
    "PHASE_INSTANT", "PHASE_SPAN", "SpanContext", "TraceDecomposition",
    "TraceEvent", "TraceLog", "Tracer", "delay_decomposition_from_trace",
    "read_csv", "read_jsonl", "span_time_by_name", "to_chrome_trace",
    "write_chrome_trace", "write_csv", "write_jsonl",
]
