"""Deriving paper-level results back out of a trace.

The point of these helpers is to make the trace a *correctness oracle*:
Table 7's connect/cache/db/total delay decomposition is normally
computed from the web servers' call logs
(:func:`repro.web.measure_delay_decomposition`); here the same
decomposition is re-derived purely from the ``web`` spans a traced run
emitted.  Agreement between the two (tests hold them to < 1 %) means
the trace faithfully covers the simulated request path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .events import TraceLog


@dataclass(frozen=True)
class TraceDecomposition:
    """Mean per-request delays (seconds) re-derived from web spans."""

    requests: int
    db_delay_s: float
    cache_delay_s: float
    total_delay_s: float
    connect_delay_s: float


def delay_decomposition_from_trace(log: TraceLog,
                                   after: float = 0.0) -> TraceDecomposition:
    """Recompute the Table 7 decomposition from ``web`` spans alone.

    Mirrors the call-log computation: only requests starting at or after
    ``after`` with status 200 count; database delay averages over
    cache-miss requests only (requests that have a ``db`` span); cache
    and total delays average over all counted requests.  Connect delay
    averages over the traced connection-establishment spans in the same
    window (one per connection, client-side).
    """
    requests: Dict[int, float] = {}
    cache: Dict[int, float] = {}
    db: Dict[int, float] = {}
    connects = []
    for event in log.spans(category="web"):
        if event.name == "connect":
            if event.ts >= after:
                connects.append(event.dur)
            continue
        rid: Optional[int] = event.attrs.get("req")
        if rid is None:
            continue
        if event.name == "request":
            if event.ts >= after and event.attrs.get("status") == 200:
                requests[rid] = event.dur
        elif event.name == "cache":
            cache[rid] = event.dur
        elif event.name == "db":
            db[rid] = event.dur
    if not requests:
        raise ValueError("trace holds no completed request spans "
                         "in the window")
    counted = list(requests)
    misses = [rid for rid in counted if rid in db]
    return TraceDecomposition(
        requests=len(counted),
        db_delay_s=(sum(db[r] for r in misses) / len(misses)
                    if misses else 0.0),
        cache_delay_s=sum(cache.get(r, 0.0) for r in counted) / len(counted),
        total_delay_s=sum(requests[r] for r in counted) / len(counted),
        connect_delay_s=(sum(connects) / len(connects) if connects else 0.0),
    )


def span_time_by_name(log: TraceLog, category: str) -> Dict[str, float]:
    """Total simulated seconds spent inside each span name of a category.

    The profiling view: where does simulated time go inside a layer?
    """
    totals: Dict[str, float] = {}
    for event in log.spans(category=category):
        totals[event.name] = totals.get(event.name, 0.0) + event.dur
    return totals
