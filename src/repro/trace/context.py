"""Span identity: the W3C-traceparent-style context that links spans.

A :class:`SpanContext` is the identity a unit of work carries with it —
the ``trace_id`` naming the whole causal tree (one client connection,
one MapReduce job), its own ``span_id``, and the ``span_id`` of the
parent that caused it.  Contexts are minted by the bound
:class:`~repro.trace.Tracer` (:meth:`~repro.trace.Tracer.root_context`
and :meth:`~repro.trace.Tracer.child_context`) so instrumented code
never constructs ids by hand, and ``0`` everywhere means "no identity"
— the value legacy events carry, keeping old traces loadable.

The analysis side lives in :mod:`repro.causality`, which folds a
:class:`~repro.trace.TraceLog` of identified spans back into a forest.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SpanContext:
    """Identity of one span inside one causal tree.

    ``trace_id`` is shared by every span in the tree and equals the root
    span's ``span_id``.  ``parent_id`` is 0 for roots.  All ids are
    positive ints drawn from the tracer's single deterministic counter,
    so identical seeds yield identical ids.
    """

    trace_id: int
    span_id: int
    parent_id: int = 0

    def __post_init__(self):
        if self.trace_id <= 0 or self.span_id <= 0:
            raise ValueError("trace_id and span_id must be > 0")
        if self.parent_id < 0:
            raise ValueError("parent_id must be >= 0")

    @property
    def is_root(self) -> bool:
        return self.parent_id == 0

    def to_traceparent(self) -> str:
        """W3C-style ``00-<trace>-<span>-01`` rendering (hex, padded)."""
        return f"00-{self.trace_id:032x}-{self.span_id:016x}-01"
