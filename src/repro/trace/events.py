"""Trace records and the append-only log that collects them.

A :class:`TraceEvent` is one timestamped observation from a simulated
layer — a completed span (``phase == "X"``), an instantaneous marker
(``"i"``) or a counter sample (``"C"``), mirroring the Chrome
trace-event phases so the export in :mod:`repro.trace.export` is a
straight mapping.  A :class:`TraceLog` collects events append-only,
optionally filtered down to a set of categories and optionally bounded
to the most recent *N* events (ring-buffer mode) so week-long simulated
runs cannot exhaust host memory.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional

#: Phase tags (a subset of the Chrome trace-event phases).
PHASE_SPAN = "X"       # complete span: [ts, ts + dur]
PHASE_INSTANT = "i"    # point-in-time marker
PHASE_COUNTER = "C"    # sampled counter value

_VALID_PHASES = frozenset((PHASE_SPAN, PHASE_INSTANT, PHASE_COUNTER))


@dataclass(frozen=True)
class TraceEvent:
    """One observation: what happened, where, and when.

    Parameters
    ----------
    ts:
        Simulated time of the event (seconds).  For spans this is the
        *start* of the span.
    category:
        Coarse grouping used for filtering (``"kernel"``, ``"resource"``,
        ``"yarn"``, ``"task"``, ``"web"``, ``"power"`` ...).
    name:
        What the event is (``"request"``, ``"container.wait"`` ...).
    node:
        Simulated server the event belongs to (``""`` for global events).
    attrs:
        Free-form payload; must stay JSON-serialisable for the exporters.
    phase:
        One of :data:`PHASE_SPAN`, :data:`PHASE_INSTANT`,
        :data:`PHASE_COUNTER`.
    dur:
        Span duration in seconds (0 for non-span events).
    trace_id / span_id / parent_id:
        Causal identity (:class:`~repro.trace.SpanContext`); 0 means the
        emitter carried no context (legacy flat events).  ``trace_id``
        names the whole tree, ``parent_id`` is the causing span's
        ``span_id`` (0 for roots).
    """

    ts: float
    category: str
    name: str
    node: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)
    phase: str = PHASE_INSTANT
    dur: float = 0.0
    trace_id: int = 0
    span_id: int = 0
    parent_id: int = 0

    def __post_init__(self):
        if self.phase not in _VALID_PHASES:
            raise ValueError(f"unknown phase {self.phase!r}")
        if self.ts < 0 or self.dur < 0:
            raise ValueError("ts and dur must be >= 0")
        if self.trace_id < 0 or self.span_id < 0 or self.parent_id < 0:
            raise ValueError("span identity ids must be >= 0")

    @property
    def end(self) -> float:
        """Simulated time the event ends (``ts`` for non-spans)."""
        return self.ts + self.dur


class TraceLog:
    """Append-only event collector with filtering and bounded memory.

    Parameters
    ----------
    max_events:
        When given, keep only the most recent ``max_events`` accepted
        events (ring-buffer mode); :attr:`evicted` counts the overwritten
        ones.
    categories:
        When given, only events whose category is in this set are kept;
        :attr:`filtered` counts the rejected ones.  Emitters can consult
        :meth:`accepts` to skip building attrs for doomed events.
    """

    def __init__(self, max_events: Optional[int] = None,
                 categories: Optional[Iterable[str]] = None):
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.categories = frozenset(categories) if categories else None
        self._events: deque = deque(maxlen=max_events)
        self.accepted = 0
        self.filtered = 0

    # -- write side ------------------------------------------------------

    def accepts(self, category: str) -> bool:
        """True when an event of ``category`` would be kept."""
        return self.categories is None or category in self.categories

    def append(self, event: TraceEvent) -> bool:
        """Record ``event``; returns False when category-filtered out."""
        if not self.accepts(event.category):
            self.filtered += 1
            return False
        self._events.append(event)
        self.accepted += 1
        return True

    # -- read side -------------------------------------------------------

    @property
    def evicted(self) -> int:
        """Accepted events overwritten by the ring buffer."""
        return self.accepted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, category: Optional[str] = None,
               name: Optional[str] = None,
               phase: Optional[str] = None) -> List[TraceEvent]:
        """Retained events, optionally narrowed by category/name/phase."""
        return [e for e in self._events
                if (category is None or e.category == category)
                and (name is None or e.name == name)
                and (phase is None or e.phase == phase)]

    def spans(self, category: Optional[str] = None,
              name: Optional[str] = None) -> List[TraceEvent]:
        """Retained complete spans (phase ``"X"``)."""
        return self.events(category=category, name=name, phase=PHASE_SPAN)

    def counters(self, category: Optional[str] = None,
                 name: Optional[str] = None) -> List[TraceEvent]:
        """Retained counter samples (phase ``"C"``)."""
        return self.events(category=category, name=name, phase=PHASE_COUNTER)
