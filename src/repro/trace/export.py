"""Exporters: Chrome trace-event JSON, JSON-lines and CSV.

``to_chrome_trace`` maps a :class:`~repro.trace.events.TraceLog` onto
the Chrome trace-event format, loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``: spans become complete
("X") events, instants become "i", counter samples become "C", and each
simulated node gets its own named thread track.  Timestamps are emitted
in microseconds as the format requires.

The JSONL and CSV forms round-trip: :func:`read_jsonl` and
:func:`read_csv` re-parse what :func:`write_jsonl` / :func:`write_csv`
wrote into an equivalent :class:`TraceLog` — timestamps and durations
exactly (CSV stores them as ``repr`` so no precision is lost), which is
what lets offline tooling post-process exported traces without access
to the run.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List

from .events import (PHASE_COUNTER, PHASE_INSTANT, PHASE_SPAN, TraceEvent,
                     TraceLog)

#: Chrome trace timestamps are microseconds; the simulation runs in seconds.
_US = 1e6

#: pid under which every track is filed (one simulated cluster = one process).
_PID = 1


def to_chrome_trace(log: TraceLog) -> Dict:
    """Render ``log`` as a Chrome trace-event JSON object (a dict)."""
    tids: Dict[str, int] = {}

    def tid_of(node: str) -> int:
        if node not in tids:
            tids[node] = len(tids)
        return tids[node]

    events: List[Dict] = []
    for event in log:
        entry = {
            "name": event.name,
            "cat": event.category,
            "pid": _PID,
            "tid": tid_of(event.node),
            "ts": event.ts * _US,
            "ph": event.phase,
        }
        if event.phase == PHASE_SPAN:
            entry["dur"] = event.dur * _US
            if event.attrs:
                entry["args"] = dict(event.attrs)
            if event.span_id:
                # Causal identity rides along in args so Perfetto shows
                # it and offline tooling can rebuild the span forest.
                args = entry.setdefault("args", {})
                args["trace_id"] = event.trace_id
                args["span_id"] = event.span_id
                args["parent_id"] = event.parent_id
        elif event.phase == PHASE_COUNTER:
            # Counter tracks plot their args values over time.
            entry["args"] = {event.name: event.attrs.get("value", 0.0)}
        else:
            entry["s"] = "t"   # thread-scoped instant
            if event.attrs:
                entry["args"] = dict(event.attrs)
        events.append(entry)
    metadata: List[Dict] = [{
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": "repro simulation"},
    }]
    for node, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
            "args": {"name": node or "cluster"},
        })
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(log: TraceLog, path: str) -> None:
    """Write ``log`` to ``path`` as Chrome trace-event JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(log), handle)


def write_jsonl(log: TraceLog, path: str) -> None:
    """Write ``log`` to ``path`` as one JSON object per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in log:
            handle.write(json.dumps(_event_dict(event)) + "\n")


#: CSV column order; ``_CSV_LEGACY_HEADER`` (pre-span-identity files) is
#: still accepted by :func:`read_csv`, loading with all ids 0.
_CSV_HEADER = ["ts", "dur", "phase", "category", "name", "node", "attrs",
               "trace_id", "span_id", "parent_id"]
_CSV_LEGACY_HEADER = _CSV_HEADER[:7]


def write_csv(log: TraceLog, path: str) -> None:
    """Write ``log`` to ``path`` as CSV (attrs JSON-encoded in one column)."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_HEADER)
        for event in log:
            writer.writerow((repr(event.ts), repr(event.dur), event.phase,
                             event.category, event.name, event.node,
                             json.dumps(event.attrs), event.trace_id,
                             event.span_id, event.parent_id))


def _event_dict(event: TraceEvent) -> Dict:
    data = {"ts": event.ts, "dur": event.dur, "phase": event.phase,
            "category": event.category, "name": event.name,
            "node": event.node, "attrs": dict(event.attrs)}
    if event.span_id:
        data["trace_id"] = event.trace_id
        data["span_id"] = event.span_id
        data["parent_id"] = event.parent_id
    return data


def read_jsonl(path: str) -> TraceLog:
    """Re-parse a :func:`write_jsonl` file into a fresh TraceLog."""
    log = TraceLog()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            log.append(TraceEvent(
                ts=data["ts"], dur=data["dur"], phase=data["phase"],
                category=data["category"], name=data["name"],
                node=data["node"], attrs=dict(data["attrs"]),
                trace_id=data.get("trace_id", 0),
                span_id=data.get("span_id", 0),
                parent_id=data.get("parent_id", 0)))
    return log


def read_csv(path: str) -> TraceLog:
    """Re-parse a :func:`write_csv` file into a fresh TraceLog."""
    log = TraceLog()
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header not in (_CSV_HEADER, _CSV_LEGACY_HEADER):
            raise ValueError(f"{path}: not a repro trace CSV "
                             f"(header {header!r})")
        legacy = header == _CSV_LEGACY_HEADER
        for row in reader:
            ts, dur, phase, category, name, node, attrs = row[:7]
            trace_id, span_id, parent_id = \
                (0, 0, 0) if legacy else (int(row[7]), int(row[8]),
                                          int(row[9]))
            log.append(TraceEvent(
                ts=float(ts), dur=float(dur), phase=phase,
                category=category, name=name, node=node,
                attrs=json.loads(attrs), trace_id=trace_id,
                span_id=span_id, parent_id=parent_id))
    return log
