"""Counters, gauges and log-bucketed latency histograms.

The paper reports 95th-percentile delays (Section 5.1.3); a
:class:`Histogram` with logarithmic buckets supplies those percentiles
from real samples in O(buckets) memory rather than retaining every
observation.  The bucket growth factor bounds the relative error of any
percentile estimate: with the default ``growth = 1.08`` an estimate is
within ±4 % of the exact order statistic.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A value that moves both ways (queue depth, occupancy, watts)."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Log-bucketed value distribution with percentile estimation.

    Values at or below ``floor`` share an underflow bucket; above it,
    bucket *i* covers ``(floor * growth**(i-1), floor * growth**i]`` so
    bucket count grows logarithmically with the dynamic range.  The
    exact minimum and maximum are tracked so extreme percentiles clamp
    to observed values.
    """

    def __init__(self, name: str = "histogram", growth: float = 1.08,
                 floor: float = 1e-9):
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        if floor <= 0:
            raise ValueError(f"floor must be > 0, got {floor}")
        self.name = name
        self.growth = growth
        self.floor = floor
        self._log_growth = math.log(growth)
        self._counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def _bucket(self, value: float) -> int:
        if value <= self.floor:
            return 0
        return 1 + math.floor(math.log(value / self.floor)
                              / self._log_growth * (1 - 1e-12))

    def _bounds(self, index: int) -> Tuple[float, float]:
        if index == 0:
            return (0.0, self.floor)
        return (self.floor * self.growth ** (index - 1),
                self.floor * self.growth ** index)

    def observe(self, value: float) -> None:
        """Record one sample (must be >= 0)."""
        if value < 0:
            raise ValueError(f"histogram values must be >= 0, got {value}")
        index = self._bucket(value)
        self._counts[index] = self._counts.get(index, 0) + 1
        self.count += 1
        self.total += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def mean(self) -> float:
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        return self.total / self.count

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile estimate, ``p`` in [0, 100].

        Returns the geometric midpoint of the bucket holding the rank,
        clamped to the observed minimum/maximum, so the estimate is
        within a factor ``sqrt(growth)`` of the exact order statistic.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"p must be in [0, 100], got {p}")
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        rank = max(1, math.ceil(p / 100.0 * self.count))
        # The extreme ranks are tracked exactly; returning them directly
        # clamps both tails (a bucket midpoint can otherwise exceed the
        # observed minimum at p=0, the mirror of the p=100 clamp).
        if rank == 1:
            return self._min
        if rank == self.count:
            return self._max
        cumulative = 0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= rank:
                low, high = self._bounds(index)
                estimate = self.floor if index == 0 \
                    else math.sqrt(low * high)
                # Clamp into the bucket's own bounds intersected with
                # the tracked extremes.  Bucket intervals are disjoint
                # and increasing and the extremes are rank-independent,
                # so estimates are monotone non-decreasing in p by
                # construction — including across the exact-tracked
                # tails: rank 1 (= min) never exceeds rank 2's clamp
                # floor, and rank count-1's clamp ceiling never
                # exceeds rank count (= max).  A seeded property test
                # pins this invariant.
                return min(max(estimate, low, self._min),
                           high, self._max)
        raise AssertionError("unreachable: rank exceeds total count")

    def buckets(self) -> List[Tuple[float, float, int]]:
        """Non-empty buckets as ``(low, high, count)`` tuples."""
        return [(*self._bounds(i), c)
                for i, c in sorted(self._counts.items())]


class MetricsRegistry:
    """Named get-or-create registry of counters, gauges and histograms."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str, growth: float = 1.08,
                  floor: float = 1e-9) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, growth=growth,
                                               floor=floor)
        return self._histograms[name]

    def __iter__(self) -> Iterator[str]:
        yield from self._counters
        yield from self._gauges
        yield from self._histograms

    def snapshot(self, percentiles: Tuple[float, ...] = (50.0, 95.0)) -> Dict:
        """All metric values as one JSON-friendly dict."""
        out: Dict[str, object] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, hist in self._histograms.items():
            if hist.count == 0:
                out[name] = {"count": 0}
                continue
            out[name] = {"count": hist.count, "mean": hist.mean(),
                         **{f"p{int(p) if p == int(p) else p}":
                            hist.percentile(p) for p in percentiles}}
        return out
