"""The :class:`Tracer`: the write-side API the simulated layers call.

A tracer owns (or shares) a :class:`~repro.trace.events.TraceLog` and
stamps every emission with the simulated clock of the
:class:`~repro.sim.Simulation` it is bound to.  Binding happens when the
tracer is passed as ``Simulation(trace=...)``; every layer living inside
that simulation then reaches the tracer as ``sim.trace`` — instrumented
code guards with ``if sim.trace is not None`` so a run without tracing
pays nothing beyond that None-check.

Spans may be emitted two ways:

* ``tracer.complete(name, start)`` — record a span retroactively from a
  start time the caller noted; the cheapest form, used on hot paths
  which already track start times for their own statistics.
* ``with tracer.span(name, node=...):`` — a context manager for process
  generators; nesting is tracked per simulated process, so concurrently
  interleaved processes do not corrupt each other's span stacks.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterable, Optional

from .context import SpanContext
from .events import (PHASE_COUNTER, PHASE_INSTANT, PHASE_SPAN, TraceEvent,
                     TraceLog)
from .metrics import MetricsRegistry


class Tracer:
    """Stamps and emits trace events against one simulation's clock.

    Every emission also feeds the tracer's :class:`MetricsRegistry`, so
    a traced run ends with ready-made aggregates (span-duration
    histograms, event counts, latest counter values) that the CLI's
    ``--metrics`` flag dumps as JSON — metrics ride the same event
    stream the trace does, with no second instrumentation pass.

    Parameters
    ----------
    log:
        The destination :class:`TraceLog`; a fresh unbounded one is
        created when omitted.
    categories, max_events:
        Convenience pass-through to the created log (ignored when an
        explicit ``log`` is given).
    metrics:
        The registry fed by emissions; a fresh one when omitted.
    """

    def __init__(self, log: Optional[TraceLog] = None,
                 categories: Optional[Iterable[str]] = None,
                 max_events: Optional[int] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.log = log if log is not None else TraceLog(
            max_events=max_events, categories=categories)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._sim = None
        self._next_id = 0
        # Per-process span stacks: active-process id -> [span ids].
        self._stacks: Dict[int, list] = {}

    # -- binding ---------------------------------------------------------

    def bind(self, sim) -> None:
        """Attach to ``sim``'s clock (done by ``Simulation(trace=...)``)."""
        if self._sim is not None and self._sim is not sim:
            raise RuntimeError("tracer is already bound to another simulation")
        self._sim = sim

    @property
    def now(self) -> float:
        """Current simulated time (0.0 while unbound)."""
        return self._sim.now if self._sim is not None else 0.0

    def next_id(self) -> int:
        """A fresh tracer-unique integer id (for correlating spans)."""
        self._next_id += 1
        return self._next_id

    # -- causal identity -------------------------------------------------

    def root_context(self) -> SpanContext:
        """Mint the identity of a new causal tree (trace_id == span_id)."""
        span_id = self.next_id()
        return SpanContext(trace_id=span_id, span_id=span_id, parent_id=0)

    def child_context(self, parent: Optional[SpanContext]) -> SpanContext:
        """Mint a child identity under ``parent`` (a root when None)."""
        if parent is None:
            return self.root_context()
        return SpanContext(trace_id=parent.trace_id, span_id=self.next_id(),
                           parent_id=parent.span_id)

    def enabled_for(self, category: str) -> bool:
        """True when the log would keep events of ``category``."""
        return self.log.accepts(category)

    # -- emission --------------------------------------------------------

    def instant(self, name: str, category: str = "event", node: str = "",
                **attrs: Any) -> None:
        """Emit a point-in-time marker at the current clock."""
        self.metrics.counter(f"{name}.count").inc()
        self.log.append(TraceEvent(
            ts=self.now, category=category, name=name, node=node,
            attrs=attrs, phase=PHASE_INSTANT))

    def counter(self, name: str, value: float, category: str = "counter",
                node: str = "", **attrs: Any) -> None:
        """Emit one sample of a numeric counter/gauge."""
        self.metrics.gauge(name).set(value)
        attrs["value"] = value
        self.log.append(TraceEvent(
            ts=self.now, category=category, name=name, node=node,
            attrs=attrs, phase=PHASE_COUNTER))

    def complete(self, name: str, start: float, category: str = "span",
                 node: str = "", ctx: Optional[SpanContext] = None,
                 **attrs: Any) -> None:
        """Emit a span that began at ``start`` and ends now.

        ``ctx`` stamps the span's causal identity
        (:class:`SpanContext`); omitted, the span stays a flat legacy
        record with all ids 0.
        """
        now = self.now
        if start > now:
            raise ValueError(f"span start {start} lies in the future "
                             f"(now={now})")
        self.metrics.counter(f"{name}.count").inc()
        self.metrics.histogram(f"{name}.duration_s").observe(now - start)
        self.log.append(TraceEvent(
            ts=start, category=category, name=name, node=node,
            attrs=attrs, phase=PHASE_SPAN, dur=now - start,
            trace_id=ctx.trace_id if ctx is not None else 0,
            span_id=ctx.span_id if ctx is not None else 0,
            parent_id=ctx.parent_id if ctx is not None else 0))

    @contextmanager
    def span(self, name: str, category: str = "span", node: str = "",
             **attrs: Any):
        """Context manager emitting a complete span around its body.

        Usable inside process generators around ``yield from`` blocks::

            with tracer.span("shuffle", node=node):
                yield from self._shuffle(...)

        Nesting depth and parentage are tracked per simulated process
        (keyed on the simulation's active process), so interleaved
        processes keep independent stacks.  Yields the span id.

        The emitted span carries a full :class:`SpanContext` (nested
        spans share the outermost span's trace_id).  When the body is
        torn down by a kernel interrupt or an abandoned generator, the
        span still closes — tagged ``aborted`` with the interrupt's
        fault kind — so critical-path walks never see dangling spans.
        """
        start = self.now
        key = 0
        if self._sim is not None and self._sim.active_process is not None:
            key = id(self._sim.active_process)
        stack = self._stacks.setdefault(key, [])
        parent: Optional[SpanContext] = stack[-1] if stack else None
        ctx = self.child_context(parent)
        stack.append(ctx)
        try:
            yield ctx.span_id
        except BaseException as exc:
            cause = getattr(exc, "cause", None)
            if cause is not None:
                attrs["aborted"] = getattr(cause, "kind", None) \
                    or type(cause).__name__
            elif isinstance(exc, GeneratorExit):
                attrs["aborted"] = "abandoned"
            raise
        finally:
            stack.pop()
            if not stack:
                self._stacks.pop(key, None)
            attrs["span_id"] = ctx.span_id
            attrs["depth"] = len(stack)
            if parent is not None:
                attrs["parent"] = parent.span_id
            self.complete(name, start, category=category, node=node,
                          ctx=ctx, **attrs)
