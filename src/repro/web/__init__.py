"""The Section 5.1 web-service stack: LLMP tiers, httperf, probes."""

from .client import ProbeLog, UrllibProbe, delay_distribution
from .deployment import (
    DelayDecomposition, WebServiceDeployment, measure_delay_decomposition,
)
from .httperf import HttperfDriver, LevelResult, LevelStats
from .loadshape import DiurnalShape, FlashCrowd, ShapedLoad
from .nodes import (
    CacheNode, CallRecord, DatabaseNode, PortPool, WebServerNode,
)
from .rotation import WeightedRotation
from .params import (
    COSTS, LIMITS, PER_SERVER_CAPACITY_RPS, ConnectionLimits, ServiceCosts,
    WebWorkload, mean_reply_bytes, tuned_calls_per_connection,
    workload_factor,
)
from .runner import SweepResult, energy_efficiency_ratio, sweep_concurrency

__all__ = [
    "COSTS", "CacheNode", "CallRecord", "ConnectionLimits",
    "DatabaseNode", "DelayDecomposition", "DiurnalShape", "FlashCrowd",
    "HttperfDriver", "LIMITS", "LevelResult", "LevelStats",
    "PER_SERVER_CAPACITY_RPS", "PortPool", "ProbeLog", "ServiceCosts",
    "ShapedLoad", "SweepResult", "UrllibProbe", "WebServerNode",
    "WebServiceDeployment", "WebWorkload", "WeightedRotation",
    "delay_distribution", "energy_efficiency_ratio", "mean_reply_bytes",
    "measure_delay_decomposition", "sweep_concurrency",
    "tuned_calls_per_connection", "workload_factor",
]
