"""urllib2-style probe clients and the Figure 10/11 delay histograms.

The paper's delay-distribution experiment replaces httperf with Python
programs on 30 Dell machines that repeatedly issue single requests —
one fresh TCP connection per request, no keep-alive.  That detail is
what produces Figure 11: at ~6000 req/s the 2 Dell web servers see
~3000 new connections per second each, exhausting the ephemeral-port
pool faster than TIME_WAIT recycles it, so SYNs drop and clients block
in the kernel's 1 s / 2 s / 4 s retransmission schedule — the histogram
spikes at 1, 3 and 7 seconds.  The 24 Edison web servers each see only
~250 connections/s and never block this way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..sim import AnyOf
from . import params as P
from .deployment import WebServiceDeployment
from .nodes import SYN_RETRY_DELAYS, WebServerNode


@dataclass
class ProbeLog:
    """Client-side delay samples from the probe fleet."""

    delays_s: List[float]
    give_ups: int = 0

    def histogram(self, bin_width_s: float = 0.25,
                  max_s: float = 8.0) -> List[Tuple[float, int]]:
        """Counts per delay bin, as (bin_start_seconds, count) pairs."""
        if bin_width_s <= 0:
            raise ValueError("bin_width_s must be > 0")
        bins = int(round(max_s / bin_width_s))
        counts = [0] * bins
        for delay in self.delays_s:
            index = min(bins - 1, int(delay / bin_width_s))
            counts[index] += 1
        return [(i * bin_width_s, counts[i]) for i in range(bins)]

    def mean(self) -> float:
        if not self.delays_s:
            raise ValueError("no samples collected")
        return sum(self.delays_s) / len(self.delays_s)

    def fraction_above(self, threshold_s: float) -> float:
        if not self.delays_s:
            raise ValueError("no samples collected")
        over = sum(1 for d in self.delays_s if d >= threshold_s)
        return over / len(self.delays_s)


class UrllibProbe:
    """Open-loop single-request clients (one connection per request)."""

    def __init__(self, deployment: WebServiceDeployment,
                 total_rate_rps: float, collect_after: float = 0.0):
        if total_rate_rps <= 0:
            raise ValueError("total_rate_rps must be > 0")
        self.deployment = deployment
        self.total_rate = total_rate_rps
        self.collect_after = collect_after
        self.log = ProbeLog(delays_s=[])
        self._rng = deployment.rng.stream("urllib")

    def start(self, until: float) -> None:
        self.deployment.sim.process(self._generate(until), name="urllib")

    def _generate(self, until: float):
        sim = self.deployment.sim
        webs = self.deployment.web_nodes
        clients = self.deployment.client_names
        count = 0
        while sim.now < until:
            yield sim.timeout(self._rng.expovariate(self.total_rate))
            web = self._rng.choice(webs)       # "random web servers"
            client = clients[count % len(clients)]
            count += 1
            sim.process(self._request(client, web))

    def _request(self, client: str, web: WebServerNode):
        sim = self.deployment.sim
        start = sim.now
        attempt = 0
        while not web.try_accept():
            if attempt >= len(SYN_RETRY_DELAYS):
                if sim.now >= self.collect_after:
                    self.log.give_ups += 1
                    telemetry = self.deployment.telemetry
                    if telemetry is not None:
                        # A give-up exists only here at the client; no
                        # server log will ever scrape it into the SLO.
                        telemetry.note_client_outcomes(give_ups=1)
                return
            yield sim.timeout(SYN_RETRY_DELAYS[attempt])
            attempt += 1
        yield sim.timeout(
            self.deployment.cluster.topology.rtt(client, web.server.name))
        epoch = web.epoch
        try:
            yield from self.deployment.cluster.topology.message(
                client, web.server.name, self.deployment.workload.request_bytes)
            handler = sim.process(web.handle_call(client))
            timer = sim.timeout(self.deployment.workload.client_timeout_s)
            yield AnyOf(sim, [handler, timer])
            if handler.processed and handler.value.ok \
                    and sim.now >= self.collect_after:
                self.log.delays_s.append(sim.now - start)
        finally:
            web.close_connection(epoch)


def delay_distribution(platform: str, total_rate_rps: float = 6000.0,
                       duration: float = 8.0, warmup: float = 2.0,
                       image_fraction: float = 0.20,
                       seed: int = 20160901) -> ProbeLog:
    """Run the Figure 10/11 experiment for one platform."""
    workload = P.WebWorkload(image_fraction=image_fraction,
                             cache_hit_ratio=0.93)
    deployment = WebServiceDeployment(platform, "full", workload, seed=seed)
    for node in deployment.web_nodes:
        node.record_log_enabled = False   # keep memory bounded
    probe = UrllibProbe(deployment, total_rate_rps, collect_after=warmup)
    probe.start(until=duration)
    deployment.meter.start(until=duration)
    deployment.sim.run(until=duration)
    return probe.log
