"""Wiring of the full Section 5.1 web-service testbed.

A :class:`WebServiceDeployment` owns one fresh simulation containing the
Table 6 server layout for a platform and scale, the shared Dell MySQL
tier, the 8 client hosts, the power meter over the metered (web+cache)
servers, and the httperf driver.  One deployment runs one concurrency
level; sweeps build a fresh deployment per level, exactly as the paper
restarts its 3-minute tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..cluster import web_cluster
from ..hardware import ServerSpec
from ..resilience.breaker import CircuitBreaker
from ..resilience.config import ResilienceConfig
from ..resilience.ledger import ResilienceLedger
from ..sim import RngStreams, Simulation
from . import params as P
from .httperf import HttperfDriver, LevelResult
from .nodes import CacheNode, DatabaseNode, WebServerNode


class WebServiceDeployment:
    """One platform/scale web-service testbed ready to serve load."""

    def __init__(self, platform: str, scale: str = "full",
                 workload: Optional[P.WebWorkload] = None,
                 seed: int = 20160901,
                 edison_spec: Optional[ServerSpec] = None,
                 limits: Optional[P.ConnectionLimits] = None,
                 trace=None,
                 resilience: Optional[ResilienceConfig] = None):
        if platform not in P.COSTS:
            raise ValueError(f"unknown platform {platform!r}")
        self.platform = platform
        self.scale = scale
        self.workload = workload if workload is not None else P.WebWorkload()
        self.sim = Simulation(trace=trace)
        self.rng = RngStreams(seed)
        kwargs = {}
        if edison_spec is not None:
            kwargs["edison_spec"] = edison_spec
        self.cluster = web_cluster(self.sim, platform, scale, **kwargs)
        topo = self.cluster.topology
        costs = P.COSTS[platform]
        node_limits = limits if limits is not None else P.LIMITS[platform]
        self.db_nodes: List[DatabaseNode] = [
            DatabaseNode(self.cluster.servers[f"db-{i}"],
                         self.rng.stream(f"db-{i}"))
            for i in range(2)
        ]
        cache_servers = [s for n, s in self.cluster.servers.items()
                         if n.startswith("cache-")]
        self.cache_nodes: List[CacheNode] = [CacheNode(s)
                                             for s in cache_servers]
        web_servers = [s for n, s in self.cluster.servers.items()
                       if n.startswith("web-")]
        self.web_nodes: List[WebServerNode] = [
            WebServerNode(self.sim, s, topo, costs, node_limits,
                          self.workload, self.rng.stream(f"web-{i}"),
                          self.cache_nodes, self.db_nodes)
            for i, s in enumerate(web_servers)
        ]
        self.client_names = [f"client-{i}" for i in range(8)]
        #: Set by :meth:`repro.telemetry.Telemetry.attach_web` so the
        #: deployment can report client-side outcomes (timeouts) that
        #: no server-side scrape can see.
        self.telemetry = None
        #: The driver of the most recent :meth:`run_level` (exposes
        #: collected per-call delays for percentile reporting).
        self.last_driver: Optional[HttperfDriver] = None
        # Resilience is strictly opt-in; with it off nothing below
        # exists and runs stay bit-identical to the historical path.
        self.resilience = (resilience if resilience is not None
                           and resilience.any_enabled else None)
        self.resilience_ledger = None
        self.breakers = None
        self._retry_rng = None
        if self.resilience is not None:
            self.resilience_ledger = ResilienceLedger()
            self._retry_rng = self.rng.stream("resilience.retry")
            if self.resilience.breakers:
                self.breakers = {
                    w.server.name: CircuitBreaker(
                        self.sim, w.server.name,
                        self.resilience.breaker_cfg)
                    for w in self.web_nodes}
            for web in self.web_nodes:
                web.enable_resilience(self.resilience,
                                      self.resilience_ledger)
        self._reserve_memory()
        self.meter = self.cluster.attach_meter(interval=0.25)

    def _reserve_memory(self) -> None:
        """Pin the steady-state RAM footprints from Section 5.1.2."""
        for node in self.web_nodes:
            frac = P.MEMORY_RESERVATION[(self.platform, "web")]
            node.server.memory.reserve(frac * node.server.memory.capacity_bytes)
        for node in self.cache_nodes:
            frac = P.MEMORY_RESERVATION[(self.platform, "cache")]
            node.server.memory.reserve(frac * node.server.memory.capacity_bytes)

    # -- fault injection ---------------------------------------------------

    def attach_faults(self, plan, **kwargs):
        """Attach a :class:`repro.faults.FaultInjector` running ``plan``.

        Also wires the deployment's recovery hook: a web server whose
        crash/power fault is repaired reboots with a clean connection
        table (see :meth:`WebServerNode.reset`).
        """
        from ..faults import FaultInjector   # deferred: avoids a cycle
        injector = FaultInjector(self.cluster, plan, **kwargs)
        injector.add_listener(self._on_fault_event)
        return injector

    def _on_fault_event(self, event: str, node: str, kind: str) -> None:
        # "admin" is the autoscaler's deliberate suspend/resume: a node
        # coming back from it reboots with a clean connection table
        # exactly like one repaired after a crash or power fault.  A
        # healed partition gets the same reset: clients abandoned every
        # connection into the black hole long ago, so the server's
        # half of the table is stale fiction, not state worth keeping.
        if event != "up" or kind not in ("crash", "power", "admin",
                                         "partition", "switch_down"):
            return
        for web in self.web_nodes:
            if web.server.name == node:
                web.reset()
                return

    # -- capacity planning -------------------------------------------------

    @property
    def web_server_count(self) -> int:
        return len(self.web_nodes)

    def target_rps(self) -> float:
        """The hand-tuned peak offered rate for this deployment."""
        per_server = P.PER_SERVER_CAPACITY_RPS[self.platform]
        factor = P.workload_factor(self.workload.image_fraction,
                                   self.workload.cache_hit_ratio)
        return per_server * self.web_server_count * factor

    # -- running one level ------------------------------------------------

    def run_level(self, concurrency: int, duration: float = 4.0,
                  warmup: float = 1.0,
                  calls: Optional[int] = None,
                  collect_delays: bool = False) -> LevelResult:
        """Drive one httperf concurrency level and report the metrics.

        The measurement window is ``[warmup, duration]``; the paper's
        3-minute levels are shortened because simulated rates, not
        wall-clock confidence, set the fidelity here.  With
        ``collect_delays`` the driver keeps every in-window per-call
        delay (``self.last_driver.delays``) for percentile reporting.
        """
        if duration <= warmup:
            raise ValueError("duration must exceed warmup")
        if calls is None:
            calls = P.tuned_calls_per_connection(concurrency,
                                                 self.target_rps())
        if self.sim.faults is not None:
            # Covers injectors attached directly rather than through
            # attach_faults (add_listener deduplicates).
            self.sim.faults.add_listener(self._on_fault_event)
        driver = HttperfDriver(
            self.sim, self.cluster.topology, self.web_nodes,
            self.client_names, self.workload,
            self.rng.stream("arrivals"), collect_after=warmup,
            resilience=self.resilience, ledger=self.resilience_ledger,
            retry_rng=self._retry_rng, breakers=self.breakers,
            collect_delays=collect_delays)
        self.last_driver = driver
        self.sim.process(driver.generate(concurrency, calls, until=duration))
        self.meter.start(until=duration)
        self.sim.run(until=duration)
        window = duration - warmup
        stats = driver.stats
        if self.resilience_ledger is not None and self.breakers is not None:
            self.resilience_ledger.counters["breaker_opens"] = sum(
                b.open_count for b in self.breakers.values())
        if self.telemetry is not None:
            # Client-side failures (give-ups after the timeout) never
            # reach a server-side log; hand them to the monitoring
            # plane so the SLO error budget charges them too.
            self.telemetry.note_client_outcomes(timeouts=stats.timeout_calls)
        counted = max(1, stats.ok_calls)
        power_samples = [v for t, v in self.meter.series.pairs()
                         if t >= warmup]
        mean_power = (sum(power_samples) / len(power_samples)
                      if power_samples else self.cluster.idle_watts())
        return LevelResult(
            platform=self.platform,
            concurrency=concurrency,
            calls_per_connection=calls,
            window_s=window,
            ok_calls=stats.ok_calls,
            error_calls=stats.error_calls,
            timeout_calls=stats.timeout_calls,
            failed_connections=stats.failed_connections,
            connections=stats.connections,
            syn_retries=stats.syn_retries,
            mean_delay_s=stats.delay_sum_s / counted,
            mean_power_w=mean_power,
        )

    # -- running a shaped (time-varying) day -------------------------------

    def run_shaped(self, shape, duration: float, warmup: float = 0.0,
                   calls: int = 5, rotation=None,
                   collect_delays: bool = False) -> LevelResult:
        """Drive a :class:`~repro.web.loadshape.ShapedLoad` day.

        The static arms of the autoscaling experiment run through
        here: same deployment, same backends, but arrivals follow the
        diurnal + flash-crowd rate function instead of one fixed
        concurrency.  The reported ``concurrency`` is 0 (there is no
        single level).
        """
        return run_shaped(self, shape, duration, warmup=warmup,
                          calls=calls, rotation=rotation,
                          collect_delays=collect_delays)

    # -- web-server-side logs (Table 7) --------------------------------------

    def call_records(self, after: float = 0.0):
        """All web-server call logs recorded at or after ``after``."""
        records = []
        for node in self.web_nodes:
            records.extend(r for r in node.records if r.start >= after)
        return records


def run_shaped(deployment, shape, duration: float, warmup: float = 0.0,
               calls: int = 5, rotation=None,
               collect_delays: bool = False) -> LevelResult:
    """Run one shaped day against any web-style deployment.

    Duck-typed over the deployment surface (``sim``, ``cluster``,
    ``web_nodes``, ``client_names``, ``workload``, ``rng``, ``meter``,
    ``telemetry``) so :class:`WebServiceDeployment` and the autoscale
    package's hybrid deployment share one code path.  The resilient
    driver options deliberately stay off here: shaped days measure
    provisioning, not gray-failure mitigation.
    """
    if duration <= warmup:
        raise ValueError("duration must exceed warmup")
    sim = deployment.sim
    if sim.faults is not None:
        sim.faults.add_listener(deployment._on_fault_event)
    driver = HttperfDriver(
        sim, deployment.cluster.topology, deployment.web_nodes,
        deployment.client_names, deployment.workload,
        deployment.rng.stream("arrivals"), collect_after=warmup,
        collect_delays=collect_delays)
    deployment.last_driver = driver
    sim.process(driver.generate_shaped(shape, calls, until=duration,
                                       rotation=rotation))
    deployment.meter.start(until=duration)
    sim.run(until=duration)
    stats = driver.stats
    if deployment.telemetry is not None:
        # Abandoned calls *and* connections that never established
        # (SYN retries exhausted) are user-visible outages no server
        # log sees; both charge the availability SLO.
        deployment.telemetry.note_client_outcomes(
            timeouts=stats.timeout_calls,
            give_ups=stats.failed_connections)
    counted = max(1, stats.ok_calls)
    power_samples = [v for t, v in deployment.meter.series.pairs()
                     if t >= warmup]
    mean_power = (sum(power_samples) / len(power_samples)
                  if power_samples else deployment.cluster.idle_watts())
    return LevelResult(
        platform=deployment.platform,
        concurrency=0,
        calls_per_connection=calls,
        window_s=duration - warmup,
        ok_calls=stats.ok_calls,
        error_calls=stats.error_calls,
        timeout_calls=stats.timeout_calls,
        failed_connections=stats.failed_connections,
        connections=stats.connections,
        syn_retries=stats.syn_retries,
        mean_delay_s=stats.delay_sum_s / counted,
        mean_power_w=mean_power,
    )


@dataclass(frozen=True)
class DelayDecomposition:
    """One Table 7 row: mean delays in seconds."""

    request_rate: float
    db_delay_s: float
    cache_delay_s: float
    total_delay_s: float


def measure_delay_decomposition(platform: str, request_rate: float,
                                duration: float = 4.0, warmup: float = 1.0,
                                seed: int = 20160901,
                                trace=None) -> DelayDecomposition:
    """Reproduce one row of Table 7 (20 % images, 93 % hit ratio).

    Offered load is fixed at ``request_rate`` with the paper's mix; the
    decomposition averages the web-server-side logs, counting database
    delay only over cache-miss requests as the paper does.  Passing a
    :class:`repro.trace.Tracer` records the run, from whose spans
    :func:`repro.trace.delay_decomposition_from_trace` re-derives this
    same decomposition (the trace-as-oracle cross-check).
    """
    workload = P.WebWorkload(image_fraction=0.20, cache_hit_ratio=0.93)
    deployment = WebServiceDeployment(platform, "full", workload, seed=seed,
                                      trace=trace)
    calls = 13
    concurrency = max(1, round(request_rate / calls))
    deployment.run_level(concurrency, duration=duration, warmup=warmup,
                         calls=calls)
    records = [r for r in deployment.call_records(after=warmup) if r.ok]
    if not records:
        raise RuntimeError("no completed requests in the window")
    misses = [r for r in records if r.db_s > 0]
    db = sum(r.db_s for r in misses) / len(misses) if misses else 0.0
    cache = sum(r.cache_s for r in records) / len(records)
    total = sum(r.total_s for r in records) / len(records)
    return DelayDecomposition(request_rate=request_rate, db_delay_s=db,
                              cache_delay_s=cache, total_delay_s=total)
