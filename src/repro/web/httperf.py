"""httperf-style open-loop workload generation and per-level results.

The paper drives each concurrency level with 8 httperf clients behind
8 HAProxy balancers, tuning calls-per-connection so the offered request
rate matches what the tier can sustain.  Here one generator process per
deployment spawns connections at the target aggregate rate (Poisson
arrivals), assigns them round-robin to web servers (the HAProxy role)
and round-robin to the 8 client hosts (the httperf role).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sim import AnyOf, Timeout, backoff_delay
from . import params as P
from .nodes import SYN_RETRY_DELAYS, WebServerNode


@dataclass
class LevelStats:
    """Raw counters accumulated while one concurrency level runs."""

    ok_calls: int = 0
    error_calls: int = 0
    timeout_calls: int = 0
    failed_connections: int = 0
    connections: int = 0
    syn_retries: int = 0
    delay_sum_s: float = 0.0          # per-call delay incl. connect share
    call_delay_sum_s: float = 0.0     # per-call delay excl. connect


@dataclass(frozen=True)
class LevelResult:
    """One point on the Figure 4-9 curves."""

    platform: str
    concurrency: int
    calls_per_connection: int
    window_s: float
    ok_calls: int
    error_calls: int
    timeout_calls: int
    failed_connections: int
    connections: int
    syn_retries: int
    mean_delay_s: float
    mean_power_w: float

    @property
    def requests_per_second(self) -> float:
        return self.ok_calls / self.window_s

    @property
    def error_rate(self) -> float:
        total = self.ok_calls + self.error_calls + self.timeout_calls
        if total == 0:
            return 1.0 if self.failed_connections else 0.0
        return (self.error_calls + self.timeout_calls) / total

    @property
    def has_server_errors(self) -> bool:
        """True when the paper would exclude this level (5xx observed)."""
        return self.error_calls > 0

    @property
    def energy_joules(self) -> float:
        return self.mean_power_w * self.window_s


class HttperfDriver:
    """Generates connections against a set of web-server nodes."""

    def __init__(self, sim, topology, web_nodes: List[WebServerNode],
                 client_names: List[str], workload: P.WebWorkload, rng,
                 collect_after: float = 0.0,
                 resilience=None, ledger=None, retry_rng=None,
                 breakers=None, collect_delays: bool = False):
        if not web_nodes or not client_names:
            raise ValueError("need web nodes and client hosts")
        self.sim = sim
        self.topology = topology
        self.web_nodes = web_nodes
        self.client_names = client_names
        self.workload = workload
        self.rng = rng
        self.collect_after = collect_after
        self.stats = LevelStats()
        # -- resilience (all None/off on the historical path) ------------
        #: :class:`repro.resilience.ResilienceConfig` or None.
        self.resilience = resilience
        #: :class:`repro.resilience.ResilienceLedger` metering waste.
        self.ledger = ledger
        #: Dedicated seeded stream for retry backoff jitter.
        self.retry_rng = retry_rng
        #: name -> :class:`repro.resilience.CircuitBreaker` per backend.
        self.breakers = breakers
        #: Collect per-call client-observed delays (for p95 reporting).
        self.collect_delays = collect_delays
        self.delays: List[float] = []
        self._rr = 0      # balancer round-robin cursor (resilient path)

    def generate(self, concurrency: float, calls: int, until: float):
        """Process generator: spawn connections at ``concurrency``/s."""
        if concurrency <= 0 or calls < 1:
            raise ValueError("concurrency must be > 0 and calls >= 1")
        index = 0
        n = len(self.web_nodes)
        sim = self.sim
        expovariate = self.rng.expovariate
        while sim._now < until:
            yield expovariate(concurrency)
            faults = sim.faults
            if self.resilience is not None:
                client = self.client_names[index % len(self.client_names)]
                web, index = self._pick_backend(index)
                if web is None:
                    self._count_failed_connection()
                    continue
                sim.process(self._resilient_connection(client, web, calls),
                            name=f"conn-{index}")
                continue
            if faults is None:
                web = self.web_nodes[index % n]
                client = self.client_names[index % len(self.client_names)]
                index += 1
            else:
                # The HAProxy role: health checks pull a backend out of
                # rotation once its outage exceeds the detection window,
                # so its share of the load fails over to the survivors.
                web = None
                for _ in range(n):
                    candidate = self.web_nodes[index % n]
                    client = self.client_names[index % len(self.client_names)]
                    index += 1
                    if not faults.detected_down(candidate.server.name):
                        web = candidate
                        break
                if web is None:
                    # Every backend is marked down.
                    self._count_failed_connection()
                    continue
            sim.process(self._connection(client, web, calls),
                        name=f"conn-{index}")

    def generate_shaped(self, shape, calls: int, until: float,
                        rotation=None):
        """Process generator: open-loop arrivals following ``shape``.

        Non-homogeneous Poisson arrivals by Lewis-Shedler thinning:
        candidate connections arrive at the shape's constant peak
        bound and each survives with probability ``rate(t)/bound`` —
        an exact simulation of the time-varying process, and a seeded
        one (two runs of the same shape and seed see identical
        arrivals).  Backends come from ``rotation`` (a
        :class:`~repro.web.rotation.WeightedRotation`, for
        heterogeneous/autoscaled pools) or, when None, the same
        health-checked round-robin as :meth:`generate`.

        This is a separate method rather than a mode of
        :meth:`generate` on purpose: the fixed-rate path's event and
        RNG sequence is pinned float-for-float by committed baselines.
        """
        if calls < 1:
            raise ValueError("calls must be >= 1")
        peak_rps = shape.peak_bound()
        if peak_rps <= 0:
            raise ValueError("the shape's peak bound must be > 0")
        bound_cps = peak_rps / calls      # connection-arrival envelope
        index = 0
        n = len(self.web_nodes)
        sim = self.sim
        rng = self.rng
        while sim._now < until:
            yield rng.expovariate(bound_cps)
            if rng.random() * peak_rps >= shape.rate(sim._now):
                continue                  # thinned: candidate rejected
            faults = sim.faults
            if rotation is not None:
                client = self.client_names[index % len(self.client_names)]
                index += 1
                web = rotation.pick()
                if web is None:
                    self._count_failed_connection()
                    continue
            elif faults is None:
                web = self.web_nodes[index % n]
                client = self.client_names[index % len(self.client_names)]
                index += 1
            else:
                web = None
                for _ in range(n):
                    candidate = self.web_nodes[index % n]
                    client = self.client_names[index % len(self.client_names)]
                    index += 1
                    if not faults.detected_down(candidate.server.name):
                        web = candidate
                        break
                if web is None:
                    self._count_failed_connection()
                    continue
            sim.process(self._connection(client, web, calls),
                        name=f"conn-{index}")

    def _connection(self, client: str, web: WebServerNode, calls: int):
        """One httperf connection: SYN (with retries), then ``calls`` calls.

        When tracing is on, the whole connection becomes one causal
        tree: a ``connection`` root span, a ``connect`` child for the
        handshake, and per call a client-side ``call`` child whose
        context rides into :meth:`WebServerNode.handle_call` — the
        request/cache/db spans become its descendants.
        """
        sim = self.sim
        trace = sim.trace
        conn_ctx = trace.root_context() if trace is not None else None
        start = sim._now
        attempt = 0
        while not web.try_accept():
            if attempt >= len(SYN_RETRY_DELAYS):
                self._count_failed_connection()
                return
            yield SYN_RETRY_DELAYS[attempt]
            attempt += 1
            self._count_syn_retry()
        web_name = web.server.name
        yield self.topology.rtt(client, web_name)
        connect_delay = sim._now - start
        if trace is not None:
            trace.complete("connect", start, category="web",
                           node=web_name, ctx=trace.child_context(conn_ctx),
                           client=client, syn_retries=attempt)
        self._count_connection()
        epoch = web.epoch
        message = self.topology.message
        request_bytes = self.workload.request_bytes
        timeout_s = self.workload.client_timeout_s
        try:
            for i in range(calls):
                call_start = sim._now
                call_ctx = trace.child_context(conn_ctx) \
                    if trace is not None else None
                yield from message(client, web_name, request_bytes)
                handler = sim.process(web.handle_call(client, ctx=call_ctx))
                timer = Timeout(sim, timeout_s)
                yield AnyOf(sim, [handler, timer])
                if not handler.processed:
                    self._count_timeout()
                    if trace is not None:
                        trace.complete("call", call_start, category="web",
                                       node=client, ctx=call_ctx,
                                       aborted="client-timeout")
                    return  # client gave up; server keeps grinding
                # The race is settled: drop the client-timeout timer
                # from the calendar instead of letting every completed
                # call leave a dead 10 s entry bloating the heap.
                timer.cancel()
                record = handler.value
                call_delay = sim._now - call_start
                if trace is not None:
                    trace.complete("call", call_start, category="web",
                                   node=client, ctx=call_ctx,
                                   status=record.status)
                reported = call_delay + (connect_delay if i == 0 else 0.0)
                self._count_call(record.ok, call_delay, reported)
                if record.status == 503:
                    return  # the server died; the connection died with it
        finally:
            web.close_connection(epoch)
            if trace is not None:
                trace.complete("connection", start, category="web",
                               node=web_name, ctx=conn_ctx, client=client)

    # -- the resilient path ------------------------------------------------
    #
    # Active only with a ResilienceConfig: the balancer role grows a
    # per-backend circuit breaker, SYN failover, capped-backoff call
    # retries and optional hedging.  Calls retried or hedged away from
    # the connection's backend are re-dispatched as fresh legs to the
    # alternate node (HAProxy redispatch), not new client connections.

    def _breaker(self, web: WebServerNode):
        if self.breakers is None:
            return None
        return self.breakers.get(web.server.name)

    def _pick_backend(self, index: int, exclude=None):
        """Round-robin pick honouring health detection and breakers.

        Returns ``(web, next_index)``; ``web`` is None when no live
        backend exists at all.  When every live backend's breaker
        refuses, the first live one is used anyway — a tripped breaker
        must route *around* a limping backend, never manufacture a
        total outage.
        """
        faults = self.sim.faults
        n = len(self.web_nodes)
        fallback = None
        for _ in range(n):
            candidate = self.web_nodes[index % n]
            index += 1
            if candidate is exclude:
                continue
            if (faults is not None
                    and faults.detected_down(candidate.server.name)):
                continue
            if fallback is None:
                fallback = candidate
            breaker = self._breaker(candidate)
            if breaker is None or breaker.allow():
                return candidate, index
        return fallback, index

    def _resilient_connection(self, client: str, web: WebServerNode,
                              calls: int):
        """One httperf connection with every mitigation armed."""
        sim = self.sim
        trace = sim.trace
        conn_ctx = trace.root_context() if trace is not None else None
        start = sim._now
        web, syn_retries = yield from self._establish(web)
        if web is None:
            self._count_failed_connection()
            return
        web_name = web.server.name
        yield self.topology.rtt(client, web_name)
        connect_delay = sim._now - start
        if trace is not None:
            trace.complete("connect", start, category="web",
                           node=web_name, ctx=trace.child_context(conn_ctx),
                           client=client, syn_retries=syn_retries)
        self._count_connection()
        epoch = web.epoch
        try:
            for i in range(calls):
                call_start = sim._now
                call_ctx = trace.child_context(conn_ctx) \
                    if trace is not None else None
                record = yield from self._resilient_call(client, web,
                                                         call_ctx)
                if record is None:
                    self._count_timeout()
                    if trace is not None:
                        trace.complete("call", call_start, category="web",
                                       node=client, ctx=call_ctx,
                                       aborted="client-timeout")
                    return  # the client gave up on this call outright
                call_delay = sim._now - call_start
                if trace is not None:
                    trace.complete("call", call_start, category="web",
                                   node=client, ctx=call_ctx,
                                   status=record.status)
                reported = call_delay + (connect_delay if i == 0 else 0.0)
                self._count_call(record.ok, call_delay, reported)
                if record.status == 503 and not record.shed:
                    return  # a server died mid-call; the connection too
        finally:
            web.close_connection(epoch)
            if trace is not None:
                trace.complete("connection", start, category="web",
                               node=web_name, ctx=conn_ctx, client=client)

    def _establish(self, web: Optional[WebServerNode]):
        """SYN with retries plus breaker-informed backend failover.

        Each dropped SYN counts against the backend's breaker, and one
        alternate backend is probed per round before sleeping the
        kernel's retransmission delay — the balancer knows other accept
        queues may have room even while the client's kernel backs off.
        """
        attempt = 0
        while True:
            if web is not None:
                if web.try_accept():
                    return web, attempt
                breaker = self._breaker(web)
                if breaker is not None:
                    breaker.record_failure()
            if attempt >= len(SYN_RETRY_DELAYS):
                return None, attempt
            alternate, self._rr = self._pick_backend(self._rr, exclude=web)
            if alternate is not None and alternate is not web:
                if alternate.try_accept():
                    return alternate, attempt
                breaker = self._breaker(alternate)
                if breaker is not None:
                    breaker.record_failure()
            yield SYN_RETRY_DELAYS[attempt]
            attempt += 1
            self._count_syn_retry()

    def _resilient_call(self, client: str, web: WebServerNode, ctx=None):
        """One call with retry-on-failure; returns the final record.

        Returns None when the client's timeout expired (no retry: a
        user who waited ``client_timeout_s`` is gone).  Failed calls
        (shed, overloaded, dead backend) retry after seeded backoff,
        redispatched to a different backend when one exists.
        """
        cfg = self.resilience
        policy = cfg.retry_policy
        budget = policy.max_retries if cfg.retries else 0
        backend = web
        record = None
        for attempt in range(budget + 1):
            breaker = self._breaker(backend)
            if breaker is not None and not breaker.allow():
                # The target's breaker is open (and this call did not
                # win the half-open probe slot): route the call to a
                # healthy backend instead of burning an attempt on a
                # known-limping one.  The connection stays up — only
                # this call is redispatched.
                alternate, self._rr = self._pick_backend(
                    self._rr, exclude=backend)
                if alternate is not None:
                    backend = alternate
            record, served_by = yield from self._race(client, backend, ctx)
            if record is None:
                return None
            if record.ok or attempt >= budget:
                return record
            if self.ledger is not None:
                self.ledger.count("retries")
            yield backoff_delay(self.retry_rng, attempt,
                                policy.backoff_base_s,
                                policy.backoff_cap_s, policy.jitter)
            alternate, self._rr = self._pick_backend(
                self._rr, exclude=served_by)
            if alternate is not None:
                backend = alternate
        return record

    def _race(self, client: str, primary: WebServerNode, ctx=None):
        """One call attempt, optionally hedged: first OK answer wins.

        A duplicate leg launches on another backend once the primary
        outlives the hedge trigger.  Losing legs are not cancelled (a
        sent request cannot be unsent); a reaper charges their full
        service time to the ledger as hedge waste when they finish.
        Returns ``(record, backend)`` of the settled outcome, or
        ``(None, None)`` on client timeout.
        """
        sim = self.sim
        cfg = self.resilience
        deadline = Timeout(sim, self.workload.client_timeout_s)
        hedge_timer = None
        if cfg.hedging and cfg.hedge_cfg.enabled:
            hedge_timer = Timeout(sim, cfg.hedge_cfg.trigger_s)
        yield from self.topology.message(
            client, primary.server.name, self.workload.request_bytes)
        legs = [(primary, sim.process(primary.handle_call(client, ctx=ctx)))]
        settled = set()
        while True:
            failed = None
            for backend, process in legs:
                if not process.processed or process in settled:
                    continue
                settled.add(process)
                rec = process.value
                breaker = self._breaker(backend)
                if rec.ok:
                    if breaker is not None:
                        # Latency-aware: a slow 200 counts against the
                        # backend (gray failures answer late, not 500).
                        breaker.record_success(rec.total_s)
                    if backend is not primary and self.ledger is not None:
                        self.ledger.count("hedge_wins")
                    self._reap_losers(legs, process)
                    deadline.cancel()
                    if hedge_timer is not None:
                        hedge_timer.cancel()
                    return rec, backend
                if breaker is not None and not rec.shed:
                    # A shed is deliberate backpressure ("busy right
                    # now"), not backend sickness; counting it would
                    # cascade-trip every survivor under redirect load.
                    breaker.record_failure()
                failed = (rec, backend)
            if all(process.processed for _, process in legs):
                deadline.cancel()
                if hedge_timer is not None:
                    hedge_timer.cancel()
                return failed
            if deadline.processed:
                # The client gives up; still-running legs grind on
                # server-side, exactly as un-mitigated timeouts do.
                if hedge_timer is not None:
                    hedge_timer.cancel()
                return None, None
            if (hedge_timer is not None and hedge_timer.processed
                    and len(legs) == 1):
                alternate, self._rr = self._pick_backend(
                    self._rr, exclude=primary)
                if alternate is not None:
                    if self.ledger is not None:
                        self.ledger.count("hedges")
                    if sim.trace is not None:
                        sim.trace.instant("hedge.launch",
                                          category="resilience",
                                          node=alternate.server.name)
                    yield from self.topology.message(
                        client, alternate.server.name,
                        self.workload.request_bytes)
                    legs.append(
                        (alternate,
                         sim.process(alternate.handle_call(client,
                                                           ctx=ctx))))
                hedge_timer = None   # at most one hedge per call
            events = [process for _, process in legs
                      if not process.processed]
            if hedge_timer is not None and not hedge_timer.processed:
                events.append(hedge_timer)
            events.append(deadline)
            yield AnyOf(sim, events)

    def _reap_losers(self, legs, winner) -> None:
        for backend, process in legs:
            if process is winner or process.processed:
                continue
            self.sim.process(self._reap_loser(backend, process))

    def _reap_loser(self, backend: WebServerNode, process):
        """Wait out a losing hedge leg and bill its joules as waste.

        Billed at the leg's CPU-busy seconds, not its wall time: while
        the loser queues, the vcores are serving *other* calls whose
        energy is already accounted as useful work.
        """
        yield process
        if self.ledger is None:
            return
        record = process.value
        seconds = record.cpu_s if record is not None else 0.0
        self.ledger.charge("hedge", backend.server.name, seconds,
                           self.ledger.marginal_vcore_watts(backend.server))

    # -- windowed counting -------------------------------------------------

    def _in_window(self) -> bool:
        return self.sim._now >= self.collect_after

    def _count_call(self, ok: bool, call_delay: float, reported: float):
        if not self._in_window():
            return
        if ok:
            self.stats.ok_calls += 1
            self.stats.delay_sum_s += reported
            self.stats.call_delay_sum_s += call_delay
            if self.collect_delays:
                self.delays.append(reported)
        else:
            self.stats.error_calls += 1

    def _count_timeout(self):
        if self._in_window():
            self.stats.timeout_calls += 1

    def _count_failed_connection(self):
        if self._in_window():
            self.stats.failed_connections += 1

    def _count_syn_retry(self):
        if self._in_window():
            self.stats.syn_retries += 1

    def _count_connection(self):
        if self._in_window():
            self.stats.connections += 1
